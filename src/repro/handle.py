"""QueryHandle: the single user-facing object for a submitted query.

``engine.submit(sql)`` returns a :class:`QueryHandle`.  Everything a user
does with a running or finished query hangs off it — materialising the
result, runtime DOP tuning (``.tuning``, absorbing the old standalone
``ElasticQuery`` entry point), structured traces and profiles from the
obs layer (``.trace()`` / ``.profile()``), progress introspection, and
fault reporting.  The raw :class:`~repro.cluster.coordinator.QueryExecution`
stays reachable via ``.execution`` (and attribute delegation) for code
that pokes at engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .cluster import QueryExecution
from .errors import ExecutionError
from .pages import Page

if TYPE_CHECKING:  # pragma: no cover
    from .autotune import ElasticQuery
    from .engine import AccordionEngine
    from .obs import ProfileReport, QueryTrace


@dataclass
class QueryResult:
    """Materialised result of a finished query."""

    rows: list[tuple]
    columns: list[str]
    elapsed_seconds: float
    initialization_seconds: float
    query: QueryExecution

    @property
    def num_rows(self) -> int:
        return len(self.rows)


class QueryHandle:
    """Live handle to one submitted query (see module docstring)."""

    def __init__(self, engine: "AccordionEngine", execution: QueryExecution):
        self._engine = engine
        self._execution = execution

    # -- identity / state --------------------------------------------------
    @property
    def engine(self) -> "AccordionEngine":
        return self._engine

    @property
    def execution(self) -> QueryExecution:
        """The underlying runtime state (stages, tracker, fault events)."""
        return self._execution

    @property
    def id(self) -> int:
        return self._execution.id

    @property
    def sql(self) -> str:
        return self._execution.sql

    @property
    def finished(self) -> bool:
        return self._execution.finished

    @property
    def succeeded(self) -> bool:
        return self._execution.succeeded

    @property
    def failed(self) -> bool:
        return self._execution.failed

    @property
    def elapsed(self) -> float:
        return self._execution.elapsed

    @property
    def initialization_seconds(self) -> float:
        return self._execution.initialization_seconds

    # -- results -----------------------------------------------------------
    def result(self, max_virtual_seconds: float = 1e7) -> QueryResult:
        """Run the simulation to this query's completion and materialise.

        Raises the query's structured :class:`QueryFailedError` if it
        failed, and :class:`ExecutionError` if it cannot finish within
        ``max_virtual_seconds``."""
        if not self._execution.finished:
            self._engine.run_until_done(self._execution, max_virtual_seconds)
        return self._materialize()

    def _materialize(self) -> QueryResult:
        execution = self._execution
        if execution.failed:
            raise execution.error
        if not execution.finished:
            raise ExecutionError(f"query {execution.id} has not finished")
        page: Page = execution.result()
        return QueryResult(
            rows=page.rows(),
            columns=page.schema.names(),
            elapsed_seconds=execution.elapsed,
            initialization_seconds=execution.initialization_seconds,
            query=execution,
        )

    # -- runtime elasticity ------------------------------------------------
    @property
    def tuning(self) -> "ElasticQuery":
        """Runtime DOP tuning interface (paper Sections 4-5).

        Only available in Accordion mode — baseline engines (Presto /
        Prestissimo) have elasticity disabled and raise here."""
        return self._engine._elastic_for(self._execution)

    # -- observability -----------------------------------------------------
    def trace(self) -> "QueryTrace":
        """This query's span tree (requires ``EngineConfig.with_tracing()``).

        ``trace().to_chrome_json(path)`` writes a Chrome trace-event file
        that loads in Perfetto."""
        tracer = self._engine.tracer
        if not tracer.enabled:
            raise ExecutionError(
                "tracing is not enabled; construct the engine with "
                "EngineConfig().with_tracing()"
            )
        from .obs import QueryTrace, throughput_counters

        trace = QueryTrace(
            tracer, self.id, finished_at=self._execution.finished_at
        )
        trace.counters = throughput_counters(self._execution.tracker)
        return trace

    def profile(self) -> "ProfileReport":
        """Wall-clock operator attribution for this query (requires
        ``EngineConfig.with_tracing(profiling=True)``)."""
        tracer = self._engine.tracer
        if tracer.profiler is None:
            raise ExecutionError(
                "profiling is not enabled; construct the engine with "
                "EngineConfig().with_tracing(profiling=True)"
            )
        return tracer.profiler.report(self.id)

    # -- introspection -----------------------------------------------------
    def progress(self) -> dict[int, float]:
        return self._execution.progress()

    def progress_bars(self, width: int = 30) -> str:
        return self._execution.progress_bars(width)

    def fault_report(self) -> str:
        """Failure/recovery counters and fault timeline for this query."""
        from .metrics.report import render_fault_report

        return render_fault_report(self)

    def describe(self) -> str:
        return self._execution.describe()

    def __repr__(self) -> str:
        return (
            f"QueryHandle(id={self.id}, state={self._execution.state.value})"
        )

    # Engine-internal code and existing tests address QueryExecution fields
    # (``.stages``, ``.tracker``, ``.fault_events``, ...) directly; delegate
    # anything QueryHandle does not define itself.
    def __getattr__(self, name: str):
        return getattr(self._execution, name)
