"""QueryHandle: the single user-facing object for a submitted query.

``engine.submit(sql)`` returns a :class:`QueryHandle`.  Everything a user
does with a running or finished query hangs off it — materialising the
result, runtime DOP tuning (``.tuning``, absorbing the old standalone
``ElasticQuery`` entry point), structured traces and profiles from the
obs layer (``.trace()`` / ``.profile()``), progress introspection, and
fault reporting.  The raw :class:`~repro.cluster.coordinator.QueryExecution`
stays reachable via ``.execution`` (and attribute delegation) for code
that pokes at engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .cluster import QueryExecution
from .errors import ExecutionError, QueryCancelledError
from .pages import Page

if TYPE_CHECKING:  # pragma: no cover
    from .autotune import ElasticQuery
    from .engine import AccordionEngine
    from .obs import ProfileReport, QueryTrace
    from .sharing import SharingInfo


@dataclass
class QueryResult:
    """Materialised result of a finished query."""

    rows: list[tuple]
    columns: list[str]
    elapsed_seconds: float
    initialization_seconds: float
    query: QueryExecution

    @property
    def num_rows(self) -> int:
        return len(self.rows)


class QueryHandle:
    """Live handle to one submitted query (see module docstring).

    A handle is *pending* while the workload layer's admission controller
    holds the submission in its queue: ``execution`` is ``None`` and
    ``state`` is ``"queued"``.  Admission binds the handle to a live
    :class:`QueryExecution`; a queue timeout / policy rejection moves it
    to the terminal ``"rejected"`` state instead.  Handles returned by
    ``engine.submit()`` are always bound immediately.
    """

    def __init__(
        self, engine: "AccordionEngine", execution: QueryExecution | None = None,
        sql: str | None = None,
    ):
        self._execution = execution
        self._engine = engine
        self._sql = sql if sql is not None else (
            execution.sql if execution is not None else None
        )
        #: "queued" | "rejected" | "cancelled" while unbound, else None.
        self._queue_state: str | None = None if execution is not None else "queued"
        self._queue_error = None
        self._pending_callbacks: list = []
        #: Hook installed by the admission controller to dequeue on cancel.
        self._on_cancel_queued = None

    # -- workload-layer transitions (internal) -----------------------------
    def _bind(self, execution: QueryExecution) -> None:
        """Admission: attach the live execution and replay callbacks."""
        self._execution = execution
        self._queue_state = None
        self._on_cancel_queued = None
        callbacks, self._pending_callbacks = self._pending_callbacks, []
        for fn in callbacks:
            execution.on_done(lambda _exec, fn=fn: fn(self))

    def _reject(self, error) -> None:
        """Rejection / queued-cancellation: terminal without an execution."""
        self._queue_state = (
            "cancelled" if isinstance(error, QueryCancelledError) else "rejected"
        )
        self._queue_error = error
        self._on_cancel_queued = None
        callbacks, self._pending_callbacks = self._pending_callbacks, []
        for fn in callbacks:
            fn(self)

    # -- identity / state --------------------------------------------------
    @property
    def engine(self) -> "AccordionEngine":
        return self._engine

    @property
    def execution(self) -> QueryExecution | None:
        """The underlying runtime state (``None`` while queued/rejected)."""
        return self._execution

    @property
    def id(self) -> int | None:
        return self._execution.id if self._execution is not None else None

    @property
    def sql(self) -> str | None:
        return self._sql

    @property
    def state(self) -> str:
        """One of ``queued``, ``rejected``, ``running``, ``finished``,
        ``failed``, ``cancelled``."""
        if self._execution is None:
            return self._queue_state
        return self._execution.state.value

    @property
    def finished(self) -> bool:
        """Terminal: finished, failed, cancelled, or rejected."""
        if self._execution is None:
            return self._queue_state in ("rejected", "cancelled")
        return self._execution.finished

    @property
    def succeeded(self) -> bool:
        return self._execution is not None and self._execution.succeeded

    @property
    def failed(self) -> bool:
        if self._execution is None:
            return self._queue_state in ("rejected", "cancelled")
        return self._execution.failed

    @property
    def cancelled(self) -> bool:
        if self._execution is None:
            return self._queue_state == "cancelled"
        return self._execution.cancelled

    @property
    def error(self):
        """The structured error for a rejected/failed/cancelled query."""
        if self._execution is None:
            return self._queue_error
        return self._execution.error

    @property
    def elapsed(self) -> float:
        return self._execution.elapsed if self._execution is not None else 0.0

    @property
    def initialization_seconds(self) -> float:
        if self._execution is None:
            return 0.0
        return self._execution.initialization_seconds

    # -- lifecycle ---------------------------------------------------------
    def cancel(self, reason: str = "cancelled by user") -> None:
        """Cancel this query with clean task teardown.

        Running queries receive end signals (Section 4.3/4.4) so stateful
        operators flush and pipelines drain; queued submissions are
        removed from the admission queue.  Subsequent ``result()`` /
        ``wait()`` raise / report the structured
        :class:`~repro.errors.QueryCancelledError`.  Cancelling a
        terminal query is a no-op.
        """
        if self._execution is not None:
            self._execution.cancel(reason)
        elif self._queue_state == "queued" and self._on_cancel_queued is not None:
            self._on_cancel_queued(self, reason)

    def wait(self, timeout: float | None = None) -> bool:
        """Advance the simulation until this query is terminal.

        ``timeout`` is in *virtual* seconds (``None``: no bound).  Returns
        whether the query reached a terminal state; unlike ``result()`` it
        does not raise on failure/rejection — inspect ``state`` /
        ``error``.
        """
        if not self.finished:
            kernel = self._engine.kernel
            until = None if timeout is None else kernel.now + timeout
            kernel.run(until=until, stop_when=lambda: self.finished)
        return self.finished

    def on_done(self, fn) -> None:
        """Call ``fn(handle)`` once this query is terminal (admitted or
        not); fires immediately if it already is."""
        if self._execution is not None:
            self._execution.on_done(lambda _exec: fn(self))
        elif self.finished:
            fn(self)
        else:
            self._pending_callbacks.append(fn)

    # -- results -----------------------------------------------------------
    def result(self, max_virtual_seconds: float = 1e7) -> QueryResult:
        """Run the simulation to this query's completion and materialise.

        Raises the query's structured :class:`QueryFailedError` /
        :class:`QueryCancelledError` / :class:`QueryRejectedError` if it
        did not succeed, and :class:`ExecutionError` if it cannot finish
        within ``max_virtual_seconds``."""
        if not self.finished:
            self._engine.run_until_done(self, max_virtual_seconds)
        return self._materialize()

    def _materialize(self) -> QueryResult:
        if self._execution is None:
            if self._queue_error is not None:
                raise self._queue_error
            raise ExecutionError("query is still queued for admission")
        execution = self._execution
        if execution.failed or execution.cancelled:
            raise execution.error
        if not execution.finished:
            raise ExecutionError(f"query {execution.id} has not finished")
        page: Page = execution.result()
        return QueryResult(
            rows=page.rows(),
            columns=page.schema.names(),
            elapsed_seconds=execution.elapsed,
            initialization_seconds=execution.initialization_seconds,
            query=execution,
        )

    # -- runtime elasticity ------------------------------------------------
    @property
    def tuning(self) -> "ElasticQuery":
        """Runtime DOP tuning interface (paper Sections 4-5).

        Only available in Accordion mode — baseline engines (Presto /
        Prestissimo) have elasticity disabled and raise here."""
        if self._execution is None:
            raise ExecutionError(
                f"query is {self._queue_state}; tuning requires an admitted query"
            )
        return self._engine._elastic_for(self._execution)

    # -- prediction --------------------------------------------------------
    @property
    def prediction(self):
        """The :class:`repro.Prediction` attached at submission, or
        ``None`` when prediction is off, the query's template had no
        history yet, or the submission was served by the sharing layer
        without a new physical execution."""
        if self._execution is None:
            return None
        return getattr(self._execution, "prediction", None)

    @property
    def prediction_error(self) -> float | None:
        """Relative runtime prediction error ``|observed - predicted| /
        predicted``, populated when the query finishes; ``None`` without
        a prediction or before completion."""
        if self._execution is None:
            return None
        return getattr(self._execution, "prediction_error", None)

    # -- sharing -----------------------------------------------------------
    @property
    def sharing(self) -> "SharingInfo":
        """How this submission was served by the sharing layer
        (DESIGN.md §14): its role (``unshared`` / ``carrier`` /
        ``folded`` / ``cached``), the carrier query id it folded into,
        whether it was a result-cache hit, and the base-table pages it
        avoided re-reading.  Always available; reports ``unshared`` when
        sharing is disabled or the plan was not shareable."""
        from .sharing import SharingInfo, sharing_info

        if self._execution is None:
            return SharingInfo()
        return sharing_info(self._execution)

    # -- observability -----------------------------------------------------
    def trace(self) -> "QueryTrace":
        """This query's span tree (requires ``EngineConfig.with_tracing()``).

        ``trace().to_chrome_json(path)`` writes a Chrome trace-event file
        that loads in Perfetto."""
        tracer = self._engine.tracer
        if not tracer.enabled:
            raise ExecutionError(
                "tracing is not enabled; construct the engine with "
                "EngineConfig().with_tracing()"
            )
        from .obs import QueryTrace, throughput_counters

        trace = QueryTrace(
            tracer, self.id, finished_at=self._execution.finished_at
        )
        trace.counters = throughput_counters(self._execution.tracker)
        return trace

    def profile(self) -> "ProfileReport":
        """Wall-clock operator attribution for this query (requires
        ``EngineConfig.with_tracing(profiling=True)``)."""
        tracer = self._engine.tracer
        if tracer.profiler is None:
            raise ExecutionError(
                "profiling is not enabled; construct the engine with "
                "EngineConfig().with_tracing(profiling=True)"
            )
        return tracer.profiler.report(self.id)

    # -- introspection -----------------------------------------------------
    def progress(self) -> dict[int, float]:
        return self._execution.progress()

    def progress_bars(self, width: int = 30) -> str:
        return self._execution.progress_bars(width)

    def fault_report(self) -> str:
        """Failure/recovery counters and fault timeline for this query."""
        from .metrics.report import render_fault_report

        return render_fault_report(self)

    def describe(self) -> str:
        return self._execution.describe()

    def __repr__(self) -> str:
        return (
            f"QueryHandle(id={self.id}, state={self._execution.state.value})"
        )

    # Engine-internal code and existing tests address QueryExecution fields
    # (``.stages``, ``.tracker``, ``.fault_events``, ...) directly; delegate
    # anything QueryHandle does not define itself.
    def __getattr__(self, name: str):
        if self._execution is None:
            raise AttributeError(
                f"QueryHandle has no attribute {name!r} (query is "
                f"{self._queue_state}; no execution is bound)"
            )
        return getattr(self._execution, name)
