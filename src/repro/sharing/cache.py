"""Fingerprint-keyed result cache (DESIGN.md §14).

Keys are ``(catalog version, normalized plan fingerprint, QueryOptions
fingerprint)`` — the same keying discipline as the plan cache, one level
up: equal keys mean the *answer page* is reusable, so a repeat query
short-circuits admission, planning, and execution entirely.  The cache
is per-engine (catalog identity is implied by ownership) and bounded two
ways: a byte capacity with LRU eviction, and an optional TTL in *virtual*
seconds (clocks come from the sim kernel, keeping same-seed runs
byte-identical).  A catalog version bump (``Catalog.register``)
invalidates every entry from older versions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..pages import Page


@dataclass
class CacheEntry:
    page: Page
    cached_at: float
    size_bytes: int
    #: Scan pages a cache hit avoids re-reading (for the sharing stats).
    scan_pages: int


class ResultCache:
    """LRU + TTL result cache over materialised answer pages."""

    def __init__(self, kernel, capacity_bytes: int, ttl: float | None = None):
        self.kernel = kernel
        self.capacity_bytes = capacity_bytes
        self.ttl = ttl
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.skipped_oversize = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> CacheEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self.ttl is not None and self.kernel.now - entry.cached_at > self.ttl:
            self._drop(key, entry)
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, key: tuple) -> bool:
        """Whether ``get(key)`` would hit — without touching LRU order,
        hit/miss counters, or TTL expiry (admission-probe use)."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if self.ttl is not None and self.kernel.now - entry.cached_at > self.ttl:
            return False
        return True

    def put(self, key: tuple, page: Page, scan_pages: int = 0) -> None:
        size = page.size_bytes
        if size > self.capacity_bytes:
            self.skipped_oversize += 1
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= old.size_bytes
        while self._entries and self.bytes + size > self.capacity_bytes:
            evicted_key, evicted = self._entries.popitem(last=False)
            self.bytes -= evicted.size_bytes
            self.evictions += 1
        self._entries[key] = CacheEntry(
            page=page,
            cached_at=self.kernel.now,
            size_bytes=size,
            scan_pages=scan_pages,
        )
        self.bytes += size

    def purge_versions_before(self, version: int) -> None:
        """Drop entries keyed under an older catalog version."""
        stale = [k for k in self._entries if k[0] != version]
        for key in stale:
            self._drop(key, self._entries[key])
            self.invalidations += 1

    def clear(self) -> None:
        self._entries.clear()
        self.bytes = 0

    def _drop(self, key: tuple, entry: CacheEntry) -> None:
        del self._entries[key]
        self.bytes -= entry.size_bytes

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }
