"""Concurrent-query folding + shared result cache (DESIGN.md §14).

Public surface (re-exported from :mod:`repro`): enable with
``EngineConfig().with_sharing()``; inspect per-query outcomes through
``QueryHandle.sharing`` (a :class:`SharingInfo`).  Everything else here
is engine-internal plumbing behind ``engine.submit`` / ``submit_many``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import ResultCache
from .fold import FoldGroup, SharedConsumer
from .manager import SharingManager
from .normalize import NormalizedQuery, expr_key, normalize_logical, plan_key, plan_residual
from .residual import Residual, apply_residual

__all__ = [
    "FoldGroup",
    "NormalizedQuery",
    "Residual",
    "ResultCache",
    "SharedConsumer",
    "SharingInfo",
    "SharingManager",
    "apply_residual",
    "expr_key",
    "normalize_logical",
    "plan_key",
    "plan_residual",
]


@dataclass(frozen=True)
class SharingInfo:
    """How one submission was served (``QueryHandle.sharing``).

    ``role`` is ``"unshared"`` (ran its own physical execution outside
    the sharing layer), ``"carrier"`` (ran the physical execution other
    queries folded onto), ``"folded"`` (grafted onto a carrier), or
    ``"cached"`` (served from the result cache)."""

    role: str = "unshared"
    #: Carrier query id this query's execution was folded into (folded
    #: consumers once dispatched; carriers report their own id).
    folded_into: int | None = None
    cache_hit: bool = False
    #: Base-table pages this query avoided re-reading via fold/cache.
    pages_saved: int = 0

    def __str__(self) -> str:
        if self.role == "cached":
            return f"cached (saved {self.pages_saved} scan pages)"
        if self.role == "folded":
            return (
                f"folded into Q{self.folded_into} "
                f"(saved {self.pages_saved} scan pages)"
            )
        return self.role


def sharing_info(execution) -> SharingInfo:
    """Build a :class:`SharingInfo` for any execution-like object."""
    role = getattr(execution, "role", None)
    if not isinstance(execution, SharedConsumer) or role is None:
        return SharingInfo()
    carrier = execution.carrier
    folded_into = None
    if role in ("carrier", "folded") and carrier is not None:
        folded_into = carrier.id
    return SharingInfo(
        role=role,
        folded_into=folded_into,
        cache_hit=execution.cache_hit,
        pages_saved=execution.pages_saved,
    )
