"""SharingManager: the fold detector + result cache behind submission.

Sits between :meth:`AccordionEngine.submit` (via ``engine._dispatch``)
and the coordinator when ``EngineConfig.sharing.enabled``.  Every
submission is normalized (:mod:`repro.sharing.normalize`) and routed:

1. **cache** — the result cache holds a live entry for (catalog version,
   plan fingerprint, options fingerprint): answer synchronously, no
   physical execution at all;
2. **fold** — a live :class:`FoldGroup` has an exactly-equal fingerprint,
   or one of the live groups' carriers *subsumes* this plan
   (:func:`plan_residual`): graft a consumer onto it — base-table pages
   are read once for the whole group (scan sharing falls out of running
   one physical plan);
3. **carrier** — otherwise start a new group whose carrier dispatches
   immediately (or after ``fold_window`` virtual seconds, giving
   closely-spaced lookalikes a chance to pile on).

Unshareable plans (Limit/TopN, unparseable decompositions) bypass
sharing entirely and return the coordinator's raw ``QueryExecution``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..cluster.coordinator import QueryOptions
from .cache import ResultCache
from .fold import FoldGroup, SharedConsumer
from .normalize import NormalizedQuery, normalize_logical, plan_residual

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import AccordionEngine


class SharingManager:
    def __init__(self, engine: "AccordionEngine"):
        self.engine = engine
        self.kernel = engine.kernel
        self.config = engine.config.sharing
        self.coordinator = engine.coordinator
        self.catalog = engine.catalog
        self.cache: ResultCache | None = None
        if self.config.result_cache_bytes > 0:
            self.cache = ResultCache(
                self.kernel,
                self.config.result_cache_bytes,
                ttl=self.config.cache_ttl,
            )
        #: Live fold groups by (catalog version, plan key, options key).
        self.groups: dict[tuple, FoldGroup] = {}
        self._normalized: dict[tuple, NormalizedQuery] = {}
        self._scan_pages: dict[tuple, int] = {}
        self._catalog_version = engine.catalog.version
        metrics = engine.metrics
        self._folds = metrics.counter("sharing.folds")
        self._cache_hits = metrics.counter("sharing.cache_hits")
        self._cache_misses = metrics.counter("sharing.cache_misses")
        self._pages_saved = metrics.counter("sharing.pages_saved")
        self.carriers = 0
        self.unshared = 0
        self.consumers = 0
        self.detaches = 0

    # -- counters (read by reports/tests) -----------------------------------
    @property
    def folds(self) -> int:
        return self._folds.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.value

    @property
    def pages_saved(self) -> int:
        return self._pages_saved.value

    # -- normalization (memoized per catalog version) -----------------------
    def _normalize(self, sql: str) -> NormalizedQuery:
        memo_key = (self._catalog_version, sql)
        normalized = self._normalized.get(memo_key)
        if normalized is None:
            from ..plan.logical_planner import LogicalPlanner
            from ..plan.optimizer import prune_columns
            from ..sql.parser import parse

            logical = prune_columns(
                LogicalPlanner(self.catalog).plan(parse(sql))
            )
            normalized = normalize_logical(logical)
            self._normalized[memo_key] = normalized
        return normalized

    def _scan_page_estimate(self, normalized: NormalizedQuery) -> int:
        """Base-table pages one physical run of this plan reads."""
        key = (self._catalog_version, normalized.key)
        cached = self._scan_pages.get(key)
        if cached is None:
            page_rows = self.engine.config.page_row_limit
            cached = sum(
                math.ceil(self.catalog.table(t).num_rows / page_rows)
                for t in normalized.scan_tables
            )
            self._scan_pages[key] = cached
        return cached

    def _observe_catalog(self) -> None:
        version = self.catalog.version
        if version != self._catalog_version:
            self._catalog_version = version
            if self.cache is not None:
                self.cache.purge_versions_before(version)

    # -- submission routing --------------------------------------------------
    def submit(self, sql: str, options: QueryOptions | None = None):
        """Route one submission; returns a ``SharedConsumer`` or (for
        unshareable plans) a raw ``QueryExecution``."""
        options = options or QueryOptions()
        self._observe_catalog()
        normalized = self._normalize(sql)
        if not normalized.shareable:
            self.unshared += 1
            return self.coordinator.submit(sql, options)
        key = (self._catalog_version, normalized.key, options.fingerprint())
        scan_pages = self._scan_page_estimate(normalized)
        self.consumers += 1

        if self.cache is not None:
            entry = self.cache.get(key)
            if entry is not None:
                self._cache_hits.add()
                self._pages_saved.add(entry.scan_pages)
                consumer = SharedConsumer(
                    self, self.coordinator.next_query_id(), sql, options,
                    role="cached", cache_key=key,
                    scan_pages=entry.scan_pages,
                )
                self._trace("cache-hit", consumer)
                consumer._complete(entry.page)
                return consumer
            self._cache_misses.add()

        if self.config.fold:
            group, residual = self._find_group(key, normalized, options)
            if group is not None:
                consumer = SharedConsumer(
                    self, self.coordinator.next_query_id(), sql, options,
                    role="folded", cache_key=key, residual=residual,
                    scan_pages=scan_pages,
                )
                group.add(consumer)
                self._folds.add()
                self._pages_saved.add(scan_pages)
                self._trace("fold", consumer, group=group)
                return consumer

        group = FoldGroup(self, key, normalized, sql, options)
        self.groups[key] = group
        consumer = SharedConsumer(
            self, self.coordinator.next_query_id(), sql, options,
            role="carrier", cache_key=key, scan_pages=scan_pages,
        )
        group.add(consumer)
        self.carriers += 1
        window = self.config.fold_window if self.config.fold else 0.0
        group.schedule_dispatch(window)
        self._trace("carrier", consumer, group=group)
        return consumer

    def probe(self, sql: str, options: QueryOptions | None = None) -> str | None:
        """Side-effect-free routing preview: ``"cache"``, ``"fold"``, or
        ``None`` (would dispatch a new physical execution).  The admission
        controller uses this to admit head-of-line submissions that will
        not occupy new resources."""
        options = options or QueryOptions()
        self._observe_catalog()
        normalized = self._normalize(sql)
        if not normalized.shareable:
            return None
        key = (self._catalog_version, normalized.key, options.fingerprint())
        if self.cache is not None and self.cache.peek(key):
            return "cache"
        if self.config.fold:
            group, _residual = self._find_group(key, normalized, options)
            if group is not None:
                return "fold"
        return None

    def _find_group(
        self, key: tuple, normalized: NormalizedQuery, options: QueryOptions
    ):
        """An accepting group this plan can ride: exact fingerprint first,
        then carrier-output subsumption (conjunct-subset + rebase)."""
        group = self.groups.get(key)
        if group is not None and group.accepts:
            from .residual import Residual

            return group, Residual()
        options_key = key[2]
        for group_key in sorted(self.groups, key=repr):
            group = self.groups[group_key]
            if not group.accepts or group_key == key:
                continue
            if group_key[0] != key[0] or group_key[2] != options_key:
                continue
            residual = plan_residual(normalized, group.normalized)
            if residual is not None:
                return group, residual
        return None, None

    # -- group lifecycle -----------------------------------------------------
    def _group_done(self, group: FoldGroup) -> None:
        if group.done:
            return
        group.done = True
        if self.groups.get(group.key) is group:
            del self.groups[group.key]
        if self.cache is not None:
            for consumer in group.consumers:
                if consumer.succeeded:
                    self.cache.put(
                        consumer.cache_key,
                        consumer._result_page,
                        scan_pages=consumer.scan_pages,
                    )

    def _on_detach(self, group: FoldGroup, consumer: SharedConsumer) -> None:
        self.detaches += 1
        workload = self.engine._workload
        if workload is not None and group.carrier is not None:
            workload.arbiter.unfold_consumer(group.carrier.id, consumer.id)
        self._trace("detach", consumer, group=group)

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        out = {
            "consumers": self.consumers,
            "carriers": self.carriers,
            "folds": self.folds,
            "unshared": self.unshared,
            "detaches": self.detaches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "pages_saved": self.pages_saved,
            "active_groups": len(self.groups),
        }
        if self.cache is not None:
            out["cache_entries"] = len(self.cache)
            out["cache_bytes"] = self.cache.bytes
            out["cache_evictions"] = self.cache.evictions
            out["cache_invalidations"] = self.cache.invalidations
        return out

    def snapshot(self) -> dict:
        """Counter snapshot for delta-based workload reporting."""
        return {
            "folds": self.folds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "pages_saved": self.pages_saved,
            "carriers": self.carriers,
            "unshared": self.unshared,
        }

    def _trace(self, event: str, consumer: SharedConsumer, group=None) -> None:
        tracer = self.kernel.tracer
        if not tracer.enabled:
            return
        meta = {
            "query_id": consumer.id,
            "role": consumer.role,
            "pages_saved": consumer.pages_saved,
        }
        parent = None
        if group is not None and group.carrier is not None:
            meta["carrier_id"] = group.carrier.id
            parent = tracer.root_for_query(group.carrier.id)
        tracer.instant(
            "sharing", f"{event} Q{consumer.id}", parent=parent,
            node="coordinator", **meta,
        )
