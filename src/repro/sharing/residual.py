"""Residual operators: the per-consumer tail applied to a shared stream.

When query B is folded onto carrier A, A's physical execution produces
A's result page once; each folded consumer then applies its
:class:`Residual` — extra filter conjuncts, a re-projection into B's
output schema, and optionally a grouped re-aggregation plus final
projection — to derive B's answer from the shared page.

Determinism contract: every step must produce *bit-identical* values to
an isolated run of B.  Filters and projections evaluate the same bound
expressions over the same values, so they are exact by construction.
The grouped aggregation emits groups in sorted-key order — the order the
engine's hash aggregation produces when group codes are assigned by
``np.unique`` over the keys (its factorizers sort within each learning
batch) — and is restricted by the fold detector to order-insensitive
aggregates (``count``/``min``/``max`` over anything; ``sum``/``avg``
over INT64, where ``avg`` divides the exact integer sum by the exact
count in float64 — the same final-aggregation arithmetic the engine
uses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from ..pages import ColumnType, Page, Schema
from ..sql.expressions import AggregateCall, BoundExpr


@dataclass
class Residual:
    """What a folded consumer still has to do on the carrier's output.

    ``project`` is ``(exprs, schema)`` over the carrier's output;
    ``aggregate`` is ``(group_keys, aggregates, schema)`` over the
    projection's output; ``post_project`` is ``(exprs, schema)`` over the
    aggregation's output.  ``None`` members are skipped.  An all-``None``
    residual is the identity (exact-fingerprint fold)."""

    predicate: BoundExpr | None = None
    project: tuple[list[BoundExpr], Schema] | None = None
    aggregate: tuple[list[int], list[AggregateCall], Schema] | None = None
    post_project: tuple[list[BoundExpr], Schema] | None = None

    @property
    def identity(self) -> bool:
        return (
            self.predicate is None
            and self.project is None
            and self.aggregate is None
        )

    def describe(self) -> str:
        parts = []
        if self.predicate is not None:
            parts.append(f"filter[{self.predicate}]")
        if self.project is not None:
            parts.append(f"project[{len(self.project[0])} cols]")
        if self.aggregate is not None:
            keys, aggs, _schema = self.aggregate
            parts.append(f"agg[{len(keys)} keys, {len(aggs)} aggs]")
        return " -> ".join(parts) if parts else "identity"


def apply_residual(page: Page, residual: Residual) -> Page:
    """Derive a folded consumer's result page from the carrier's page."""
    if residual.predicate is not None:
        keep = residual.predicate.evaluate(page).astype(bool, copy=False)
        page = page.mask(keep)
    if residual.project is not None:
        exprs, schema = residual.project
        page = Page(schema, [e.evaluate(page) for e in exprs])
    if residual.aggregate is not None:
        group_keys, aggregates, schema = residual.aggregate
        page = _aggregate_page(page, group_keys, aggregates, schema)
    if residual.post_project is not None:
        exprs, schema = residual.post_project
        page = Page(schema, [e.evaluate(page) for e in exprs])
    return page


# -- grouped aggregation over one page ---------------------------------------
def _group_ids(page: Page, group_keys: list[int]) -> tuple[np.ndarray, list]:
    """Sorted-key-order group ids (the engine's factorizer order)."""
    n = page.num_rows
    key_columns = [page.columns[k].tolist() for k in group_keys]
    seen: dict = {}
    raw = np.empty(n, dtype=np.int64)
    for i, key_row in enumerate(zip(*key_columns)):
        g = seen.get(key_row)
        if g is None:
            g = seen[key_row] = len(seen)
        raw[i] = g
    order = sorted(seen)
    remap = np.empty(len(seen), dtype=np.int64)
    for rank, key_row in enumerate(order):
        remap[seen[key_row]] = rank
    gid = remap[raw] if n else raw
    return gid, order


def _aggregate_page(
    page: Page,
    group_keys: list[int],
    aggregates: list[AggregateCall],
    schema: Schema,
) -> Page:
    if not group_keys:
        raise ExecutionError(
            "residual aggregation requires group keys (global aggregates "
            "fold only on exact fingerprint match)"
        )
    gid, order = _group_ids(page, group_keys)
    ngroups = len(order)
    counts = (
        np.bincount(gid, minlength=ngroups).astype(np.int64)
        if page.num_rows
        else np.zeros(ngroups, dtype=np.int64)
    )
    columns: list[np.ndarray] = []
    for pos in range(len(group_keys)):
        field = schema.fields[pos]
        columns.append(field.type.coerce([key_row[pos] for key_row in order]))
    for j, call in enumerate(aggregates):
        field = schema.fields[len(group_keys) + j]
        columns.append(
            _evaluate_agg(call, page, gid, ngroups, counts, field.type)
        )
    return Page(schema, columns)


def _evaluate_agg(
    call: AggregateCall,
    page: Page,
    gid: np.ndarray,
    ngroups: int,
    counts: np.ndarray,
    out_type: ColumnType,
) -> np.ndarray:
    if call.function == "count":
        # No NULLs in the engine's data model: count(x) == count(*).
        return counts.astype(out_type.numpy_dtype, copy=False)
    arg = call.arg.evaluate(page)
    if call.function == "sum":
        out = np.zeros(ngroups, dtype=np.int64)
        np.add.at(out, gid, arg.astype(np.int64, copy=False))
        return out.astype(out_type.numpy_dtype, copy=False)
    if call.function == "avg":
        sums = np.zeros(ngroups, dtype=np.int64)
        np.add.at(sums, gid, arg.astype(np.int64, copy=False))
        # Exact integer sum / exact count in float64: the same division
        # the engine's final aggregation performs.
        return sums.astype(np.float64) / counts
    if call.function in ("min", "max"):
        return _min_max(call.function, arg, gid, ngroups, out_type)
    raise ExecutionError(f"unsupported residual aggregate {call.function}")


def _min_max(
    function: str,
    arg: np.ndarray,
    gid: np.ndarray,
    ngroups: int,
    out_type: ColumnType,
) -> np.ndarray:
    if arg.dtype == object:
        best: list = [None] * ngroups
        gids = gid.tolist()
        if function == "min":
            for g, value in zip(gids, arg.tolist()):
                current = best[g]
                if current is None or value < current:
                    best[g] = value
        else:
            for g, value in zip(gids, arg.tolist()):
                current = best[g]
                if current is None or value > current:
                    best[g] = value
        return out_type.coerce(best)
    # Seed each group with its first value, then reduce in place; groups
    # are non-empty by construction (ids come from the rows themselves).
    first_index = np.full(ngroups, len(gid), dtype=np.int64)
    np.minimum.at(first_index, gid, np.arange(len(gid), dtype=np.int64))
    out = arg[first_index].copy()
    if function == "min":
        np.minimum.at(out, gid, arg)
    else:
        np.maximum.at(out, gid, arg)
    return out.astype(out_type.numpy_dtype, copy=False)
