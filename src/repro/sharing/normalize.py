"""Plan normalization and subplan subsumption for concurrent-query folding.

The fold detector (DESIGN.md §14) never compares SQL text: it compares
*normalized logical plans*.  :func:`expr_key` canonicalises a bound
expression into a stable string — conjuncts/disjuncts sorted, commutative
operands ordered, ``>``/``>=`` rewritten as flipped ``<``/``<=`` — so two
textually different but semantically identical filters produce the same
fingerprint across runs and processes (no ``id()``/hash-seed leakage).
:func:`plan_key` lifts that to whole plans, flattening and sorting
conjunctive ``Filter`` chains.

On top of the fingerprints, :func:`decompose` splits a plan into the
shared *core* (everything below the filter/projection/aggregation crown)
plus its crown, and :func:`plan_residual` decides whether query B can be
grafted onto carrier A: B folds when its core matches A's and A's filter
conjuncts are a subset of B's, in which case the returned
:class:`~repro.sharing.residual.Residual` holds B's extra conjuncts and
final projection/aggregation *rebased onto A's output columns*.

Safety rules (answers must stay bit-identical to an isolated run):

- plans containing ``Limit``/``TopN`` are never shared (ties/prefixes are
  tuple-order sensitive);
- residual re-aggregation folds only for *grouped* aggregations with
  order-insensitive aggregates: ``count``/``min``/``max`` always,
  ``sum``/``avg`` only over INT64 arguments (float sums depend on
  accumulation order), and never ``distinct``;
- everything else falls back to an exact-fingerprint fold or no fold.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass

from ..pages import ColumnType, Field, Schema
from ..plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
    walk,
)
from ..sql.expressions import (
    AggregateCall,
    Arithmetic,
    BoolAnd,
    BoolNot,
    BoolOr,
    BoundExpr,
    CaseWhen,
    Cast,
    Comparison,
    Constant,
    ExtractDatePart,
    InputRef,
    InSet,
    IsNull,
    LikeMatch,
    Negate,
)
from .residual import Residual

#: Bump when the normalization rules change: fingerprints from different
#: rule versions must never collide in a persisted cache.
NORMALIZE_VERSION = 1

#: Aggregate functions whose result does not depend on input row order.
#: ``sum``/``avg`` qualify only over exact (integer) arithmetic.
_ORDER_FREE_AGGS = ("count", "min", "max", "sum", "avg")


# -- expression canonicalisation --------------------------------------------
def expr_key(expr: BoundExpr, literals: bool = True) -> str:
    """Deterministic canonical form of a bound expression.

    Two expressions with equal keys are semantically equivalent (the
    converse does not hold — this is a syntactic canonicalisation, not a
    theorem prover).  Commutative reorderings that would change float
    evaluation results are *not* applied to arithmetic over floats —
    only comparisons and boolean connectives are reordered, which are
    result-exact under any order.

    ``literals=False`` parameterizes constants out (``price > 10`` and
    ``price > 20`` share one key, with the literal's *type* kept so
    schema changes still separate) — the query-*template* form used by
    ``repro.predict`` to key demand history.  Exact folding and the
    result cache always use ``literals=True``.
    """
    if isinstance(expr, InputRef):
        # The name is cosmetic; position + type is the identity.
        return f"${expr.index}"
    if isinstance(expr, Constant):
        if not literals:
            return f"lit:{expr.type.value}:?"
        return f"lit:{expr.type.value}:{expr.value!r}"
    if isinstance(expr, Arithmetic):
        left = expr_key(expr.left, literals)
        right = expr_key(expr.right, literals)
        return f"({left}{expr.op}{right})"
    if isinstance(expr, Negate):
        return f"(neg {expr_key(expr.operand, literals)})"
    if isinstance(expr, Comparison):
        op = expr.op
        lhs = expr_key(expr.left, literals)
        rhs = expr_key(expr.right, literals)
        if op in (">", ">="):
            # a > b  ==  b < a: one canonical direction.
            op = "<" if op == ">" else "<="
            lhs, rhs = rhs, lhs
        elif op in ("=", "<>") and rhs < lhs:
            lhs, rhs = rhs, lhs
        return f"({lhs} {op} {rhs})"
    if isinstance(expr, (BoolAnd, BoolOr)):
        tag = "and" if isinstance(expr, BoolAnd) else "or"
        keys = sorted(
            expr_key(t, literals) for t in _flatten(expr, type(expr))
        )
        return f"({tag} {' '.join(keys)})"
    if isinstance(expr, BoolNot):
        return f"(not {expr_key(expr.operand, literals)})"
    if isinstance(expr, InSet):
        if literals:
            options = ",".join(sorted(repr(o) for o in expr.options))
        else:
            # Keep the cardinality: IN over 2 vs. 200 options is a
            # different template (very different selectivity/cost).
            options = ",".join("?" * len(expr.options))
        return f"(in {expr_key(expr.value, literals)} [{options}])"
    if isinstance(expr, LikeMatch):
        neg = "!" if expr.negated else ""
        pattern = repr(expr.pattern) if literals else "?"
        return f"(like{neg} {expr_key(expr.value, literals)} {pattern})"
    if isinstance(expr, IsNull):
        neg = "!" if expr.negated else ""
        return f"(isnull{neg} {expr_key(expr.value, literals)})"
    if isinstance(expr, CaseWhen):
        whens = " ".join(
            f"{expr_key(cond, literals)}:{expr_key(value, literals)}"
            for cond, value in expr.whens
        )
        default = (
            expr_key(expr.default, literals)
            if expr.default is not None else "-"
        )
        return f"(case {whens} else {default})"
    if isinstance(expr, ExtractDatePart):
        return f"(extract {expr.unit} {expr_key(expr.source, literals)})"
    if isinstance(expr, Cast):
        return f"(cast {expr.type.value} {expr_key(expr.value, literals)})"
    # Unknown node kinds fall back to the dataclass repr, which is
    # deterministic (frozen dataclasses of plain values).
    return f"?{expr!r}"


def _flatten(expr: BoundExpr, kind) -> list[BoundExpr]:
    """Flatten nested same-kind connectives: AND(a, AND(b, c)) -> [a,b,c]."""
    if isinstance(expr, kind):
        out: list[BoundExpr] = []
        for term in expr.terms:
            out.extend(_flatten(term, kind))
        return out
    return [expr]


def split_conjuncts(predicate: BoundExpr) -> list[BoundExpr]:
    """A filter predicate as a flat list of AND-ed conjuncts."""
    return _flatten(predicate, BoolAnd)


def agg_key(call: AggregateCall) -> str:
    arg = expr_key(call.arg) if call.arg is not None else "*"
    distinct = "distinct " if call.distinct else ""
    return f"{call.function}({distinct}{arg}):{call.result_type.value}"


# -- plan fingerprints -------------------------------------------------------
def plan_key(node: LogicalNode, literals: bool = True) -> tuple:
    """Stable, hashable fingerprint of a logical plan.

    Consecutive ``Filter`` nodes are flattened and their conjuncts sorted
    by :func:`expr_key`, so predicate order (as written in SQL) does not
    change the fingerprint.  Output column *names* are part of project /
    aggregate keys: result schemas are user-visible.

    ``literals=False`` produces the query-*template* fingerprint: filter
    and projection literals are parameterized out (see :func:`expr_key`)
    while every structural element — tables, column sets, join shape,
    aggregate calls, output names, Limit/TopN counts — still
    participates, so schema or option changes never collide.
    """
    if isinstance(node, LogicalScan):
        return ("scan", node.table, tuple(node.column_indexes))
    if isinstance(node, LogicalFilter):
        conjuncts: list[BoundExpr] = []
        child: LogicalNode = node
        while isinstance(child, LogicalFilter):
            conjuncts.extend(split_conjuncts(child.predicate))
            child = child.child
        return (
            "filter",
            tuple(sorted(expr_key(c, literals) for c in conjuncts)),
            plan_key(child, literals),
        )
    if isinstance(node, LogicalProject):
        return (
            "project",
            tuple(expr_key(e, literals) for e in node.exprs),
            tuple(node.schema.names()),
            plan_key(node.child, literals),
        )
    if isinstance(node, LogicalAggregate):
        return (
            "agg",
            tuple(node.group_keys),
            tuple(agg_key(a) for a in node.aggregates),
            tuple(node.schema.names()),
            plan_key(node.child, literals),
        )
    if isinstance(node, LogicalJoin):
        return (
            "join",
            node.join_type.value,
            tuple(node.left_keys),
            tuple(node.right_keys),
            (
                expr_key(node.residual, literals)
                if node.residual is not None else None
            ),
            plan_key(node.left, literals),
            plan_key(node.right, literals),
        )
    if isinstance(node, LogicalSort):
        return ("sort", tuple(node.sort_keys), plan_key(node.child, literals))
    if isinstance(node, LogicalTopN):
        return (
            "topn", node.count, tuple(node.sort_keys),
            plan_key(node.child, literals),
        )
    if isinstance(node, LogicalLimit):
        return ("limit", node.count, plan_key(node.child, literals))
    # Future node kinds: identity by class name + child keys (coarse but
    # safe — at worst it prevents a fold).
    return (
        type(node).__name__,
        tuple(plan_key(c, literals) for c in node.children()),
    )


# -- shape decomposition -----------------------------------------------------
@dataclass
class DetailShape:
    """Decomposition of a detail (non-aggregating) crown:
    ``[Project] [Filter]* core``.  All expressions are core-relative."""

    core: LogicalNode
    core_key: tuple
    conjuncts: list[BoundExpr]
    out_exprs: list[BoundExpr]
    out_names: list[str]
    #: Precomputed ``expr_key`` of each output expression — the carrier's
    #: output "namespace" that residual expressions are rebased into.
    out_keys: list[str]


@dataclass
class AggShape:
    """Decomposition of ``[Project_post] Aggregate [Project_pre] [Filter]*
    core``.  ``group_keys``/``aggregates`` are positions into (exprs
    over) the pre-projection output, exactly as planned."""

    detail: DetailShape
    group_keys: list[int]
    aggregates: list[AggregateCall]
    agg_schema: Schema
    post_exprs: list[BoundExpr] | None
    post_names: list[str] | None


@dataclass
class NormalizedQuery:
    """One query's normalized identity plus its foldable decomposition."""

    key: tuple
    root: LogicalNode
    #: Whether this plan may participate in sharing at all.
    shareable: bool
    #: Exactly one of detail/agg is set for decomposable crowns; both are
    #: None when the root shape is unrecognised (exact folds still work).
    detail: DetailShape | None
    agg: AggShape | None
    scan_tables: tuple[str, ...]


def _decompose_detail(node: LogicalNode) -> DetailShape:
    out_exprs: list[BoundExpr] | None = None
    out_names: list[str] | None = None
    if isinstance(node, LogicalProject):
        out_exprs = list(node.exprs)
        out_names = list(node.schema.names())
        node = node.child
    conjuncts: list[BoundExpr] = []
    while isinstance(node, LogicalFilter):
        conjuncts.extend(split_conjuncts(node.predicate))
        node = node.child
    core = node
    if out_exprs is None:
        out_exprs = [
            InputRef(i, f.type, f.name) for i, f in enumerate(core.schema.fields)
        ]
        out_names = core.schema.names()
    return DetailShape(
        core=core,
        core_key=plan_key(core),
        conjuncts=conjuncts,
        out_exprs=out_exprs,
        out_names=out_names,
        out_keys=[expr_key(e) for e in out_exprs],
    )


def decompose(root: LogicalNode) -> tuple[DetailShape | None, AggShape | None]:
    """Split the crown of a plan into a detail or aggregate shape."""
    node = root
    post_exprs: list[BoundExpr] | None = None
    post_names: list[str] | None = None
    if isinstance(node, LogicalProject) and isinstance(
        node.child, LogicalAggregate
    ):
        post_exprs = list(node.exprs)
        post_names = list(node.schema.names())
        node = node.child
    if isinstance(node, LogicalAggregate):
        return None, AggShape(
            detail=_decompose_detail(node.child),
            group_keys=list(node.group_keys),
            aggregates=list(node.aggregates),
            agg_schema=node.schema,
            post_exprs=post_exprs,
            post_names=post_names,
        )
    return _decompose_detail(root), None


def normalize_logical(root: LogicalNode) -> NormalizedQuery:
    shareable = not any(
        isinstance(n, (LogicalTopN, LogicalLimit)) for n in walk(root)
    )
    detail, agg = (None, None)
    if shareable:
        detail, agg = decompose(root)
    return NormalizedQuery(
        key=(NORMALIZE_VERSION, plan_key(root)),
        root=root,
        shareable=shareable,
        detail=detail,
        agg=agg,
        scan_tables=tuple(
            n.table for n in walk(root) if isinstance(n, LogicalScan)
        ),
    )


# -- rebasing core-relative expressions onto a carrier's output --------------
class _Unmappable(Exception):
    pass


def rebase(expr: BoundExpr, shape: DetailShape) -> BoundExpr | None:
    """Rewrite a core-relative expression to read the carrier's output.

    Matches whole subtrees against the carrier's output expressions by
    canonical key (so ``l_quantity * 2`` maps onto a carrier column that
    computes exactly that), recursing into children otherwise.  Returns
    ``None`` when some leaf column is not derivable from the output."""
    try:
        return _rebase(expr, shape)
    except _Unmappable:
        return None


def _rebase(expr: BoundExpr, shape: DetailShape) -> BoundExpr:
    key = expr_key(expr)
    for i, out_key in enumerate(shape.out_keys):
        if out_key == key:
            name = expr.name if isinstance(expr, InputRef) else shape.out_names[i]
            return InputRef(i, expr.type, name)
    if isinstance(expr, InputRef):
        raise _Unmappable(key)
    changes = {}
    for f in dataclasses.fields(expr):
        value = getattr(expr, f.name)
        new_value = _rebase_value(value, shape)
        if new_value is not value:
            changes[f.name] = new_value
    return dataclasses.replace(expr, **changes) if changes else expr


def _rebase_value(value, shape: DetailShape):
    if isinstance(value, BoundExpr):
        return _rebase(value, shape)
    if isinstance(value, tuple):
        new_items = tuple(_rebase_value(v, shape) for v in value)
        if any(a is not b for a, b in zip(new_items, value)):
            return new_items
        return value
    return value


# -- subsumption -------------------------------------------------------------
def _residual_conjuncts(
    b_conjuncts: list[BoundExpr], a_conjuncts: list[BoundExpr]
) -> list[BoundExpr] | None:
    """B's conjuncts minus A's (multiset, by canonical key).

    Returns ``None`` if A filters on something B does not — A's stream
    would be missing rows B needs."""
    remaining = Counter(expr_key(c) for c in a_conjuncts)
    residual: list[BoundExpr] = []
    for conjunct in b_conjuncts:
        key = expr_key(conjunct)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            residual.append(conjunct)
    if any(v > 0 for v in remaining.values()):
        return None
    return residual


def _combine(conjuncts: list[BoundExpr]) -> BoundExpr | None:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BoolAnd(tuple(conjuncts))


def _agg_fold_allowed(shape: AggShape) -> bool:
    if not shape.group_keys:
        # Global aggregates only fold on exact fingerprint match: an empty
        # residual stream must still produce the engine's global-agg
        # answer shape, which the residual evaluator does not reproduce.
        return False
    for call in shape.aggregates:
        if call.distinct or call.function not in _ORDER_FREE_AGGS:
            return False
        if call.function in ("sum", "avg") and (
            call.arg is None or call.arg.type is not ColumnType.INT64
        ):
            return False
    return True


def plan_residual(
    b: NormalizedQuery, a: NormalizedQuery
) -> Residual | None:
    """Can B be computed from carrier A's output stream?  If so, return
    the residual operator chain; otherwise ``None``.

    A must expose a detail stream (no aggregation crown — aggregation
    destroys the rows B would filter).  Exact-equal fingerprints are the
    caller's fast path and never reach here."""
    if a.detail is None or not a.shareable or not b.shareable:
        return None
    shape = b.detail if b.detail is not None else (
        b.agg.detail if b.agg is not None else None
    )
    if shape is None or shape.core_key != a.detail.core_key:
        return None
    if b.agg is not None and not _agg_fold_allowed(b.agg):
        return None
    extra = _residual_conjuncts(shape.conjuncts, a.detail.conjuncts)
    if extra is None:
        return None
    rebased_extra = []
    for conjunct in extra:
        rebased = rebase(conjunct, a.detail)
        if rebased is None:
            return None
        rebased_extra.append(rebased)
    projected = []
    for expr in shape.out_exprs:
        rebased = rebase(expr, a.detail)
        if rebased is None:
            return None
        projected.append(rebased)
    project_schema = Schema(
        Field(name, expr.type)
        for name, expr in zip(shape.out_names, projected)
    )
    predicate = _combine(rebased_extra)
    if b.agg is None:
        return Residual(
            predicate=predicate, project=(projected, project_schema)
        )
    ag = b.agg
    post = None
    if ag.post_exprs is not None:
        post_schema = Schema(
            Field(name, expr.type)
            for name, expr in zip(ag.post_names, ag.post_exprs)
        )
        post = (list(ag.post_exprs), post_schema)
    return Residual(
        predicate=predicate,
        project=(projected, project_schema),
        aggregate=(list(ag.group_keys), list(ag.aggregates), ag.agg_schema),
        post_project=post,
    )
