"""Shared executions: fold groups and their per-consumer facades.

A :class:`FoldGroup` owns one *carrier* :class:`QueryExecution` (the
physical plan that actually runs) and a list of :class:`SharedConsumer`
facades, one per submitted query — including the query that created the
group.  Each consumer quacks like a ``QueryExecution`` (``QueryHandle``
binds to it unchanged) but derives its result from the carrier's output
page through its :class:`~repro.sharing.residual.Residual`.

Lifecycle rules (the tentpole's cancellation semantics):

- cancelling one consumer *detaches* it; the carrier keeps running for
  the remaining consumers — even when the detached consumer is the one
  that created the group;
- only when the *last* consumer detaches is the carrier execution
  cancelled (clean §4.4 end-signal teardown);
- carrier completion fans out: each live consumer applies its residual
  and finishes at the same virtual instant; carrier failure/cancellation
  propagates as that consumer's own structured error.

A group created under a fold window (``SharingConfig.fold_window > 0``)
defers carrier dispatch by that many virtual seconds so closely-spaced
identical queries can pile on before any physical work starts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.coordinator import QueryState
from ..errors import ExecutionError, QueryCancelledError, QueryFailedError
from .residual import Residual, apply_residual

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution, QueryOptions
    from ..pages import Page
    from .manager import SharingManager


class SharedConsumer:
    """Execution-like facade for one query riding a shared execution.

    ``role`` is ``"carrier"`` (created the group), ``"folded"`` (grafted
    onto an existing group), or ``"cached"`` (answered synchronously from
    the result cache, never touching a physical execution).  Unknown
    attributes delegate to the carrier execution, mirroring how
    ``QueryHandle`` delegates to its execution."""

    def __init__(
        self,
        manager: "SharingManager",
        query_id: int,
        sql: str,
        options: "QueryOptions",
        role: str,
        cache_key: tuple | None = None,
        residual: Residual | None = None,
        scan_pages: int = 0,
    ):
        # ``carrier`` first: __getattr__ consults it via __dict__.
        self.carrier: "QueryExecution | None" = None
        self.manager = manager
        self.kernel = manager.kernel
        self.id = query_id
        self.sql = sql
        self.options = options
        self.role = role
        self.cache_key = cache_key
        self.residual = residual if residual is not None else Residual()
        self.group = None  # set by FoldGroup.add
        self.state = QueryState.RUNNING
        self.error = None
        self.submitted_at = self.kernel.now
        self.finished_at: float | None = None
        self.failed_at: float | None = None
        self.tenant: str | None = None
        #: Base-table pages this consumer did *not* re-read (fold/cache).
        self.pages_saved = scan_pages if role in ("folded", "cached") else 0
        #: Scan pages a future cache hit on this answer would save.
        self.scan_pages = scan_pages
        self.cache_hit = role == "cached"
        self.result_rows = 0
        self._result_page: "Page | None" = None
        self._done_callbacks: list = []

    # -- lifecycle ---------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def succeeded(self) -> bool:
        return self.state is QueryState.FINISHED

    @property
    def failed(self) -> bool:
        return self.state is QueryState.FAILED

    @property
    def cancelled(self) -> bool:
        return self.state is QueryState.CANCELLED

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.kernel.now
        return end - self.submitted_at

    @property
    def initialization_seconds(self) -> float:
        carrier = self.carrier
        if carrier is None or carrier.started_at is None:
            return 0.0
        return max(0.0, carrier.started_at - self.submitted_at)

    def on_done(self, fn) -> None:
        if self.finished:
            fn(self)
        else:
            self._done_callbacks.append(fn)

    def _fire_done(self) -> None:
        callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            fn(self)

    def _complete(self, page: "Page") -> None:
        if self.finished:
            return
        self.state = QueryState.FINISHED
        self.finished_at = self.kernel.now
        self._result_page = page
        self.result_rows = page.num_rows
        self._fire_done()

    def _fail(self, error: Exception) -> None:
        if self.finished:
            return
        if not isinstance(error, QueryFailedError):
            error = QueryFailedError(str(error), query_id=self.id, cause=error)
        self.state = QueryState.FAILED
        self.error = error
        self.failed_at = self.kernel.now
        self.finished_at = self.kernel.now
        self._fire_done()

    def _cancel(self, reason: str) -> None:
        if self.finished:
            return
        self.state = QueryState.CANCELLED
        self.error = QueryCancelledError(
            f"query {self.id} cancelled: {reason}",
            query_id=self.id,
            reason=reason,
        )
        self.finished_at = self.kernel.now
        self._fire_done()

    def cancel(self, reason: str = "cancelled") -> None:
        """Cancel *this consumer only*: detach from the shared execution.

        The carrier keeps running while other consumers remain; the last
        detach cancels it (or the pending dispatch)."""
        if self.finished:
            return
        if self.group is not None:
            self.group.detach(self, reason)
        else:
            self._cancel(reason)

    # -- results -----------------------------------------------------------
    def result(self) -> "Page":
        if self.failed or self.cancelled:
            raise self.error
        if not self.succeeded or self._result_page is None:
            raise ExecutionError(f"query {self.id} has not finished")
        return self._result_page

    def result_rows_list(self) -> list[tuple]:
        return self.result().rows()

    # -- introspection -----------------------------------------------------
    def progress(self) -> dict[int, float]:
        carrier = self.carrier
        return carrier.progress() if carrier is not None else {}

    def progress_bars(self, width: int = 30) -> str:
        carrier = self.carrier
        return carrier.progress_bars(width) if carrier is not None else ""

    def describe(self) -> str:
        via = (
            f" via Q{self.carrier.id}" if self.carrier is not None
            else " (awaiting dispatch)" if self.role != "cached" else ""
        )
        return (
            f"query {self.id}: {self.state.value} "
            f"[{self.role}{via}, residual: {self.residual.describe()}]"
        )

    @property
    def tracker(self):
        carrier = self.carrier
        return carrier.tracker if carrier is not None else None

    def __getattr__(self, name: str):
        carrier = self.__dict__.get("carrier")
        if carrier is None:
            raise AttributeError(
                f"SharedConsumer has no attribute {name!r} (no carrier "
                f"execution is bound)"
            )
        return getattr(carrier, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedConsumer(id={self.id}, role={self.role!r}, "
            f"state={self.state.value})"
        )


class FoldGroup:
    """One shared physical execution and the consumers riding it."""

    def __init__(
        self,
        manager: "SharingManager",
        key: tuple,
        normalized,
        carrier_sql: str,
        carrier_options: "QueryOptions",
    ):
        self.manager = manager
        self.kernel = manager.kernel
        self.key = key
        self.normalized = normalized
        #: The plan the carrier runs.  Kept on the group (not the first
        #: consumer): residuals of later grafts reference *this* plan's
        #: output, which stays valid even if the creating consumer
        #: detaches before dispatch.
        self.carrier_sql = carrier_sql
        self.carrier_options = carrier_options
        self.consumers: list[SharedConsumer] = []
        self.carrier: "QueryExecution | None" = None
        self.done = False
        self._dispatch_event = None
        self._dispatch_hooks: list = []

    @property
    def active_consumers(self) -> list[SharedConsumer]:
        return [c for c in self.consumers if not c.finished]

    @property
    def accepts(self) -> bool:
        """Whether new consumers may still graft onto this group."""
        return not self.done and (
            self.carrier is None or not self.carrier.finished
        )

    def add(self, consumer: SharedConsumer) -> None:
        consumer.group = self
        self.consumers.append(consumer)
        if self.carrier is not None:
            consumer.carrier = self.carrier

    def when_dispatched(self, fn) -> None:
        """Call ``fn(group)`` once the carrier execution exists (now, if
        it already does) — used to defer arbiter registration across a
        fold window."""
        if self.carrier is not None:
            fn(self)
        else:
            self._dispatch_hooks.append(fn)

    def schedule_dispatch(self, delay: float) -> None:
        if delay > 0:
            self._dispatch_event = self.kernel.schedule(delay, self.dispatch)
        else:
            self.dispatch()

    def dispatch(self) -> None:
        """Submit the carrier's physical execution to the coordinator."""
        self._dispatch_event = None
        if self.done or self.carrier is not None:
            return
        live = self.active_consumers
        if not live:
            self.manager._group_done(self)
            return
        execution = self.manager.coordinator.submit(
            self.carrier_sql, self.carrier_options
        )
        execution.tenant = live[0].tenant
        self.carrier = execution
        for consumer in live:
            consumer.carrier = execution
        hooks, self._dispatch_hooks = self._dispatch_hooks, []
        for fn in hooks:
            fn(self)
        execution.on_done(self._carrier_done)

    def detach(self, consumer: SharedConsumer, reason: str) -> None:
        consumer._cancel(reason)
        self.manager._on_detach(self, consumer)
        if self.active_consumers:
            return
        # Last consumer gone: tear the shared execution down cleanly.
        if self.carrier is not None and not self.carrier.finished:
            self.carrier.cancel("all shared consumers cancelled")
        elif self.carrier is None:
            if self._dispatch_event is not None:
                self._dispatch_event.cancel()
                self._dispatch_event = None
            self.manager._group_done(self)

    def _carrier_done(self, execution: "QueryExecution") -> None:
        if execution.succeeded:
            page = execution.result()
            for consumer in self.active_consumers:
                try:
                    consumer._complete(apply_residual(page, consumer.residual))
                except Exception as exc:  # residual bug: fail, don't hang
                    consumer._fail(exc)
        elif execution.cancelled:
            for consumer in self.active_consumers:
                consumer._cancel(
                    f"shared execution Q{execution.id} cancelled: "
                    f"{execution.error.reason}"
                )
        else:
            for consumer in self.active_consumers:
                consumer._fail(
                    QueryFailedError(
                        f"shared execution Q{execution.id} failed: "
                        f"{execution.error}",
                        query_id=consumer.id,
                        cause=execution.error,
                    )
                )
        self.manager._group_done(self)
