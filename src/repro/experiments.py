"""Experiment presets shared by the benchmark harness and tests.

The paper's evaluation runs TPC-H SF100 on a 21-node cluster; the
simulator reproduces the *shapes* at reduced scale.  Two calibration
levers make the shapes visible at laptop scale:

* ``cpu_multiplier`` stretches virtual time so queries run for tens of
  virtual seconds — long enough for elastic buffers, the collector, and
  the auto-tuner to act (their periods are fractions of a second);
* small pages + tight buffer caps keep the number of in-flight pages tiny
  relative to the table, so streaming backpressure behaves like it does
  when tables are far larger than buffer memory.
"""

from __future__ import annotations

from dataclasses import replace

from .config import BufferConfig, ClusterConfig, CostModel, EngineConfig
from .data.splits import PAPER_SPLIT_SCHEME
from .engine import AccordionEngine

#: Scale factor used by the evaluation benchmarks (SF100 in the paper).
EVAL_SCALE = 0.01
#: Virtual-time stretch so evaluation queries run for >= tens of seconds.
EVAL_MULTIPLIER = 1000.0
#: Deterministic dataset seed shared by every experiment.
EVAL_SEED = 20250622


def eval_config(
    multiplier: float = EVAL_MULTIPLIER,
    page_rows: int = 1024,
    max_buffer_pages: int = 64,
    compute_nodes: int = 10,
    storage_nodes: int = 10,
    **cost_overrides,
) -> EngineConfig:
    """The standard evaluation engine configuration."""
    cost = CostModel(**cost_overrides).scaled(multiplier)
    return EngineConfig(
        cluster=ClusterConfig(compute_nodes=compute_nodes, storage_nodes=storage_nodes),
        cost=cost,
        buffers=BufferConfig(max_capacity_pages=max_buffer_pages),
        page_row_limit=page_rows,
    )


def eval_engine(
    scale: float = EVAL_SCALE,
    config: EngineConfig | None = None,
    **engine_kwargs,
) -> AccordionEngine:
    """An engine over the shared evaluation dataset."""
    return AccordionEngine.tpch(
        scale=scale, config=config or eval_config(), seed=EVAL_SEED, **engine_kwargs
    )


def shuffle_experiment_engine(
    scale: float = 0.02,
    multiplier: float = EVAL_MULTIPLIER,
) -> AccordionEngine:
    """The Section 6.4.2 setup: orders stored on only two nodes, split
    fine-grained, with shuffle work expensive enough to bottleneck them."""
    scheme = dict(PAPER_SPLIT_SCHEME)
    scheme["orders"] = (None, 8)
    config = eval_config(
        multiplier=multiplier,
        page_rows=32,
        max_buffer_pages=8,
        shuffle_row_cost=4.0e-6,
    )
    config = replace(
        config,
        cluster=config.cluster.with_placement(
            split_scheme=scheme, node_overrides={"orders": [0, 1]}
        ),
    )
    return AccordionEngine.tpch(scale=scale, config=config, seed=EVAL_SEED)


def standalone_engine(mode: str, scale: float = 0.01) -> AccordionEngine:
    """Single-node engines for the Figure 20 standalone comparison.

    A moderate multiplier keeps CPU work dominant over fixed control-plane
    costs, as it is at the paper's SF1 scale.
    """
    base = eval_config(multiplier=100.0, compute_nodes=1, storage_nodes=1)
    if mode == "accordion":
        config = base
    elif mode == "presto":
        from .config import presto_config

        config = presto_config(base)
    elif mode == "prestissimo":
        from .config import prestissimo_config

        config = prestissimo_config(base)
    else:
        raise ValueError(f"unknown engine mode {mode!r}")
    config = replace(config, cluster=config.cluster.with_placement(combined=True))
    return AccordionEngine.tpch(scale=scale, config=config, seed=EVAL_SEED)
