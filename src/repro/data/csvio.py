"""CSV persistence for tables.

The paper stores TPC-H tables as CSV files read through the Arrow CSV
reader (Section 6.1).  The engine here works from in-memory tables for
speed, but this module provides faithful CSV round-tripping so examples
can demonstrate the file-based workflow.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..pages import ColumnType, Schema
from ..util import date_to_days, days_to_str
from .table import Table


def write_csv(table: Table, path: str | Path, delimiter: str = "|") -> Path:
    """Write ``table`` to ``path`` (TPC-H style ``|``-separated, no header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    types = table.schema.types()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        for row in zip(*[c.tolist() for c in table.columns]):
            out = []
            for value, typ in zip(row, types):
                if typ is ColumnType.DATE:
                    out.append(days_to_str(value))
                elif typ is ColumnType.FLOAT64:
                    out.append(f"{value:.2f}")
                else:
                    out.append(value)
            writer.writerow(out)
    return path


def read_csv(
    name: str, schema: Schema, path: str | Path, delimiter: str = "|"
) -> Table:
    """Read a TPC-H style CSV file back into a :class:`Table`."""
    raw_columns: list[list] = [[] for _ in schema]
    with Path(path).open(newline="") as fh:
        for row in csv.reader(fh, delimiter=delimiter):
            if not row:
                continue
            if len(row) != len(schema):
                raise ValueError(
                    f"{path}: expected {len(schema)} fields, got {len(row)}"
                )
            for cell, bucket in zip(row, raw_columns):
                bucket.append(cell)

    columns: list[np.ndarray] = []
    for field, values in zip(schema, raw_columns):
        typ = field.type
        if typ is ColumnType.DATE:
            columns.append(np.array([date_to_days(v) for v in values], dtype=np.int64))
        elif typ is ColumnType.INT64:
            columns.append(np.array([int(v) for v in values], dtype=np.int64))
        elif typ is ColumnType.FLOAT64:
            columns.append(np.array([float(v) for v in values], dtype=np.float64))
        elif typ is ColumnType.BOOL:
            columns.append(np.array([v in ("1", "true", "True") for v in values], dtype=np.bool_))
        else:
            columns.append(np.array(values, dtype=object))
    return Table(name, schema, columns)
