"""Table splits and their placement on storage nodes.

Presto's table-scan tasks consume *system splits* telling them which chunk
of the base table to read.  The paper (Table 1) partitions each TPC-H
table into splits spread over the storage nodes — e.g. lineitem at SF100
is 7 splits on each of 10 nodes.  :class:`SplitLayout` reproduces that
scheme for any cluster size/scale and is the source of the system splits
handed to scan tasks by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util import format_bytes
from .catalog import Catalog
from .table import Table

#: Paper Table 1 partitioning scheme: table -> (nodes, splits per node).
#: ``nodes=None`` means "all storage nodes".
PAPER_SPLIT_SCHEME: dict[str, tuple[int | None, int]] = {
    "nation": (1, 1),
    "region": (1, 1),
    "supplier": (None, 1),
    "part": (None, 1),
    "partsupp": (None, 1),
    "customer": (None, 1),
    "orders": (None, 1),
    "lineitem": (None, 7),
}


@dataclass(frozen=True)
class TableSplit:
    """A system split: one contiguous chunk of a base table on a node."""

    table: str
    split_id: int
    storage_node: int
    row_start: int
    row_stop: int
    size_bytes: int

    @property
    def num_rows(self) -> int:
        return self.row_stop - self.row_start


class SplitLayout:
    """Partitions catalog tables into splits placed on storage nodes."""

    def __init__(
        self,
        catalog: Catalog,
        storage_nodes: int,
        scheme: dict[str, tuple[int | None, int]] | None = None,
        node_overrides: dict[str, list[int]] | None = None,
    ):
        """``node_overrides`` pins a table to an explicit node list — used
        by the elastic-shuffle experiment, which stores ``orders`` on only
        two nodes to create a shuffle bottleneck (paper Section 6.4.2)."""
        if storage_nodes <= 0:
            raise ValueError("storage_nodes must be positive")
        self.catalog = catalog
        self.storage_nodes = storage_nodes
        self.scheme = dict(PAPER_SPLIT_SCHEME if scheme is None else scheme)
        self.node_overrides = dict(node_overrides or {})
        self._splits: dict[str, list[TableSplit]] = {}

    def splits(self, table_name: str) -> list[TableSplit]:
        """All splits of ``table_name`` (computed once, then cached)."""
        key = table_name.lower()
        if key not in self._splits:
            self._splits[key] = self._partition(self.catalog.table(key))
        return self._splits[key]

    def _nodes_for(self, table: Table) -> list[int]:
        if table.name in self.node_overrides:
            nodes = self.node_overrides[table.name]
            if any(n < 0 or n >= self.storage_nodes for n in nodes):
                raise ValueError(f"node override out of range for {table.name}")
            return list(nodes)
        node_count, _ = self.scheme.get(table.name, (None, 1))
        if node_count is None:
            node_count = self.storage_nodes
        node_count = min(node_count, self.storage_nodes)
        return list(range(node_count))

    def _partition(self, table: Table) -> list[TableSplit]:
        nodes = self._nodes_for(table)
        _, per_node = self.scheme.get(table.name, (None, 1))
        total_splits = max(1, len(nodes) * per_node)
        rows = table.num_rows
        bytes_per_row = table.size_bytes / max(rows, 1)
        splits: list[TableSplit] = []
        for i in range(total_splits):
            start = rows * i // total_splits
            stop = rows * (i + 1) // total_splits
            if start >= stop and rows > 0:
                continue
            splits.append(
                TableSplit(
                    table=table.name,
                    split_id=i,
                    storage_node=nodes[i % len(nodes)],
                    row_start=start,
                    row_stop=stop,
                    size_bytes=int((stop - start) * bytes_per_row),
                )
            )
        if not splits:  # empty table still needs one (empty) split
            splits.append(TableSplit(table.name, 0, nodes[0], 0, 0, 0))
        return splits

    def setup_report(self) -> list[dict[str, str]]:
        """Rows for the paper's Table 1 (partitioning scheme summary)."""
        rows = []
        for name in self.scheme:
            if not self.catalog.has_table(name):
                continue
            table = self.catalog.table(name)
            splits = self.splits(name)
            nodes = len({s.storage_node for s in splits})
            per_node = len(splits) // max(nodes, 1)
            rows.append(
                {
                    "table": name.capitalize(),
                    "partitioning": f"{nodes} node{'s' if nodes > 1 else ''}, "
                    f"{per_node} split/node",
                    "table_size": format_bytes(table.size_bytes),
                    "split_size": format_bytes(max(s.size_bytes for s in splits)),
                }
            )
        return rows
