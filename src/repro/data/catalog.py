"""Catalog: name -> table metadata + data, shared by planner and executor."""

from __future__ import annotations

from ..errors import AnalysisError
from ..pages import Schema
from .table import Table


class Catalog:
    """A registry of in-memory tables visible to SQL queries."""

    def __init__(self):
        self._tables: dict[str, Table] = {}

    def register(self, table: Table) -> None:
        self._tables[table.name.lower()] = table

    def register_all(self, tables: dict[str, Table]) -> None:
        for table in tables.values():
            self.register(table)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise AnalysisError(f"table not found: {name}") from None

    def schema(self, name: str) -> Schema:
        return self.table(name).schema

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def names(self) -> list[str]:
        return sorted(self._tables)

    @classmethod
    def tpch(cls, scale: float = 0.01, seed: int = 20250622) -> "Catalog":
        """Convenience: a catalog holding a generated TPC-H database."""
        from .tpch.generator import TpchGenerator

        catalog = cls()
        catalog.register_all(TpchGenerator(scale, seed).tables())
        return catalog
