"""Catalog: name -> table metadata + data, shared by planner and executor."""

from __future__ import annotations

from ..errors import AnalysisError
from ..pages import Schema
from .table import Table


class Catalog:
    """A registry of in-memory tables visible to SQL queries."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        #: Monotonic change counter: every (re-)registration bumps it, so
        #: plans cached against an older catalog state miss (plan cache
        #: invalidation, ``repro.plan.cache``).
        self.version = 0

    def register(self, table: Table) -> None:
        self._tables[table.name.lower()] = table
        self.version += 1

    def register_all(self, tables: dict[str, Table]) -> None:
        for table in tables.values():
            self.register(table)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise AnalysisError(f"table not found: {name}") from None

    def schema(self, name: str) -> Schema:
        return self.table(name).schema

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def names(self) -> list[str]:
        return sorted(self._tables)

    @classmethod
    def tpch(
        cls, scale: float = 0.01, seed: int = 20250622, dataset_cache: bool = True
    ) -> "Catalog":
        """Convenience: a catalog holding a generated TPC-H database.

        Generated tables are served from the process-wide dataset cache
        (plus the on-disk ``REPRO_CACHE_DIR`` cache when configured);
        ``dataset_cache=False`` forces a fresh generation.
        """
        from .tpch.dataset_cache import load_tpch_tables

        catalog = cls()
        catalog.register_all(load_tpch_tables(scale, seed, cache=dataset_cache))
        return catalog
