"""Data substrate: tables, catalog, splits, CSV I/O, TPC-H generator."""

from .catalog import Catalog
from .csvio import read_csv, write_csv
from .splits import PAPER_SPLIT_SCHEME, SplitLayout, TableSplit
from .table import Table

__all__ = [
    "Catalog",
    "PAPER_SPLIT_SCHEME",
    "SplitLayout",
    "Table",
    "TableSplit",
    "read_csv",
    "write_csv",
]
