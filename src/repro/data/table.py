"""In-memory tables: named columnar data registered in a catalog."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pages import Page, Schema


@dataclass
class Table:
    """A fully materialised table (schema + parallel column arrays)."""

    name: str
    schema: Schema
    columns: list[np.ndarray]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.schema):
            raise ValueError(
                f"table {self.name}: {len(self.columns)} columns for "
                f"{len(self.schema)}-field schema"
            )
        lengths = {len(c) for c in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"table {self.name}: ragged columns {lengths}")
        self._size_cache: int | None = None

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def size_bytes(self) -> int:
        """Measured table size, used for split accounting.

        Cached: string columns are measured by actual payload bytes
        (see :meth:`Page.size_bytes`), which is O(total characters) —
        far too slow to recompute on every split-partitioning pass.
        Tables are immutable once registered, so one measurement holds.
        """
        if self._size_cache is None:
            self._size_cache = self.page(0, self.num_rows).size_bytes
        return self._size_cache

    def column(self, name: str) -> np.ndarray:
        return self.columns[self.schema.index_of(name)]

    def page(self, start: int, stop: int) -> Page:
        """A page view over rows [start, stop)."""
        stop = min(stop, self.num_rows)
        return Page(self.schema, [c[start:stop] for c in self.columns])

    def to_page(self) -> Page:
        return self.page(0, self.num_rows)

    def head(self, n: int = 5) -> list[tuple]:
        return self.page(0, min(n, self.num_rows)).rows()
