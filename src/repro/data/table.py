"""In-memory tables: named columnar data registered in a catalog."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pages import Page, Schema


@dataclass
class Table:
    """A fully materialised table (schema + parallel column arrays)."""

    name: str
    schema: Schema
    columns: list[np.ndarray]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.schema):
            raise ValueError(
                f"table {self.name}: {len(self.columns)} columns for "
                f"{len(self.schema)}-field schema"
            )
        lengths = {len(c) for c in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"table {self.name}: ragged columns {lengths}")

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def size_bytes(self) -> int:
        """Estimated on-disk size (CSV-ish), used for split accounting."""
        return self.page(0, self.num_rows).size_bytes

    def column(self, name: str) -> np.ndarray:
        return self.columns[self.schema.index_of(name)]

    def page(self, start: int, stop: int) -> Page:
        """A page view over rows [start, stop)."""
        stop = min(stop, self.num_rows)
        return Page(self.schema, [c[start:stop] for c in self.columns])

    def to_page(self) -> Page:
        return self.page(0, self.num_rows)

    def head(self, n: int = 5) -> list[tuple]:
        return self.page(0, min(n, self.num_rows)).rows()
