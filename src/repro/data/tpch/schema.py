"""TPC-H table schemas (all 8 tables, full column sets)."""

from __future__ import annotations

from ...pages import ColumnType, Schema

_I = ColumnType.INT64
_F = ColumnType.FLOAT64
_S = ColumnType.STRING
_D = ColumnType.DATE

REGION = Schema.of(
    ("r_regionkey", _I),
    ("r_name", _S),
    ("r_comment", _S),
)

NATION = Schema.of(
    ("n_nationkey", _I),
    ("n_name", _S),
    ("n_regionkey", _I),
    ("n_comment", _S),
)

SUPPLIER = Schema.of(
    ("s_suppkey", _I),
    ("s_name", _S),
    ("s_address", _S),
    ("s_nationkey", _I),
    ("s_phone", _S),
    ("s_acctbal", _F),
    ("s_comment", _S),
)

PART = Schema.of(
    ("p_partkey", _I),
    ("p_name", _S),
    ("p_mfgr", _S),
    ("p_brand", _S),
    ("p_type", _S),
    ("p_size", _I),
    ("p_container", _S),
    ("p_retailprice", _F),
    ("p_comment", _S),
)

PARTSUPP = Schema.of(
    ("ps_partkey", _I),
    ("ps_suppkey", _I),
    ("ps_availqty", _I),
    ("ps_supplycost", _F),
    ("ps_comment", _S),
)

CUSTOMER = Schema.of(
    ("c_custkey", _I),
    ("c_name", _S),
    ("c_address", _S),
    ("c_nationkey", _I),
    ("c_phone", _S),
    ("c_acctbal", _F),
    ("c_mktsegment", _S),
    ("c_comment", _S),
)

ORDERS = Schema.of(
    ("o_orderkey", _I),
    ("o_custkey", _I),
    ("o_orderstatus", _S),
    ("o_totalprice", _F),
    ("o_orderdate", _D),
    ("o_orderpriority", _S),
    ("o_clerk", _S),
    ("o_shippriority", _I),
    ("o_comment", _S),
)

LINEITEM = Schema.of(
    ("l_orderkey", _I),
    ("l_partkey", _I),
    ("l_suppkey", _I),
    ("l_linenumber", _I),
    ("l_quantity", _F),
    ("l_extendedprice", _F),
    ("l_discount", _F),
    ("l_tax", _F),
    ("l_returnflag", _S),
    ("l_linestatus", _S),
    ("l_shipdate", _D),
    ("l_commitdate", _D),
    ("l_receiptdate", _D),
    ("l_shipinstruct", _S),
    ("l_shipmode", _S),
    ("l_comment", _S),
)

TPCH_SCHEMAS: dict[str, Schema] = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "part": PART,
    "partsupp": PARTSUPP,
    "customer": CUSTOMER,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}

#: Base row counts at scale factor 1 (region/nation are fixed-size).
BASE_ROW_COUNTS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
    # lineitem is ~6M at SF1 but derived from orders (1..7 lines each).
}


def row_count(table: str, scale: float) -> int:
    """Row count of ``table`` at scale factor ``scale`` (min 1 row)."""
    if table in ("region", "nation"):
        return BASE_ROW_COUNTS[table]
    if table == "lineitem":
        raise ValueError("lineitem row count is derived from orders")
    return max(1, int(BASE_ROW_COUNTS[table] * scale))
