"""TPC-H schemas, deterministic generator, and benchmark query texts."""

from .generator import TpchGenerator
from .queries import QUERIES, STANDALONE_BENCHMARK
from .schema import TPCH_SCHEMAS, row_count

__all__ = [
    "QUERIES",
    "STANDALONE_BENCHMARK",
    "TPCH_SCHEMAS",
    "TpchGenerator",
    "row_count",
]
