"""Deterministic TPC-H data generator (dbgen-like, vectorized).

Generates all eight TPC-H tables at an arbitrary scale factor with numpy.
The generator follows dbgen's column formulas where they matter for query
behaviour (key relationships, retail-price formula, value distributions,
text pools) and uses seeded per-table RNG streams so any table can be
generated independently and reproducibly.

The paper evaluates on TPC-H SF100 stored as CSV across 10 storage nodes
(Table 1); tests and benchmarks here use reduced scale factors — the
simulator's behaviour shapes are scale-invariant.
"""

from __future__ import annotations

import zlib

import numpy as np

from ...util import date_to_days
from ..table import Table
from . import text
from .schema import TPCH_SCHEMAS, row_count

_MIN_ORDER_DATE = date_to_days("1992-01-01")
_MAX_ORDER_DATE = date_to_days("1998-08-02") - 151

#: Version of the generated output; part of every dataset-cache key
#: (``repro.data.tpch.dataset_cache``).  Bump whenever any column formula
#: below changes, so stale caches regenerate instead of serving old bits.
GENERATOR_VERSION = 1


class TpchGenerator:
    """Generates TPC-H tables at ``scale`` with a deterministic ``seed``."""

    def __init__(self, scale: float = 0.01, seed: int = 20250622):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self._cache: dict[str, Table] = {}

    # -- public API -------------------------------------------------------
    def table(self, name: str) -> Table:
        """Return (and cache) the generated table ``name``."""
        name = name.lower()
        if name not in self._cache:
            builder = getattr(self, f"_gen_{name}", None)
            if builder is None:
                raise KeyError(f"unknown TPC-H table: {name}")
            self._cache[name] = builder()
        return self._cache[name]

    def tables(self) -> dict[str, Table]:
        """Generate and return all eight tables."""
        return {name: self.table(name) for name in TPCH_SCHEMAS}

    # -- helpers ------------------------------------------------------------
    def _rng(self, table: str) -> np.random.Generator:
        # zlib.crc32 is deterministic across processes (unlike hash(),
        # which is randomized per interpreter run).
        digest = zlib.crc32(table.encode("utf-8"))
        return np.random.default_rng([self.seed, digest])

    @staticmethod
    def _pick(rng: np.random.Generator, pool: list[str], n: int) -> np.ndarray:
        idx = rng.integers(0, len(pool), n)
        return np.array(pool, dtype=object)[idx]

    @staticmethod
    def _comments(rng: np.random.Generator, n: int) -> np.ndarray:
        words = text.PART_NAME_WORDS
        a = rng.integers(0, len(words), n)
        b = rng.integers(0, len(words), n)
        return np.array([f"{words[x]} {words[y]} requests" for x, y in zip(a, b)], dtype=object)

    @staticmethod
    def _phones(rng: np.random.Generator, nation_keys: np.ndarray) -> np.ndarray:
        local = rng.integers(100, 999, (len(nation_keys), 3))
        return np.array(
            [
                f"{10 + nk}-{a}-{b}-{c}"
                for nk, (a, b, c) in zip(nation_keys.tolist(), local.tolist())
            ],
            dtype=object,
        )

    @staticmethod
    def _retail_price(partkeys: np.ndarray) -> np.ndarray:
        """dbgen's part retail-price formula."""
        pk = partkeys.astype(np.float64)
        return (90000.0 + (pk % 200001.0) / 10.0 + 100.0 * (pk % 1000.0)) / 100.0

    # -- fixed tables ---------------------------------------------------
    def _gen_region(self) -> Table:
        rng = self._rng("region")
        schema = TPCH_SCHEMAS["region"]
        n = len(text.REGIONS)
        return Table(
            "region",
            schema,
            [
                np.arange(n, dtype=np.int64),
                np.array(text.REGIONS, dtype=object),
                self._comments(rng, n),
            ],
        )

    def _gen_nation(self) -> Table:
        rng = self._rng("nation")
        schema = TPCH_SCHEMAS["nation"]
        names = np.array([n for n, _ in text.NATIONS], dtype=object)
        regions = np.array([r for _, r in text.NATIONS], dtype=np.int64)
        n = len(text.NATIONS)
        return Table(
            "nation",
            schema,
            [np.arange(n, dtype=np.int64), names, regions, self._comments(rng, n)],
        )

    # -- scaled tables ----------------------------------------------------
    def _gen_supplier(self) -> Table:
        rng = self._rng("supplier")
        schema = TPCH_SCHEMAS["supplier"]
        n = row_count("supplier", self.scale)
        keys = np.arange(1, n + 1, dtype=np.int64)
        nations = rng.integers(0, 25, n)
        return Table(
            "supplier",
            schema,
            [
                keys,
                np.array([f"Supplier#{k:09d}" for k in keys], dtype=object),
                np.array([f"addr sup {k}" for k in keys], dtype=object),
                nations.astype(np.int64),
                self._phones(rng, nations),
                np.round(rng.uniform(-999.99, 9999.99, n), 2),
                self._comments(rng, n),
            ],
        )

    def _gen_part(self) -> Table:
        rng = self._rng("part")
        schema = TPCH_SCHEMAS["part"]
        n = row_count("part", self.scale)
        keys = np.arange(1, n + 1, dtype=np.int64)
        words = text.PART_NAME_WORDS
        widx = rng.integers(0, len(words), (n, 5))
        names = np.array(
            [" ".join(words[j] for j in row) for row in widx.tolist()], dtype=object
        )
        mfgr = rng.integers(1, 6, n)
        brand = mfgr * 10 + rng.integers(1, 6, n)
        types = np.array(
            [
                f"{a} {b} {c}"
                for a, b, c in zip(
                    self._pick(rng, text.TYPE_SYLLABLE_1, n),
                    self._pick(rng, text.TYPE_SYLLABLE_2, n),
                    self._pick(rng, text.TYPE_SYLLABLE_3, n),
                )
            ],
            dtype=object,
        )
        containers = np.array(
            [
                f"{a} {b}"
                for a, b in zip(
                    self._pick(rng, text.CONTAINER_SYLLABLE_1, n),
                    self._pick(rng, text.CONTAINER_SYLLABLE_2, n),
                )
            ],
            dtype=object,
        )
        return Table(
            "part",
            schema,
            [
                keys,
                names,
                np.array([f"Manufacturer#{m}" for m in mfgr], dtype=object),
                np.array([f"Brand#{b}" for b in brand], dtype=object),
                types,
                rng.integers(1, 51, n).astype(np.int64),
                containers,
                np.round(self._retail_price(keys), 2),
                self._comments(rng, n),
            ],
        )

    def _gen_partsupp(self) -> Table:
        rng = self._rng("partsupp")
        schema = TPCH_SCHEMAS["partsupp"]
        parts = row_count("part", self.scale)
        suppliers = row_count("supplier", self.scale)
        partkeys = np.repeat(np.arange(1, parts + 1, dtype=np.int64), 4)
        j = np.tile(np.arange(4, dtype=np.int64), parts)
        s = suppliers
        # dbgen supplier-assignment formula (spreads the 4 suppliers of a
        # part across the supplier key space).
        suppkeys = (partkeys + j * (s // 4 + (partkeys - 1) // s)) % s + 1
        # At tiny scale factors the formula's stride can degenerate to a
        # divisor of S, duplicating (partkey, suppkey) pairs; fall back to
        # consecutive suppliers for those parts.
        if s >= 4:
            by_part = suppkeys.reshape(parts, 4)
            degenerate = np.array(
                [len(set(row)) < 4 for row in by_part.tolist()], dtype=bool
            )
            if degenerate.any():
                pk = np.arange(1, parts + 1, dtype=np.int64)[degenerate]
                fixed = (pk[:, None] + np.arange(4, dtype=np.int64)[None, :]) % s + 1
                by_part[degenerate] = fixed
                suppkeys = by_part.reshape(-1)
        n = len(partkeys)
        return Table(
            "partsupp",
            schema,
            [
                partkeys,
                suppkeys.astype(np.int64),
                rng.integers(1, 10000, n).astype(np.int64),
                np.round(rng.uniform(1.0, 1000.0, n), 2),
                self._comments(rng, n),
            ],
        )

    def _gen_customer(self) -> Table:
        rng = self._rng("customer")
        schema = TPCH_SCHEMAS["customer"]
        n = row_count("customer", self.scale)
        keys = np.arange(1, n + 1, dtype=np.int64)
        nations = rng.integers(0, 25, n)
        return Table(
            "customer",
            schema,
            [
                keys,
                np.array([f"Customer#{k:09d}" for k in keys], dtype=object),
                np.array([f"addr cust {k}" for k in keys], dtype=object),
                nations.astype(np.int64),
                self._phones(rng, nations),
                np.round(rng.uniform(-999.99, 9999.99, n), 2),
                self._pick(rng, text.SEGMENTS, n),
                self._comments(rng, n),
            ],
        )

    def _gen_orders(self) -> Table:
        rng = self._rng("orders")
        schema = TPCH_SCHEMAS["orders"]
        n = row_count("orders", self.scale)
        customers = row_count("customer", self.scale)
        keys = np.arange(1, n + 1, dtype=np.int64)
        custkeys = rng.integers(1, customers + 1, n).astype(np.int64)
        dates = rng.integers(_MIN_ORDER_DATE, _MAX_ORDER_DATE + 1, n).astype(np.int64)
        return Table(
            "orders",
            schema,
            [
                keys,
                custkeys,
                self._pick(rng, text.ORDER_STATUSES, n),
                np.round(rng.uniform(850.0, 560000.0, n), 2),
                dates,
                self._pick(rng, text.PRIORITIES, n),
                np.array([f"Clerk#{c:09d}" for c in rng.integers(1, 1001, n)], dtype=object),
                np.zeros(n, dtype=np.int64),
                self._comments(rng, n),
            ],
        )

    def _gen_lineitem(self) -> Table:
        rng = self._rng("lineitem")
        schema = TPCH_SCHEMAS["lineitem"]
        orders = self.table("orders")
        orderkeys_base = orders.column("o_orderkey")
        orderdates_base = orders.column("o_orderdate")
        parts = row_count("part", self.scale)
        suppliers = row_count("supplier", self.scale)

        lines_per_order = rng.integers(1, 8, len(orderkeys_base))
        orderkeys = np.repeat(orderkeys_base, lines_per_order)
        orderdates = np.repeat(orderdates_base, lines_per_order)
        n = len(orderkeys)
        linenumbers = np.concatenate(
            [np.arange(1, c + 1, dtype=np.int64) for c in lines_per_order.tolist()]
        ) if n else np.zeros(0, dtype=np.int64)

        partkeys = rng.integers(1, parts + 1, n).astype(np.int64)
        # dbgen picks one of the 4 partsupp suppliers of the part.
        j = rng.integers(0, 4, n)
        s = suppliers
        suppkeys = ((partkeys + j * (s // 4 + (partkeys - 1) // s)) % s + 1).astype(np.int64)

        quantity = rng.integers(1, 51, n).astype(np.float64)
        extendedprice = np.round(quantity * self._retail_price(partkeys), 2)
        discount = np.round(rng.integers(0, 11, n) / 100.0, 2)
        tax = np.round(rng.integers(0, 9, n) / 100.0, 2)

        shipdate = orderdates + rng.integers(1, 122, n)
        commitdate = orderdates + rng.integers(30, 91, n)
        receiptdate = shipdate + rng.integers(1, 31, n)

        today = date_to_days("1995-06-17")
        returnflag = np.where(
            receiptdate <= today,
            self._pick(rng, ["R", "A"], n),
            np.array(["N"] * n, dtype=object),
        )
        linestatus = np.where(
            shipdate > today,
            np.array(["O"] * n, dtype=object),
            np.array(["F"] * n, dtype=object),
        )
        return Table(
            "lineitem",
            schema,
            [
                orderkeys.astype(np.int64),
                partkeys,
                suppkeys,
                linenumbers,
                quantity,
                extendedprice,
                discount,
                tax,
                returnflag.astype(object),
                linestatus.astype(object),
                shipdate.astype(np.int64),
                commitdate.astype(np.int64),
                receiptdate.astype(np.int64),
                self._pick(rng, text.SHIP_INSTRUCTIONS, n),
                self._pick(rng, text.SHIP_MODES, n),
                self._comments(rng, n),
            ],
        )
