"""TPC-H text pools (dbgen appendix lists) used by the generator."""

from __future__ import annotations

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: (nation name, region key) in nation-key order, per the TPC-H spec.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

PART_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive",
    "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum",
    "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
    "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
    "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
    "wheat", "white", "yellow",
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

ORDER_STATUSES = ["F", "O", "P"]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
