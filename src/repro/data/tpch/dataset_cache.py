"""Dataset cache for generated TPC-H tables (memo + on-disk ``.npz``).

The perf harness, the benchmark suite, and every test session used to pay
dbgen on each run — at SF 0.05 that is ~0.4 s of pure generation before a
single query executes.  Generated data is fully determined by
``(scale, seed, GENERATOR_VERSION)``, so it is cached at two levels:

* **In-process memo** — repeated ``Catalog.tpch(scale, seed)`` calls in
  one process (benchmark repetitions, test fixtures with equal
  parameters) share the same immutable column arrays.
* **On-disk ``.npz``** — when the ``REPRO_CACHE_DIR`` environment
  variable names a directory, tables are spilled to
  ``tpch-sf<scale>-seed<seed>-v<version>.npz`` and later processes load
  instead of generating.  Unset, nothing touches disk.

``GENERATOR_VERSION`` is part of both keys: bump it whenever
:class:`~repro.data.tpch.generator.TpchGenerator` changes its output, and
stale caches miss instead of serving old bits.  Cache consumers must not
mutate the returned arrays (the engine never does — pages slice and copy).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .generator import GENERATOR_VERSION, TpchGenerator
from .schema import TPCH_SCHEMAS
from ..table import Table

__all__ = ["load_tpch_tables", "clear_dataset_cache", "cache_file_path"]

#: (scale, seed, generator version) -> {table name: Table}
_MEMO: dict[tuple, dict[str, Table]] = {}

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def clear_dataset_cache() -> None:
    """Drop the in-process memo (on-disk files are left alone)."""
    _MEMO.clear()


def cache_file_path(scale: float, seed: int) -> Path | None:
    """On-disk cache file for these parameters, or None when disabled."""
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    if not cache_dir:
        return None
    return Path(cache_dir) / (
        f"tpch-sf{scale!r}-seed{seed}-v{GENERATOR_VERSION}.npz"
    )


def _save(path: Path, tables: dict[str, Table]) -> None:
    arrays: dict[str, np.ndarray] = {}
    for name, table in tables.items():
        for field, column in zip(table.schema, table.columns):
            arrays[f"{name}::{field.name}"] = column
    path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename so a crashed writer never leaves a torn file for
    # a concurrent reader (np.load would fail on a partial archive).
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)


def _load(path: Path) -> dict[str, Table] | None:
    try:
        with np.load(path, allow_pickle=True) as archive:
            tables: dict[str, Table] = {}
            for name, schema in TPCH_SCHEMAS.items():
                columns = []
                for field in schema:
                    arr = archive[f"{name}::{field.name}"]
                    columns.append(arr)
                tables[name] = Table(name, schema, columns)
            return tables
    except Exception:
        # Missing, torn, or stale-format archive (np.load raises anything
        # from OSError to UnpicklingError depending on how the file is
        # broken): regenerate instead of failing the caller.
        return None


def load_tpch_tables(
    scale: float, seed: int, cache: bool = True
) -> dict[str, Table]:
    """All eight TPC-H tables at ``(scale, seed)``, cached when allowed."""
    if not cache:
        return TpchGenerator(scale, seed).tables()
    key = (scale, seed, GENERATOR_VERSION)
    tables = _MEMO.get(key)
    if tables is not None:
        return tables
    path = cache_file_path(scale, seed)
    if path is not None:
        tables = _load(path)
        if tables is not None:
            _MEMO[key] = tables
            return tables
    tables = TpchGenerator(scale, seed).tables()
    _MEMO[key] = tables
    if path is not None:
        _save(path, tables)
    return tables
