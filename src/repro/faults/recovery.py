"""Failure recovery: node blacklisting, task respawn, query teardown.

Recovery model (DESIGN.md, "Fault model & recovery"):

* **Crashes are quantum-atomic.**  Driver quanta holding a core when the
  node dies still commit (their output lands in the task output spool on
  durable disaggregated storage); queued quanta are dropped.  Recovery of
  a crashed task therefore waits until its in-flight quanta drain before
  sealing or discarding its spool.

* **Recoverability taxonomy** for a crashed task:

  - *R1* — already finished: its spooled output survives, nothing to do.
  - *R3 (resume)* — a stateless scan task (filter/project over a split
    feed, output straight to the task output buffer): the spool is kept
    and sealed, unread split remainders go back to the feed, and a fresh
    task continues the scan.  Resumable at any time.
  - *R2 (restart)* — any other task whose output was never externalized
    (``ever_fetched`` false; for the root stage: no result page collected):
    its spool is discarded, its inputs are replayed from the upstream
    buffers' lineage logs, and a replacement recomputes from scratch.
  - otherwise — **unrecoverable**: the query fails with a structured
    :class:`~repro.errors.QueryFailedError` carrying the fault history.

* **Exactly-once replay** is provided by the output buffers:
  ``SharedOutputBuffer`` requeues a dead consumer's taken pages into the
  shared queue; ``ShuffleOutputBuffer`` replays its per-consumer push log
  and redirects in-flight shuffle work to the replacement's buffer id at
  the dead task's exact hash-partition position; broadcast replays its
  page cache.

* **Respawn wiring** reuses the intra-stage 3-step task-addition path
  (paper Section 4.4, Figure 14): create the task, hand its address to
  the parent-stage tasks, set the child-stage addresses on it — all
  charged to the RPC tracker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..buffers import ShuffleOutputBuffer
from ..errors import QueryFailedError, SchedulingError
from ..exec.operators.sources import ScanSource
from ..exec.splits import RemoteSplit
from ..plan.physical import PFilterNode, PProjectNode

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import Coordinator, QueryExecution
    from ..cluster.node import Node
    from ..cluster.stage import StageExecution
    from ..exec.task import Task


class RecoveryManager:
    def __init__(self, coordinator: "Coordinator"):
        self.coordinator = coordinator
        self.kernel = coordinator.kernel
        self.config = coordinator.config.faults
        #: (query id, stage id, dead seq) -> replacement seq, so a late
        #: recovery can resolve buffer-ID groups that still name dead tasks.
        self._replaced: dict[tuple[int, int, int], int] = {}
        # -- counters surfaced via metrics.report ------------------------
        self.node_failures = 0
        self.tasks_crashed = 0
        self.tasks_respawned = 0
        self.tasks_resumed = 0
        self.tasks_restarted = 0
        self.queries_failed = 0

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def node_down(self, node: "Node") -> None:
        """Kill a node now; the coordinator notices one heartbeat later."""
        if not node.alive:
            return
        node.fail()
        self.node_failures += 1
        if node.role == "coordinator":
            self.kernel.schedule(
                self.config.detection_delay, lambda: self._coordinator_down()
            )
            return
        self.kernel.schedule(
            self.config.detection_delay, lambda: self._handle_node_down(node)
        )

    def task_down(
        self, query: "QueryExecution", stage: "StageExecution", task: "Task"
    ) -> None:
        """Crash one task (fault injection) without killing its node."""
        if task.finished or task.crashed:
            return
        task.crash(reason="injected task crash")
        self.tasks_crashed += 1
        query.record_fault("task_crash", f"{task.task_id} on {task.node.name}")
        self.kernel.schedule(
            self.config.detection_delay,
            lambda: task.when_quanta_drained(
                lambda: self.recover_task(query, stage, task)
            ),
        )

    # ------------------------------------------------------------------
    def _coordinator_down(self) -> None:
        for query in list(self.coordinator.queries.values()):
            if query.finished:
                continue
            query.record_fault("node_crash", "coordinator")
            self._fail(query, "coordinator node crashed")

    def _handle_node_down(self, node: "Node") -> None:
        """Detection fired: blacklisting already happened via ``alive``;
        now crash every task on the dead node and recover per task.

        Recovery runs top-down (consumers before producers) in the common
        immediate case; the wiring is order-independent regardless, thanks
        to shuffle redirects and the replacement map."""
        for query in list(self.coordinator.queries.values()):
            if query.finished:
                continue
            dead: list[tuple["StageExecution", "Task"]] = []
            for stage in query.stages.values():  # insertion = bottom-up
                for task in stage.tasks:
                    if task.node is node and not task.finished:
                        task.crash(reason=f"{node.name} down")
                        self.tasks_crashed += 1
                        dead.append((stage, task))
            if not dead:
                continue
            query.record_fault(
                "node_down", f"{node.name} ({len(dead)} tasks lost)"
            )
            for stage, task in reversed(dead):
                task.when_quanta_drained(
                    lambda q=query, s=stage, t=task: self.recover_task(q, s, t)
                )

    # ------------------------------------------------------------------
    # per-task recovery
    # ------------------------------------------------------------------
    def recover_task(
        self, query: "QueryExecution", stage: "StageExecution", task: "Task"
    ) -> "Task | None":
        """Classify a crashed task and respawn it (or fail the query)."""
        if query.finished or task.recovered or not task.crashed:
            return None
        task.recovered = True
        verdict, reason = self._classify(query, stage, task)
        if verdict == "unrecoverable":
            query.record_fault("unrecoverable", f"{task.task_id}: {reason}")
            self._fail(
                query, f"task {task.task_id} is unrecoverable: {reason}"
            )
            return None
        try:
            return self._respawn(query, stage, task, verdict)
        except SchedulingError as exc:
            query.record_fault("respawn_failed", str(exc))
            self._fail(query, f"cannot respawn {task.task_id}: {exc}")
            return None

    def _classify(
        self, query: "QueryExecution", stage: "StageExecution", task: "Task"
    ) -> tuple[str, str]:
        if len(stage.task_groups) > 1 and task not in stage.task_groups[-1]:
            return "unrecoverable", "died mid DOP-switch in a draining group"
        if stage.retries >= self.config.task_retry_budget:
            return (
                "unrecoverable",
                f"stage {stage.id} retry budget ({self.config.task_retry_budget}) exhausted",
            )
        if self._stateless_scan(stage, task):
            return "resume", "stateless scan"
        externalized = (
            bool(query.result_pages)
            if stage.id == 0
            else task.output_buffer.ever_fetched
        )
        if externalized:
            return "unrecoverable", "output already externalized"
        return "restart", "output never externalized"

    def _stateless_scan(self, stage: "StageExecution", task: "Task") -> bool:
        """R3: pure filter/project over a split feed, spooling straight to
        the task output buffer — resumable without any replay."""
        if not stage.fragment.is_source or stage.split_feed is None:
            return False
        if task.exchange_clients or task.bridges or task.local_exchanges:
            return False
        for runtime in task.pipelines:
            spec = runtime.spec
            if spec.sink.kind != "task_output":
                return False
            for node in spec.transforms:
                if not isinstance(node, (PFilterNode, PProjectNode)):
                    return False
        return True

    # ------------------------------------------------------------------
    def _respawn(
        self,
        query: "QueryExecution",
        stage: "StageExecution",
        old: "Task",
        mode: str,
    ) -> "Task":
        from ..cluster.scheduler import RPC_CREATE_TASK, RPC_UPDATE_LINK

        old_seq = old.task_id.seq
        old_group = list(getattr(old.output_buffer, "group", []) or [])

        # Return split-feed work held by the dead task.
        for runtime in old.pipelines:
            for driver in runtime.drivers:
                source = driver.source
                if isinstance(source, ScanSource):
                    if mode == "resume":
                        source.release_unfinished()
                    else:
                        source.restart_release()

        # Seal or discard the dead task's spool.
        if mode == "resume":
            old.output_buffer.task_finished()
            self.tasks_resumed += 1
        else:
            old.output_buffer.abort()
            self.tasks_restarted += 1
        stage.retries += 1

        new = self.coordinator.scheduler.create_task(query, stage)
        self.tasks_respawned += 1
        self._replaced[(query.id, stage.id, old_seq)] = new.task_id.seq
        seq = new.task_id.seq
        requests = RPC_CREATE_TASK

        # Step 2 (Figure 14): hand the new task's address to the parents.
        parents = [
            query.stages[p] for p in query.plan.parents_of(stage.id)
        ]
        if isinstance(new.output_buffer, ShuffleOutputBuffer) and parents:
            # Preserve the dead task's exact group *order*: hash-partition
            # index -> consumer mapping must match what the sibling
            # producers (and any already-shuffled build side) used.
            group = [
                self._resolve(query.id, parents[0].id, g) for g in old_group
            ] or [t.task_id.seq for t in parents[0].active_group]
            new.output_buffer.set_group(group)
            requests += RPC_UPDATE_LINK
        for parent in parents:
            for parent_task in parent.active_group:
                new.output_buffer.add_consumer(parent_task.task_id.seq)
                parent_task.add_upstream(
                    stage.id, RemoteSplit(new, parent_task.task_id.seq)
                )
                requests += RPC_UPDATE_LINK

        # Step 3: set the child-stage addresses on the new task, replaying
        # the dead task's share of each upstream's output.
        for child_id in stage.fragment.children:
            child = query.stages[child_id]
            for upstream in child.tasks:
                buffer = upstream.output_buffer
                if buffer.aborted:
                    continue  # being restarted; its own recovery wires us
                if (
                    upstream.crashed
                    and not upstream.recovered
                    and not self._stateless_scan(child, upstream)
                ):
                    continue  # doomed: will restart (or fail the query)
                buffer.requeue_for_retry(old_seq, seq)
                new.add_upstream(child_id, RemoteSplit(upstream, seq))
                requests += RPC_UPDATE_LINK

        task_dop = max(1, stage.task_dop)
        query.record_fault(
            "respawn",
            f"{old.task_id} -> {new.task_id} on {new.node.name} ({mode})",
        )

        def start() -> None:
            if query.finished:
                return
            new.start(task_dop)

        self.coordinator.rpc.after_requests(requests, start, query_id=query.id)
        return new

    def _resolve(self, query_id: int, stage_id: int, seq: int) -> int:
        while (query_id, stage_id, seq) in self._replaced:
            seq = self._replaced[(query_id, stage_id, seq)]
        return seq

    # ------------------------------------------------------------------
    def _fail(self, query: "QueryExecution", message: str) -> None:
        self.queries_failed += 1
        query.fail(QueryFailedError(message, query_id=query.id))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "node_failures": self.node_failures,
            "tasks_crashed": self.tasks_crashed,
            "tasks_respawned": self.tasks_respawned,
            "tasks_resumed": self.tasks_resumed,
            "tasks_restarted": self.tasks_restarted,
            "queries_failed": self.queries_failed,
        }
