"""Deterministic fault injection and failure recovery.

This package adds the robustness layer the paper's production context
implies but does not spell out: Accordion runs on cloud VMs where nodes
die, control-plane RPCs get lost, and tasks crash mid-execution.  The
fault model is documented in DESIGN.md ("Fault model & recovery"):

* Faults are *planned* (:class:`FaultPlan`) and *injected*
  (:class:`FaultInjector`) on the simulation's virtual clock, so a given
  seed reproduces a bit-identical fault timeline.
* Recovery (:class:`RecoveryManager`) blacklists dead nodes, respawns
  crashed tasks through the intra-stage 3-step task-addition path
  (Section 4.4) with lineage-log replay for exactly-once delivery, and
  fails queries with a structured
  :class:`~repro.errors.QueryFailedError` when a crash is unrecoverable —
  never by hanging the event loop.
"""

from .injector import FaultInjector
from .plan import FaultPlan, NodeCrash, RpcOutage, RpcStorm, TaskCrash
from .recovery import RecoveryManager

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "RecoveryManager",
    "RpcOutage",
    "RpcStorm",
    "TaskCrash",
]
