"""Fault injector: executes a :class:`FaultPlan` on the virtual clock.

Node and task crashes are scheduled as kernel events; RPC faults install a
per-request outcome hook on the coordinator's :class:`RpcTracker`.  The
only randomness is ``random.Random(plan.seed)``, consumed exclusively for
storm outcomes inside their windows, so the full fault timeline (recorded
in :attr:`FaultInjector.history`) is bit-identical across runs with the
same seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..sim import SimKernel
from .plan import FaultPlan, NodeCrash, RpcOutage, RpcStorm, TaskCrash

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import Coordinator


class FaultInjector:
    def __init__(self, kernel: SimKernel, coordinator: "Coordinator", plan: FaultPlan):
        self.kernel = kernel
        self.coordinator = coordinator
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: The injected fault timeline: dicts of ``{"t", "kind", "detail"}``.
        self.history: list[dict] = []
        self._rpc_events = plan.rpc_events
        if self._rpc_events:
            coordinator.rpc.set_fault_hook(self._rpc_outcome)
        for event in plan.events:
            if isinstance(event, NodeCrash):
                kernel.schedule_at(
                    max(kernel.now, event.at), lambda e=event: self._crash_node(e)
                )
            elif isinstance(event, TaskCrash):
                kernel.schedule_at(
                    max(kernel.now, event.at), lambda e=event: self._crash_task(e)
                )

    # ------------------------------------------------------------------
    def _record(self, kind: str, detail: str) -> None:
        self.history.append({"t": self.kernel.now, "kind": kind, "detail": detail})
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant("fault", kind, node="coordinator", detail=detail)

    def _crash_node(self, event: NodeCrash) -> None:
        node = self.coordinator.cluster.node_by_name(event.node)
        if not node.alive:
            return
        self._record("node_crash", node.name)
        self.coordinator.recovery.node_down(node)

    def _crash_task(self, event: TaskCrash) -> None:
        for query in list(self.coordinator.queries.values()):
            if query.finished:
                continue
            stage = query.stages.get(event.stage)
            if stage is None:
                continue
            candidates = [
                t for t in stage.tasks if not t.finished and not t.crashed
            ]
            if not candidates:
                continue
            task = candidates[event.index % len(candidates)]
            self._record("task_crash", f"{task.task_id} on {task.node.name}")
            self.coordinator.recovery.task_down(query, stage, task)

    # ------------------------------------------------------------------
    def _rpc_outcome(self, t: float):
        """Outcome of one request attempt at virtual time ``t``."""
        for event in self._rpc_events:
            if event.start <= t < event.stop:
                if isinstance(event, RpcOutage):
                    return "fail"
                if isinstance(event, RpcStorm):
                    if self.rng.random() < event.failure_rate:
                        return "fail"
                    if event.delay:
                        return ("delay", event.delay)
        return "ok"
