"""Fault plans: declarative, seeded schedules of what breaks and when.

A plan is data, not behaviour — the :class:`~repro.faults.FaultInjector`
executes it against a running engine.  All times are virtual seconds;
identical plans against identical engines produce bit-identical fault
timelines and results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeCrash:
    """Kill one node at ``at`` (by name: ``compute3``, ``storage0``,
    ``coordinator``).  Cores are revoked quantum-atomically; spooled task
    output stays readable via durable disaggregated storage."""

    at: float
    node: str
    kind: str = field(default="node_crash", repr=False)


@dataclass(frozen=True)
class TaskCrash:
    """Crash one running task of stage ``stage`` at ``at`` (the
    ``index``-th unfinished task at fire time), without killing its node."""

    at: float
    stage: int
    index: int = 0
    kind: str = field(default="task_crash", repr=False)


@dataclass(frozen=True)
class RpcStorm:
    """Between ``start`` and ``stop``, each control-plane request fails
    with probability ``failure_rate`` (seeded RNG) and otherwise suffers
    ``delay`` extra seconds.  Failed requests retry with bounded backoff."""

    start: float
    stop: float
    failure_rate: float = 0.5
    delay: float = 0.0
    kind: str = field(default="rpc_storm", repr=False)


@dataclass(frozen=True)
class RpcOutage:
    """Between ``start`` and ``stop`` every control-plane request fails.
    An outage longer than the full retry schedule fails in-flight actions
    (and their queries) with a structured error."""

    start: float
    stop: float
    kind: str = field(default="rpc_outage", repr=False)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault events plus the RNG seed used for
    probabilistic outcomes (RPC storms)."""

    seed: int = 0
    events: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def node_crashes(self) -> list[NodeCrash]:
        return [e for e in self.events if isinstance(e, NodeCrash)]

    @property
    def task_crashes(self) -> list[TaskCrash]:
        return [e for e in self.events if isinstance(e, TaskCrash)]

    @property
    def rpc_events(self) -> list:
        return [e for e in self.events if isinstance(e, (RpcStorm, RpcOutage))]

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}):"]
        for event in self.events:
            lines.append(f"  {event!r}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @staticmethod
    def random(
        seed: int,
        *,
        horizon: float,
        compute_nodes: int,
        storage_nodes: int = 0,
        node_crashes: int = 1,
        storms: int = 0,
        storm_failure_rate: float = 0.4,
    ) -> "FaultPlan":
        """A seeded random plan of compute/storage node crashes (never the
        coordinator) and optional RPC storms within ``[0, horizon]``.

        The generator draws from ``random.Random(seed)`` in a fixed order,
        so the same arguments always produce the same plan.
        """
        rng = random.Random(seed)
        events: list = []
        names = [f"compute{i}" for i in range(compute_nodes)]
        names += [f"storage{i}" for i in range(storage_nodes)]
        victims = rng.sample(names, k=min(node_crashes, len(names)))
        for name in victims:
            events.append(NodeCrash(at=rng.uniform(0.05, horizon), node=name))
        for _ in range(storms):
            start = rng.uniform(0.0, horizon)
            events.append(
                RpcStorm(
                    start=start,
                    stop=start + rng.uniform(0.05, horizon / 2),
                    failure_rate=storm_failure_rate,
                )
            )
        events.sort(key=lambda e: getattr(e, "at", getattr(e, "start", 0.0)))
        return FaultPlan(seed=seed, events=tuple(events))
