"""Naive single-node reference executor (correctness oracle).

Evaluates a logical plan directly over whole in-memory tables, with
straightforward dict-based joins and aggregations.  The distributed engine
must produce exactly the same rows under *any* DOP tuning schedule — the
test suite's central invariant (elasticity never changes answers).
"""

from __future__ import annotations

import numpy as np

from .data import Catalog
from .errors import ExecutionError
from .pages import ColumnType, Page, Schema
from .plan.logical import (
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)
from .sql.expressions import AggregateCall
from .sql.functions import (
    group_codes,
    grouped_count,
    grouped_max,
    grouped_min,
    grouped_sum,
)


def empty_aggregate_value(call: AggregateCall):
    """Value of an aggregate over zero rows (engine-wide convention).

    Standard SQL yields NULL for sum/avg/min/max over empty input; this
    engine is NULL-free, so it uses 0 for sums/counts and NaN for the rest
    (documented deviation, consistent across reference and distributed
    executors).
    """
    if call.function == "count":
        return 0
    if call.function == "sum":
        return 0 if call.result_type is ColumnType.INT64 else 0.0
    return float("nan")


def execute_reference(plan: LogicalNode, catalog: Catalog) -> Page:
    """Evaluate ``plan`` against ``catalog`` and return one result page."""
    return _Reference(catalog).run(plan)


class _Reference:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def run(self, node: LogicalNode) -> Page:
        method = getattr(self, f"_run_{type(node).__name__}", None)
        if method is None:
            raise ExecutionError(f"reference executor: no rule for {type(node).__name__}")
        return method(node)

    # -- leaves -----------------------------------------------------------
    def _run_LogicalScan(self, node: LogicalScan) -> Page:
        table = self.catalog.table(node.table)
        columns = [table.columns[i] for i in node.column_indexes]
        return Page(node.schema, columns)

    # -- row transforms -----------------------------------------------------
    def _run_LogicalFilter(self, node: LogicalFilter) -> Page:
        child = self.run(node.child)
        mask = node.predicate.evaluate(child).astype(bool, copy=False)
        return child.mask(mask)

    def _run_LogicalProject(self, node: LogicalProject) -> Page:
        child = self.run(node.child)
        return Page(node.schema, [e.evaluate(child) for e in node.exprs])

    # -- joins -----------------------------------------------------------
    def _run_LogicalJoin(self, node: LogicalJoin) -> Page:
        left = self.run(node.left)
        right = self.run(node.right)
        if node.join_type is JoinType.CROSS:
            return self._cross(node, left, right)

        build_keys = _key_rows(right, node.right_keys)
        table: dict[tuple, list[int]] = {}
        for i, key in enumerate(build_keys):
            table.setdefault(key, []).append(i)

        probe_keys = _key_rows(left, node.left_keys)
        if node.join_type in (JoinType.SEMI, JoinType.ANTI):
            want = node.join_type is JoinType.SEMI
            mask = np.fromiter(
                ((key in table) == want for key in probe_keys),
                dtype=bool,
                count=len(probe_keys),
            )
            return left.mask(mask)

        left_idx: list[int] = []
        right_idx: list[int] = []
        for i, key in enumerate(probe_keys):
            for j in table.get(key, ()):
                left_idx.append(i)
                right_idx.append(j)
        combined = _concat_rows(node.schema, left, right, left_idx, right_idx)
        if node.residual is not None:
            mask = node.residual.evaluate(combined).astype(bool, copy=False)
            combined = combined.mask(mask)
        return combined

    def _cross(self, node: LogicalJoin, left: Page, right: Page) -> Page:
        nl, nr = left.num_rows, right.num_rows
        left_idx = np.repeat(np.arange(nl), nr)
        right_idx = np.tile(np.arange(nr), nl)
        combined = _concat_rows(node.schema, left, right, left_idx, right_idx)
        if node.residual is not None:
            mask = node.residual.evaluate(combined).astype(bool, copy=False)
            combined = combined.mask(mask)
        return combined

    # -- aggregation -----------------------------------------------------
    def _run_LogicalAggregate(self, node: LogicalAggregate) -> Page:
        child = self.run(node.child)
        keys = [child.columns[k] for k in node.group_keys]
        if not node.group_keys:
            values = []
            for agg in node.aggregates:
                values.append(_global_aggregate(agg, child))
            return Page.from_rows(node.schema, [tuple(values)])

        if child.num_rows == 0:
            return Page(node.schema, [f.type.coerce([]) for f in node.schema])

        codes, unique_keys = group_codes(keys)
        ngroups = len(unique_keys[0]) if unique_keys else 0
        columns = list(unique_keys)
        for agg in node.aggregates:
            columns.append(_grouped_aggregate(agg, child, codes, ngroups))
        return Page(node.schema, columns)

    # -- ordering -----------------------------------------------------------
    def _run_LogicalSort(self, node: LogicalSort) -> Page:
        child = self.run(node.child)
        return child.take(sort_indices(child, node.sort_keys))

    def _run_LogicalTopN(self, node: LogicalTopN) -> Page:
        child = self.run(node.child)
        order = sort_indices(child, node.sort_keys)[: node.count]
        return child.take(order)

    def _run_LogicalLimit(self, node: LogicalLimit) -> Page:
        child = self.run(node.child)
        return child.slice(0, node.count)


# ---------------------------------------------------------------------------
# shared helpers (also used by the distributed operators and tests)
# ---------------------------------------------------------------------------
def _key_rows(page: Page, keys: list[int]) -> list[tuple]:
    cols = [page.columns[k].tolist() for k in keys]
    return list(zip(*cols)) if cols else [() for _ in range(page.num_rows)]


def _concat_rows(schema: Schema, left: Page, right: Page, left_idx, right_idx) -> Page:
    left_idx = np.asarray(left_idx, dtype=np.int64)
    right_idx = np.asarray(right_idx, dtype=np.int64)
    columns = [c[left_idx] for c in left.columns]
    columns += [c[right_idx] for c in right.columns]
    return Page(schema, columns)


def _global_aggregate(agg: AggregateCall, page: Page):
    if page.num_rows == 0:
        return empty_aggregate_value(agg)
    if agg.function == "count":
        return page.num_rows
    values = agg.arg.evaluate(page)
    if agg.function == "sum":
        total = values.sum()
        return int(total) if agg.result_type is ColumnType.INT64 else float(total)
    if agg.function == "avg":
        return float(values.mean())
    if agg.function == "min":
        return values.min()
    if agg.function == "max":
        return values.max()
    raise ExecutionError(f"unknown aggregate {agg.function}")


def _grouped_aggregate(
    agg: AggregateCall, page: Page, codes: np.ndarray, ngroups: int
) -> np.ndarray:
    if agg.function == "count" and agg.arg is None:
        return grouped_count(codes, ngroups)
    values = agg.arg.evaluate(page) if agg.arg is not None else None
    if agg.function == "count":
        return grouped_count(codes, ngroups)
    if agg.function == "sum":
        return grouped_sum(codes, values, ngroups)
    if agg.function == "avg":
        sums = grouped_sum(codes, values.astype(np.float64), ngroups)
        counts = grouped_count(codes, ngroups)
        return sums / counts
    if agg.function == "min":
        return grouped_min(codes, values, ngroups)
    if agg.function == "max":
        return grouped_max(codes, values, ngroups)
    raise ExecutionError(f"unknown aggregate {agg.function}")


def sort_indices(page: Page, sort_keys: list[tuple[int, bool]]) -> np.ndarray:
    """Stable multi-key sort; supports mixed asc/desc and string keys."""
    order = np.arange(page.num_rows)
    # Apply keys from least to most significant; each pass is stable.
    for index, ascending in reversed(sort_keys):
        column = page.columns[index][order]
        if column.dtype == object:
            inner = sorted(range(len(order)), key=lambda i: column[i], reverse=not ascending)
            order = order[np.asarray(inner, dtype=np.int64)]
        else:
            key = column if ascending else -column
            order = order[np.argsort(key, kind="stable")]
    return order
