"""Small shared utilities (date <-> epoch-day conversion, formatting).

TPC-H date columns are stored as int64 days since 1970-01-01 so that all
date arithmetic stays vectorized; these helpers convert at the boundaries
(SQL literals, CSV I/O, result rendering).
"""

from __future__ import annotations

import datetime as _dt

_EPOCH = _dt.date(1970, 1, 1)


def date_to_days(value: str | _dt.date) -> int:
    """Convert ``YYYY-MM-DD`` (or a date object) to days since the epoch."""
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Inverse of :func:`date_to_days`."""
    return _EPOCH + _dt.timedelta(days=int(days))


def days_to_str(days: int) -> str:
    return days_to_date(days).isoformat()


def add_months(days: int, months: int) -> int:
    """Add calendar months to an epoch-day value (SQL ``INTERVAL n MONTH``)."""
    date = days_to_date(days)
    month_index = date.year * 12 + (date.month - 1) + months
    year, month = divmod(month_index, 12)
    month += 1
    # Clamp the day-of-month like standard SQL interval arithmetic.
    day = min(date.day, _days_in_month(year, month))
    return date_to_days(_dt.date(year, month, day))


def add_years(days: int, years: int) -> int:
    return add_months(days, 12 * years)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = _dt.date(year + 1, 1, 1)
    else:
        nxt = _dt.date(year, month + 1, 1)
    return (nxt - _dt.date(year, month, 1)).days


def year_of_days(days: int) -> int:
    """EXTRACT(YEAR FROM date) for an epoch-day value."""
    return days_to_date(days).year


def format_bytes(nbytes: float) -> str:
    """Human-readable byte counts for reports (e.g. Table 1)."""
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(nbytes)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")
