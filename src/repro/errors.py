"""Exception hierarchy for the Accordion engine.

Every error raised by the library derives from :class:`AccordionError` so
applications can catch engine failures with a single ``except`` clause while
still being able to distinguish user errors (bad SQL, bad tuning request)
from internal invariant violations.
"""

from __future__ import annotations


class AccordionError(Exception):
    """Base class for all errors raised by the repro/Accordion library."""


class SqlError(AccordionError):
    """Base class for errors in the SQL front end."""


class LexError(SqlError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""


class AnalysisError(SqlError):
    """Raised during semantic analysis (unknown table/column, type mismatch...)."""


class PlanningError(AccordionError):
    """Raised when the optimizer or physical planner hits an unsupported shape."""


class SchedulingError(AccordionError):
    """Raised when the (dynamic) scheduler cannot honour a placement request."""


class TuningRejected(AccordionError):
    """Raised when the DOP tuning request filter rejects a request.

    Mirrors the paper's request filter (Section 5.2): requests against
    finished queries/stages and requests whose estimated remaining time is
    smaller than the hash-table rebuild time are rejected rather than
    executed.
    """

    def __init__(self, message: str, reason: str = "filtered"):
        super().__init__(message)
        self.reason = reason


class ExecutionError(AccordionError):
    """Raised when a query fails at runtime inside an operator."""


class MemoryBudgetExceededError(ExecutionError):
    """An operator's tracked bytes exceeded the query's memory budget
    while spilling was disallowed (``MemoryConfig.spill_enabled=False``).

    With spilling enabled the engine never raises this — the operator
    switches to the out-of-core path instead.  Carries enough structure
    for an admission layer to renegotiate: which operator overflowed, how
    many bytes it tracked, and the budget it broke.
    """

    def __init__(
        self,
        message: str,
        query_id: int | None = None,
        operator: str | None = None,
        tracked_bytes: int = 0,
        budget_bytes: int = 0,
    ):
        super().__init__(message)
        self.query_id = query_id
        self.operator = operator
        self.tracked_bytes = tracked_bytes
        self.budget_bytes = budget_bytes


class OffloadError(ExecutionError):
    """Base class for failures in the parallel offload backend."""


class WorkerCrashedError(OffloadError):
    """A pool worker died (or overran its job deadline and was killed)
    and the job's bounded retry budget is exhausted.

    The offload layer never hangs on a dead worker: every in-flight job
    on the crashed process resolves immediately, pure jobs are retried
    up to ``ParallelConfig.max_retries`` times on surviving workers, and
    only then does this structured error reach the query.
    """

    def __init__(self, message: str, kind: str | None = None, retries: int = 0):
        super().__init__(message)
        self.kind = kind
        self.retries = retries


class WorkerJobError(OffloadError):
    """A job raised inside a worker.  Deterministic given the job inputs,
    so it is *not* retried; carries the remote traceback for diagnosis."""

    def __init__(self, message: str, kind: str | None = None,
                 remote_traceback: str = ""):
        super().__init__(message)
        self.kind = kind
        self.remote_traceback = remote_traceback


class QueryFailedError(ExecutionError):
    """A query reached the FAILED state (unrecoverable fault or operator
    error).  Carries the structured fault history collected by the
    coordinator so callers can distinguish *what* killed the query: node
    losses, task crashes, exhausted retry budgets, RPC give-ups, or a
    plain operator exception.
    """

    def __init__(
        self,
        message: str,
        query_id: int | None = None,
        fault_history: list | None = None,
        cause: BaseException | None = None,
    ):
        super().__init__(message)
        self.query_id = query_id
        self.fault_history = list(fault_history or [])
        self.cause = cause

    def describe(self) -> str:
        lines = [str(self)]
        for event in self.fault_history:
            lines.append(f"  [{event.get('t', 0.0):10.4f}] {event.get('kind')}: "
                         f"{event.get('detail', '')}")
        return "\n".join(lines)


class QueryRejectedError(AccordionError):
    """The admission controller refused to run a query.

    Raised (from :meth:`QueryHandle.result` / :meth:`QueryHandle.wait`)
    when a submission exceeds the workload policy's limits and either the
    queue timeout expires or the controller rejects it outright.
    """

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        reason: str = "rejected",
        queued_seconds: float = 0.0,
        prediction=None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.queued_seconds = queued_seconds
        #: The :class:`repro.Prediction` behind an SLO rejection
        #: (``reason="predicted-miss"``); None for policy rejections.
        self.prediction = prediction


class QueryCancelledError(QueryFailedError):
    """A query was cancelled (``QueryHandle.cancel()``).

    Cancellation is a *clean* teardown: running drivers receive end
    signals (Section 4.3/4.4) so stateful operators flush and buffers
    drain instead of being ripped out mid-quantum.  Subclasses
    :class:`QueryFailedError` so existing ``except QueryFailedError``
    handlers treat a cancelled query as a failed one.
    """

    def __init__(self, message: str, query_id: int | None = None,
                 reason: str = "cancelled"):
        super().__init__(message, query_id=query_id)
        self.reason = reason


class SimulationLivelockError(AccordionError, RuntimeError):
    """The simulation processed ``max_events`` events without finishing.

    Distinguishes a livelocked event loop from a genuine query failure in
    fault tests.  ``now`` is the virtual time at which the guard tripped and
    ``events_processed`` the kernel's lifetime event count.
    """

    def __init__(self, message: str, now: float = 0.0, events_processed: int = 0):
        super().__init__(message)
        self.now = now
        self.events_processed = events_processed


class InvariantViolation(AccordionError):
    """Internal engine invariant broken; indicates a bug, not a user error."""


class ScriptError(AccordionError):
    """Raised by the experiment scripting language front end (Section 6.1)."""
