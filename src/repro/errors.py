"""Exception hierarchy for the Accordion engine.

Every error raised by the library derives from :class:`AccordionError` so
applications can catch engine failures with a single ``except`` clause while
still being able to distinguish user errors (bad SQL, bad tuning request)
from internal invariant violations.
"""

from __future__ import annotations


class AccordionError(Exception):
    """Base class for all errors raised by the repro/Accordion library."""


class SqlError(AccordionError):
    """Base class for errors in the SQL front end."""


class LexError(SqlError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""


class AnalysisError(SqlError):
    """Raised during semantic analysis (unknown table/column, type mismatch...)."""


class PlanningError(AccordionError):
    """Raised when the optimizer or physical planner hits an unsupported shape."""


class SchedulingError(AccordionError):
    """Raised when the (dynamic) scheduler cannot honour a placement request."""


class TuningRejected(AccordionError):
    """Raised when the DOP tuning request filter rejects a request.

    Mirrors the paper's request filter (Section 5.2): requests against
    finished queries/stages and requests whose estimated remaining time is
    smaller than the hash-table rebuild time are rejected rather than
    executed.
    """

    def __init__(self, message: str, reason: str = "filtered"):
        super().__init__(message)
        self.reason = reason


class ExecutionError(AccordionError):
    """Raised when a query fails at runtime inside an operator."""


class InvariantViolation(AccordionError):
    """Internal engine invariant broken; indicates a bug, not a user error."""


class ScriptError(AccordionError):
    """Raised by the experiment scripting language front end (Section 6.1)."""
