"""Logical plan -> distributed physical plan (fragment/stage tree).

Follows the paper's stage shapes (Figures 4, 15, 21, 27):

* every table scan is its own stage,
* every hash join gets its own stage, probing a remote source from the
  probe child's stage and building from the build child's stage through a
  local exchange,
* partial aggregation is appended to the child's stage; final aggregation
  runs in a dedicated stage with parallelism fixed at 1,
* TopN/Sort/Limit run in the single-task output stage (stage 0), with a
  partial TopN/Limit pushed into the upstream stage,
* optionally, pure *shuffle stages* are interposed after selected table
  scans (Section 4.6) so the hash-partitioning work can be scaled
  independently of the scan.

Stage numbering is the paper's: stage 0 is the output stage, then a
probe-first depth-first traversal — reproducing e.g. Q3's S1..S5 layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..buffers import OutputMode
from ..data import Catalog
from ..errors import PlanningError
from .logical import (
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)
from .optimizer.stats import estimate_rows
from .physical import (
    OutputSpec,
    PFilterNode,
    PFinalAggNode,
    PJoinNode,
    PLimitNode,
    PLocalExchangeNode,
    PNode,
    POutputNode,
    PPartialAggNode,
    PProjectNode,
    PRemoteSourceNode,
    PScanNode,
    PSortNode,
    PTaskOutputNode,
    PTopNNode,
    PhysicalPlan,
    PlanFragment,
    partial_agg_schema,
)


@dataclass(frozen=True)
class PlannerOptions:
    """Session-level physical planning knobs."""

    #: "auto" picks broadcast for small build sides; "partitioned" and
    #: "broadcast" force the distribution (Presto's join_distribution_type).
    join_distribution: str = "auto"
    #: In "auto" mode, build sides estimated above this row count use a
    #: partitioned join.
    broadcast_threshold_rows: float = 1e12
    #: Tables whose scans get a dedicated downstream shuffle stage (4.6).
    shuffle_stage_tables: frozenset[str] = frozenset()
    #: Cache build-side pages for hash-table rebuild (intermediate data
    #: caching, Section 4.5).
    intermediate_data_cache: bool = True
    #: Push a partial TopN/Limit into the upstream stage.
    partial_pushdown: bool = True


@dataclass
class _Draft:
    """A fragment under construction (root still open at the top)."""

    root: PNode
    source_table: str | None = None
    dop_fixed: bool = False
    is_shuffle_stage: bool = False
    output: OutputSpec | None = None
    children: list["_Draft"] = field(default_factory=list)
    probe_child: "_Draft | None" = None
    build_children: list["_Draft"] = field(default_factory=list)
    id: int = -1


class PhysicalPlanner:
    def __init__(self, catalog: Catalog, options: PlannerOptions | None = None):
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self._remote_sources: list[tuple[PRemoteSourceNode, _Draft]] = []

    # ------------------------------------------------------------------
    def plan(self, root: LogicalNode) -> PhysicalPlan:
        draft = self._plan_rel(root)
        if not draft.dop_fixed:
            draft = self._cut_to_single(draft)
        draft.root = POutputNode(draft.root)
        draft.output = OutputSpec(OutputMode.GATHER)
        return self._finalize(draft)

    # ------------------------------------------------------------------
    # recursive fragment construction
    # ------------------------------------------------------------------
    def _plan_rel(self, node: LogicalNode) -> _Draft:
        if isinstance(node, LogicalScan):
            return _Draft(
                root=PScanNode(node.table, node.column_indexes, node.schema),
                source_table=node.table,
            )
        if isinstance(node, LogicalFilter):
            draft = self._plan_rel(node.child)
            draft.root = PFilterNode(draft.root, node.predicate)
            return draft
        if isinstance(node, LogicalProject):
            draft = self._plan_rel(node.child)
            draft.root = PProjectNode(draft.root, node.exprs, node.schema)
            return draft
        if isinstance(node, LogicalJoin):
            return self._plan_join(node)
        if isinstance(node, LogicalAggregate):
            return self._plan_aggregate(node)
        if isinstance(node, LogicalTopN):
            draft = self._plan_rel(node.child)
            if not draft.dop_fixed:
                if self.options.partial_pushdown:
                    draft.root = PTopNNode(draft.root, node.count, node.sort_keys, partial=True)
                draft = self._cut_to_single(draft)
            draft.root = PTopNNode(draft.root, node.count, node.sort_keys)
            return draft
        if isinstance(node, LogicalSort):
            draft = self._plan_rel(node.child)
            if not draft.dop_fixed:
                draft = self._cut_to_single(draft)
            draft.root = PSortNode(draft.root, node.sort_keys)
            return draft
        if isinstance(node, LogicalLimit):
            draft = self._plan_rel(node.child)
            if not draft.dop_fixed:
                if self.options.partial_pushdown:
                    draft.root = PLimitNode(draft.root, node.count, partial=True)
                draft = self._cut_to_single(draft)
            draft.root = PLimitNode(draft.root, node.count)
            return draft
        raise PlanningError(f"cannot plan {type(node).__name__} physically")

    def _plan_join(self, node: LogicalJoin) -> _Draft:
        probe_draft = self._plan_rel(node.left)
        build_draft = self._plan_rel(node.right)
        distribution = self._join_distribution(node)

        join_draft = _Draft(root=None)  # type: ignore[arg-type]
        cache = self.options.intermediate_data_cache

        if distribution == "partitioned":
            probe_draft = self._attach_child(
                join_draft,
                probe_draft,
                OutputSpec(OutputMode.HASH, tuple(node.left_keys)),
            )
            build_draft = self._attach_child(
                join_draft,
                build_draft,
                OutputSpec(OutputMode.HASH, tuple(node.right_keys), cache=cache),
                build=True,
            )
        else:
            probe_draft = self._attach_child(
                join_draft, probe_draft, OutputSpec(OutputMode.ARBITRARY)
            )
            build_draft = self._attach_child(
                join_draft,
                build_draft,
                OutputSpec(OutputMode.BROADCAST, cache=cache),
                build=True,
            )

        probe_source = self._remote_source(probe_draft)
        build_source = PLocalExchangeNode(self._remote_source(build_draft))
        join_draft.root = PJoinNode(
            probe=probe_source,
            build=build_source,
            join_type=node.join_type,
            probe_keys=list(node.left_keys),
            build_keys=list(node.right_keys),
            residual=node.residual,
            schema=node.schema,
            distribution=distribution,
        )
        join_draft.probe_child = probe_draft
        return join_draft

    def _plan_aggregate(self, node: LogicalAggregate) -> _Draft:
        child = self._plan_rel(node.child)
        partial_schema = partial_agg_schema(
            node.child.schema, node.group_keys, node.aggregates
        )
        child.root = PPartialAggNode(
            child.root, node.group_keys, node.aggregates, partial_schema
        )
        agg_draft = _Draft(root=None, dop_fixed=True)  # type: ignore[arg-type]
        child = self._attach_child(agg_draft, child, OutputSpec(OutputMode.GATHER))
        agg_draft.root = PFinalAggNode(
            self._remote_source(child),
            list(range(len(node.group_keys))),
            node.aggregates,
            node.schema,
        )
        agg_draft.probe_child = child
        return agg_draft

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _join_distribution(self, node: LogicalJoin) -> str:
        if node.join_type in (JoinType.SEMI, JoinType.ANTI, JoinType.CROSS):
            return "broadcast"
        mode = self.options.join_distribution
        if mode in ("partitioned", "broadcast"):
            return mode
        build_rows = estimate_rows(node.right, self.catalog)
        if build_rows > self.options.broadcast_threshold_rows:
            return "partitioned"
        return "broadcast"

    def _attach_child(
        self, parent: _Draft, child: _Draft, spec: OutputSpec, build: bool = False
    ) -> _Draft:
        """Close ``child`` with ``spec`` (inserting a shuffle stage when
        configured) and register it under ``parent``.  Returns the draft the
        parent should read from (the shuffle stage if one was inserted)."""
        child = self._maybe_insert_shuffle_stage(child, spec)
        if child.output is None:
            raise PlanningError("child draft was not closed")
        parent.children.append(child)
        if build:
            parent.build_children.append(child)
        return child

    def _maybe_insert_shuffle_stage(self, child: _Draft, spec: OutputSpec) -> _Draft:
        if (
            spec.mode is OutputMode.HASH
            and child.source_table is not None
            and child.source_table in self.options.shuffle_stage_tables
        ):
            self._close(child, OutputSpec(OutputMode.ARBITRARY))
            shuffle = _Draft(root=None, is_shuffle_stage=True)  # type: ignore[arg-type]
            shuffle.root = self._remote_source(child)
            shuffle.children.append(child)
            shuffle.probe_child = child
            self._close(shuffle, spec)
            return shuffle
        self._close(child, spec)
        return child

    def _close(self, draft: _Draft, spec: OutputSpec) -> None:
        draft.root = PTaskOutputNode(draft.root)
        draft.output = spec

    def _cut_to_single(self, draft: _Draft) -> _Draft:
        """Route ``draft`` through a gather into a new single-task draft."""
        self._close(draft, OutputSpec(OutputMode.GATHER))
        gathered = _Draft(root=None, dop_fixed=True)  # type: ignore[arg-type]
        gathered.root = self._remote_source(draft)
        gathered.children.append(draft)
        gathered.probe_child = draft
        return gathered

    def _remote_source(self, child: _Draft) -> PRemoteSourceNode:
        # The fragment id is patched after numbering.
        node = PRemoteSourceNode(-1, child.root.schema)
        self._remote_sources.append((node, child))
        return node

    # ------------------------------------------------------------------
    def _finalize(self, root_draft: _Draft) -> PhysicalPlan:
        order: list[_Draft] = []

        def visit(draft: _Draft) -> None:
            order.append(draft)
            ordered_children = []
            if draft.probe_child is not None and draft.probe_child in draft.children:
                ordered_children.append(draft.probe_child)
            ordered_children.extend(
                c for c in draft.children if c not in ordered_children
            )
            for child in ordered_children:
                visit(child)

        visit(root_draft)
        for i, draft in enumerate(order):
            draft.id = i
        for node, draft in self._remote_sources:
            node.child_fragment = draft.id

        fragments: dict[int, PlanFragment] = {}
        for draft in order:
            fragments[draft.id] = PlanFragment(
                id=draft.id,
                root=draft.root,
                output=draft.output or OutputSpec(OutputMode.GATHER),
                children=[c.id for c in draft.children],
                source_table=draft.source_table,
                probe_child=draft.probe_child.id if draft.probe_child else None,
                build_children=[c.id for c in draft.build_children],
                dop_fixed=draft.dop_fixed,
                is_shuffle_stage=draft.is_shuffle_stage,
            )
        return PhysicalPlan(fragments)
