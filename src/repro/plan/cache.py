"""Engine-level plan cache: memoizes parse -> analyze -> optimize -> plan.

Every ``engine.execute()`` used to re-lex, re-parse, re-analyze, and
re-plan its SQL even when the same query ran moments earlier (benchmarks
repeat each query; the auto-tuner and tests re-submit constantly).  The
physical plan is a pure *descriptor* — tasks instantiate operators from
fragments at schedule time and the same fragment is already reused when
the dynamic scheduler spawns tasks mid-query — so a plan keyed by exactly
its inputs can be shared across queries **and engines**.

The key is (catalog identity, catalog version, SQL text, QueryOptions
fingerprint, PlannerOptions): anything that can change the produced plan.
Catalogs carry a monotonically increasing ``version`` bumped by
``register()``, so registering/replacing a table invalidates every plan
cached against the older version.  Entries are held per catalog in a
``WeakKeyDictionary`` — dropping the catalog drops its plans.

``EngineConfig.plan_cache=False`` bypasses the cache entirely; hit/miss
counts surface per engine through ``engine.metrics`` (gauge
``plan_cache``).  Caching is bit-inert: a cached plan is the same object
the planner would rebuild, and the identity test in
``tests/test_plan_cache.py`` pins answers, virtual timings, and event
counts with the cache on vs off.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..data import Catalog
    from .physical import PhysicalPlan

#: Per-catalog bound on cached plans; far above any real working set, it
#: only guards against unbounded growth from generated-SQL loops.
_PER_CATALOG_LIMIT = 256


class PlanCache:
    """Process-wide plan memo, shared by all engines."""

    def __init__(self, limit: int = _PER_CATALOG_LIMIT):
        self.limit = limit
        # catalog -> (version, {key: plan})
        self._store: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def get(self, catalog: "Catalog", key: tuple) -> "PhysicalPlan | None":
        slot = self._store.get(catalog)
        if slot is None or slot[0] != catalog.version:
            return None
        return slot[1].get(key)

    def put(self, catalog: "Catalog", key: tuple, plan: "PhysicalPlan") -> None:
        slot = self._store.get(catalog)
        if slot is None or slot[0] != catalog.version:
            # First entry for this catalog version: stale-version plans
            # (catalog changed since they were built) are dropped here.
            slot = (catalog.version, {})
            self._store[catalog] = slot
        entries = slot[1]
        if len(entries) >= self.limit:
            entries.clear()
        entries[key] = plan

    def entries(self, catalog: "Catalog") -> int:
        """Number of live cached plans for ``catalog`` (introspection)."""
        slot = self._store.get(catalog)
        if slot is None or slot[0] != catalog.version:
            return 0
        return len(slot[1])

    def clear(self) -> None:
        self._store.clear()


#: The process-wide cache instance used by every Coordinator.
PLAN_CACHE = PlanCache()
