"""Fragment -> pipelines (paper Figure 6).

A fragment cannot execute directly in a task: it is rewritten (output node
appended by the physical planner) and subdivided at the pipeline breakers —
local exchange nodes (split into sink + source) and hash join nodes (split
into build + probe).  The result is an ordered list of
:class:`PipelineSpec`, each a sequence of operator descriptors a task turns
into physical operator sequences (drivers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanningError
from ..pages import Schema
from .physical import (
    PFilterNode,
    PFinalAggNode,
    PJoinNode,
    PLimitNode,
    PLocalExchangeNode,
    PNode,
    POutputNode,
    PPartialAggNode,
    PProjectNode,
    PRemoteSourceNode,
    PScanNode,
    PSortNode,
    PTaskOutputNode,
    PTopNNode,
    PlanFragment,
)

_TRANSFORM_NODES = (
    PFilterNode,
    PProjectNode,
    PPartialAggNode,
    PFinalAggNode,
    PTopNNode,
    PSortNode,
    PLimitNode,
)


@dataclass(frozen=True)
class SourceSpec:
    kind: str  # "scan" | "exchange" | "local_exchange"
    table: str | None = None
    child_fragment: int | None = None
    local_exchange: int | None = None
    schema: Schema | None = None
    #: For scans: positions of the selected columns in the base table.
    column_indexes: tuple[int, ...] | None = None


@dataclass(frozen=True)
class SinkSpec:
    kind: str  # "task_output" | "local_exchange" | "join_build" | "coordinator"
    local_exchange: int | None = None
    bridge: int | None = None


@dataclass(frozen=True)
class BridgeSpec:
    id: int
    build_schema: Schema
    build_keys: tuple[int, ...]
    join: PJoinNode


@dataclass
class PipelineSpec:
    id: int
    source: SourceSpec
    transforms: list[PNode]
    sink: SinkSpec
    #: Whether intra-task DOP tuning may change this pipeline's driver
    #: count (build pipelines are excluded; the paper tunes probe/exchange
    #: pipelines, Section 4.1).
    tunable: bool = True

    def describe(self) -> str:
        parts = [self.source.kind]
        parts += [t.name for t in self.transforms]
        parts.append(self.sink.kind)
        flag = "" if self.tunable else " (fixed)"
        return f"pipeline {self.id}: " + " -> ".join(parts) + flag


@dataclass
class FragmentLayout:
    """Everything a task needs to instantiate a fragment."""

    fragment: PlanFragment
    pipelines: list[PipelineSpec] = field(default_factory=list)
    bridges: list[BridgeSpec] = field(default_factory=list)
    local_exchanges: int = 0
    #: child fragment id -> schema, for exchange client creation.
    exchange_children: dict[int, Schema] = field(default_factory=dict)

    @property
    def output_pipeline(self) -> PipelineSpec:
        return self.pipelines[-1]

    def describe(self) -> str:
        return "\n".join(p.describe() for p in self.pipelines)


def fragment_pipelines(fragment: PlanFragment) -> FragmentLayout:
    """Split ``fragment`` into pipelines (build sides first, main last)."""
    layout = FragmentLayout(fragment)

    def new_pipeline(source: SourceSpec, transforms: list[PNode], sink: SinkSpec, tunable: bool) -> PipelineSpec:
        spec = PipelineSpec(len(layout.pipelines), source, transforms, sink, tunable)
        layout.pipelines.append(spec)
        return spec

    def descend(node: PNode) -> tuple[SourceSpec, list[PNode]]:
        """Source + transform chain for the pipeline containing ``node``."""
        if isinstance(node, PScanNode):
            return (
                SourceSpec(
                    "scan",
                    table=node.table,
                    schema=node.schema,
                    column_indexes=tuple(node.column_indexes),
                ),
                [],
            )
        if isinstance(node, PRemoteSourceNode):
            layout.exchange_children[node.child_fragment] = node.schema
            return (
                SourceSpec(
                    "exchange", child_fragment=node.child_fragment, schema=node.schema
                ),
                [],
            )
        if isinstance(node, PLocalExchangeNode):
            lx_id = layout.local_exchanges
            layout.local_exchanges += 1
            inner_source, inner_ops = descend(node.child)
            new_pipeline(
                inner_source,
                inner_ops,
                SinkSpec("local_exchange", local_exchange=lx_id),
                tunable=True,
            )
            return (
                SourceSpec("local_exchange", local_exchange=lx_id, schema=node.schema),
                [],
            )
        if isinstance(node, PJoinNode):
            build_source, build_ops = descend(node.build)
            bridge = BridgeSpec(
                id=len(layout.bridges),
                build_schema=node.build.schema,
                build_keys=tuple(node.build_keys),
                join=node,
            )
            layout.bridges.append(bridge)
            new_pipeline(
                build_source,
                build_ops,
                SinkSpec("join_build", bridge=bridge.id),
                tunable=False,
            )
            probe_source, probe_ops = descend(node.probe)
            return probe_source, probe_ops + [node]
        if isinstance(node, _TRANSFORM_NODES):
            source, ops = descend(node.child)
            return source, ops + [node]
        raise PlanningError(f"cannot pipeline {type(node).__name__}")

    root = fragment.root
    if isinstance(root, POutputNode):
        sink = SinkSpec("coordinator")
    elif isinstance(root, PTaskOutputNode):
        sink = SinkSpec("task_output")
    else:
        raise PlanningError("fragment root must be an output node")
    source, ops = descend(root.child)
    new_pipeline(source, ops, sink, tunable=True)
    return layout
