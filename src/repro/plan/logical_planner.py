"""Statement -> logical plan: binding, decorrelation, join ordering.

This is the optimizer front half.  It performs, in one construction pass:

* FROM-clause flattening (implicit joins, INNER JOIN ... ON, derived tables),
* predicate classification (single-leaf pushdown, equi-join edge
  extraction, residual predicates, common-factor extraction from OR),
* subquery decorrelation — EXISTS/NOT EXISTS become SEMI/ANTI joins and
  correlated scalar subqueries (TPC-H Q2) become grouped-aggregate leaves
  joined on their correlation keys,
* greedy join ordering with build-side selection by estimated size,
* two-phase-friendly aggregation planning (pre-projection + hash
  aggregate + post-projection), HAVING, ORDER BY / TopN / LIMIT.

Projection pruning runs afterwards as a rule (:mod:`.optimizer.rules`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data import Catalog
from ..errors import AnalysisError, PlanningError
from ..pages import ColumnType, Schema
from ..sql import ast
from ..sql.analyzer import ExpressionBinder, OuterColumn, Scope, split_conjuncts
from ..sql.expressions import (
    AggregateCall,
    BoolAnd,
    BoolOr,
    BoundExpr,
    Comparison,
    InputRef,
)
from ..sql.functions import AGGREGATE_FUNCTIONS
from .expr_utils import input_refs, remap_expr
from .logical import (
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)
from .optimizer.join_order import JoinEdge, order_joins
from .optimizer.stats import estimate_rows


@dataclass
class _Leaf:
    """A FROM-clause input with its global column id range."""

    plan: LogicalNode
    binding: str | None
    offset: int

    @property
    def width(self) -> int:
        return len(self.plan.schema)

    def globals(self) -> list[int]:
        return list(range(self.offset, self.offset + self.width))


@dataclass
class _SemiSpec:
    """A pending SEMI/ANTI join from EXISTS or IN (subquery)."""

    inner: LogicalNode
    outer_globals: list[int]
    inner_cols: list[int]
    anti: bool


class LogicalPlanner:
    """Plans parsed SELECT statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def plan(self, stmt: ast.SelectStatement) -> LogicalNode:
        return self._plan_query(stmt, outer_scope=None)

    # ------------------------------------------------------------------
    # FROM/WHERE planning (shared by main query and subqueries)
    # ------------------------------------------------------------------
    def _collect_leaves(
        self, relations: list[ast.RelationNode]
    ) -> tuple[list[_Leaf], list[ast.ExprNode]]:
        leaves: list[_Leaf] = []
        on_conjuncts: list[ast.ExprNode] = []
        offset = 0

        def add_leaf(plan: LogicalNode, binding: str | None) -> None:
            nonlocal offset
            leaves.append(_Leaf(plan, binding, offset))
            offset += len(plan.schema)

        def visit(rel: ast.RelationNode) -> None:
            if isinstance(rel, ast.TableRef):
                schema = self.catalog.schema(rel.name)
                add_leaf(
                    LogicalScan(rel.name.lower(), schema, tuple(range(len(schema)))),
                    rel.binding_name,
                )
            elif isinstance(rel, ast.SubqueryRef):
                subplan = self._plan_query(rel.query, outer_scope=None)
                add_leaf(subplan, rel.alias)
            elif isinstance(rel, ast.JoinRef):
                if rel.join_type == "left":
                    raise PlanningError("LEFT JOIN is not supported")
                visit(rel.left)
                visit(rel.right)
                if rel.condition is not None:
                    on_conjuncts.extend(split_conjuncts(rel.condition))
            else:  # pragma: no cover - parser produces only the above
                raise PlanningError(f"unsupported relation {type(rel).__name__}")

        for rel in relations:
            visit(rel)
        if not leaves:
            raise PlanningError("queries without FROM are not supported")
        return leaves, on_conjuncts

    def _plan_from_where(
        self,
        stmt: ast.SelectStatement,
        outer_scope: Scope | None,
    ) -> tuple[LogicalNode, list[int], Scope, list[tuple[int, BoundExpr]]]:
        """Returns ``(tree, layout, scope, correlations)``.

        ``layout`` maps output positions of ``tree`` to global column ids of
        ``scope`` (plus extension ids for scalar-subquery leaves).
        ``correlations`` are (outer_global_id, local_bound_expr) pairs for
        conjuncts referencing the enclosing query.
        """
        leaves, on_conjuncts = self._collect_leaves(stmt.relations)
        scope = Scope([(leaf.binding, leaf.plan.schema) for leaf in leaves], outer_scope)
        next_ext = scope.total_columns  # global ids for scalar-subquery leaves

        conjunct_asts: list[ast.ExprNode] = []
        if stmt.where is not None:
            conjunct_asts.extend(split_conjuncts(stmt.where))
        conjunct_asts.extend(on_conjuncts)
        conjunct_asts = _extract_common_factors(conjunct_asts)

        binder = ExpressionBinder(scope)
        pushed: dict[int, list[BoundExpr]] = {i: [] for i in range(len(leaves))}
        edges: list[JoinEdge] = []
        residuals: list[BoundExpr] = []
        semi_specs: list[_SemiSpec] = []
        correlations: list[tuple[int, BoundExpr]] = []

        def leaf_of(global_id: int) -> int:
            for i in reversed(range(len(leaves))):
                if global_id >= leaves[i].offset:
                    return i
            raise PlanningError(f"global id {global_id} out of range")

        def classify(bound: BoundExpr) -> None:
            outer_refs = [n for n in bound.walk() if isinstance(n, OuterColumn)]
            if outer_refs:
                self._record_correlation(bound, correlations)
                return
            refs = input_refs(bound)
            ref_leaves = {leaf_of(r) for r in refs}
            if len(ref_leaves) <= 1:
                target = next(iter(ref_leaves)) if ref_leaves else 0
                pushed[target].append(bound)
                return
            if (
                isinstance(bound, Comparison)
                and bound.op == "="
                and isinstance(bound.left, InputRef)
                and isinstance(bound.right, InputRef)
                and leaf_of(bound.left.index) != leaf_of(bound.right.index)
            ):
                la, lb = bound.left.index, bound.right.index
                edges.append(JoinEdge(leaf_of(la), la, leaf_of(lb), lb))
                return
            residuals.append(bound)

        for conjunct in conjunct_asts:
            if isinstance(conjunct, ast.ExistsSubquery):
                semi_specs.append(self._plan_exists(conjunct.query, scope, anti=False))
                continue
            if (
                isinstance(conjunct, ast.UnaryOp)
                and conjunct.op == "not"
                and isinstance(conjunct.operand, ast.ExistsSubquery)
            ):
                semi_specs.append(
                    self._plan_exists(conjunct.operand.query, scope, anti=True)
                )
                continue
            if isinstance(conjunct, ast.InSubquery):
                semi_specs.append(self._plan_in_subquery(conjunct, scope, binder))
                continue
            scalar = _scalar_side(conjunct)
            if scalar is not None:
                op, value_ast, sub_stmt = scalar
                leaf_plan, outer_ids, ext_offset = self._plan_scalar(
                    sub_stmt, scope, next_ext
                )
                next_ext = ext_offset + len(leaf_plan.schema)
                leaf = _Leaf(leaf_plan, None, ext_offset)
                leaves.append(leaf)
                pushed[len(leaves) - 1] = []
                value_col = ext_offset + len(leaf_plan.schema) - 1
                for i, outer_id in enumerate(outer_ids):
                    edges.append(
                        JoinEdge(leaf_of(outer_id), outer_id, len(leaves) - 1, ext_offset + i)
                    )
                bound_value = binder.bind(value_ast)
                residual = Comparison(
                    op,
                    bound_value,
                    InputRef(value_col, leaf_plan.schema.fields[-1].type, "scalar"),
                )
                if outer_ids:
                    residuals.append(residual)
                else:
                    # Uncorrelated: cross join the 1-row aggregate leaf.
                    residuals.append(residual)
                continue
            classify(binder.bind_predicate(conjunct))

        tree, layout = self._build_join_tree(leaves, pushed, edges, residuals)

        for spec in semi_specs:
            positions = [layout.index(g) for g in spec.outer_globals]
            tree = LogicalJoin(
                tree,
                spec.inner,
                JoinType.ANTI if spec.anti else JoinType.SEMI,
                positions,
                spec.inner_cols,
            )
        return tree, layout, scope, correlations

    def _record_correlation(
        self, bound: BoundExpr, correlations: list[tuple[int, BoundExpr]]
    ) -> None:
        if not (isinstance(bound, Comparison) and bound.op == "="):
            raise AnalysisError(
                "correlated predicates must be equality comparisons"
            )
        left_outer = isinstance(bound.left, OuterColumn)
        right_outer = isinstance(bound.right, OuterColumn)
        if left_outer == right_outer:
            raise AnalysisError(
                "correlated predicate must compare an outer column with a local expression"
            )
        outer = bound.left if left_outer else bound.right
        local = bound.right if left_outer else bound.left
        if outer.levels != 1:
            raise AnalysisError("correlation deeper than one level is not supported")
        if any(isinstance(n, OuterColumn) for n in local.walk()):
            raise AnalysisError("both sides of a correlated predicate reference the outer query")
        correlations.append((outer.index, local))

    # ------------------------------------------------------------------
    # Join-tree construction
    # ------------------------------------------------------------------
    def _build_join_tree(
        self,
        leaves: list[_Leaf],
        pushed: dict[int, list[BoundExpr]],
        edges: list[JoinEdge],
        residuals: list[BoundExpr],
    ) -> tuple[LogicalNode, list[int]]:
        plans: list[LogicalNode] = []
        estimates: list[float] = []
        for i, leaf in enumerate(leaves):
            plan = leaf.plan
            conjuncts = pushed.get(i, [])
            if conjuncts:
                local_map = {g: p for p, g in enumerate(leaf.globals())}
                predicate = _and_all([remap_expr(c, local_map) for c in conjuncts])
                plan = LogicalFilter(plan, predicate)
            plans.append(plan)
            estimates.append(estimate_rows(plan, self.catalog))

        start, steps = order_joins(estimates, edges)
        tree = plans[start]
        tree_est = estimates[start]
        layout = leaves[start].globals()
        pending = list(residuals)

        def apply_ready_residuals() -> None:
            nonlocal tree
            available = set(layout)
            ready = [r for r in pending if input_refs(r) <= available]
            if ready:
                mapping = {g: p for p, g in enumerate(layout)}
                tree = LogicalFilter(
                    tree, _and_all([remap_expr(r, mapping) for r in ready])
                )
                for r in ready:
                    pending.remove(r)

        apply_ready_residuals()
        for step in steps:
            leaf = leaves[step.leaf]
            leaf_plan = plans[step.leaf]
            leaf_est = estimates[step.leaf]
            leaf_globals = leaf.globals()
            tree_map = {g: p for p, g in enumerate(layout)}
            leaf_map = {g: p for p, g in enumerate(leaf_globals)}
            if not step.edges:
                # Cross join: build side is the smaller input.
                if leaf_est <= tree_est:
                    tree = LogicalJoin(tree, leaf_plan, JoinType.CROSS, [], [])
                    layout = layout + leaf_globals
                else:
                    tree = LogicalJoin(leaf_plan, tree, JoinType.CROSS, [], [])
                    layout = leaf_globals + layout
            else:
                tree_cols = []
                leaf_cols = []
                for edge in step.edges:
                    col_leaf, col_tree = edge.columns_for(step.leaf)
                    tree_cols.append(tree_map[col_tree])
                    leaf_cols.append(leaf_map[col_leaf])
                if leaf_est <= tree_est:
                    tree = LogicalJoin(
                        tree, leaf_plan, JoinType.INNER, tree_cols, leaf_cols
                    )
                    layout = layout + leaf_globals
                else:
                    tree = LogicalJoin(
                        leaf_plan, tree, JoinType.INNER, leaf_cols, tree_cols
                    )
                    layout = leaf_globals + layout
            tree_est = max(tree_est, leaf_est)
            apply_ready_residuals()

        if pending:
            raise PlanningError(
                f"unapplied residual predicates: {[str(p) for p in pending]}"
            )
        return tree, layout

    # ------------------------------------------------------------------
    # Subquery planning
    # ------------------------------------------------------------------
    def _plan_exists(
        self, sub: ast.SelectStatement, scope: Scope, anti: bool
    ) -> _SemiSpec:
        if sub.group_by or sub.order_by or sub.limit is not None:
            raise PlanningError("EXISTS subqueries must be plain FROM/WHERE blocks")
        tree, layout, _sub_scope, correlations = self._plan_from_where(sub, scope)
        if not correlations:
            raise PlanningError("uncorrelated EXISTS is not supported")
        mapping = {g: p for p, g in enumerate(layout)}
        exprs = [remap_expr(local, mapping) for _, local in correlations]
        names = [f"corr_{i}" for i in range(len(exprs))]
        projected = LogicalProject.of(tree, exprs, names)
        return _SemiSpec(
            inner=projected,
            outer_globals=[outer for outer, _ in correlations],
            inner_cols=list(range(len(exprs))),
            anti=anti,
        )

    def _plan_in_subquery(
        self, node: ast.InSubquery, scope: Scope, binder: ExpressionBinder
    ) -> _SemiSpec:
        value = binder.bind(node.value)
        if not isinstance(value, InputRef):
            raise PlanningError("IN (subquery) requires a plain column on the left")
        inner = self._plan_query(node.query, outer_scope=None)
        if len(inner.schema) != 1:
            raise PlanningError("IN subquery must produce exactly one column")
        return _SemiSpec(
            inner=inner,
            outer_globals=[value.index],
            inner_cols=[0],
            anti=node.negated,
        )

    def _plan_scalar(
        self, sub: ast.SelectStatement, scope: Scope, ext_offset: int
    ) -> tuple[LogicalNode, list[int], int]:
        """Plan a (possibly correlated) scalar subquery.

        Returns ``(plan, outer_ids, ext_offset)`` where the plan's schema is
        ``[corr_key..., value]`` and ``outer_ids`` are the outer global ids
        paired positionally with the correlation key columns.
        """
        if len(sub.items) != 1 or sub.items[0].is_star:
            raise PlanningError("scalar subquery must select exactly one expression")
        if sub.group_by or sub.order_by or sub.limit is not None or sub.having:
            raise PlanningError("scalar subqueries must be single-aggregate blocks")
        item_expr = sub.items[0].expr

        tree, layout, sub_scope, correlations = self._plan_from_where(sub, scope)
        mapping = {g: p for p, g in enumerate(layout)}
        corr_exprs = [remap_expr(local, mapping) for _, local in correlations]

        # Bind the select expression; it may be an expression over a single
        # aggregate, e.g. ``0.2 * avg(l_quantity)`` (TPC-H Q17).
        aggs: list[AggregateCall] = []
        agg_binder = ExpressionBinder(
            sub_scope, aggregates=aggs, agg_offset=len(corr_exprs),
            post_aggregation=True,
        )
        value_expr = agg_binder.bind(item_expr)
        if len(aggs) != 1:
            raise PlanningError("scalar subquery must contain exactly one aggregate")
        agg = aggs[0]

        pre_exprs = list(corr_exprs)
        pre_names = [f"corr_{i}" for i in range(len(corr_exprs))]
        if agg.arg is not None:
            pre_exprs.append(remap_expr(agg.arg, mapping))
            pre_names.append("agg_arg")
            agg = AggregateCall(
                agg.function,
                InputRef(len(corr_exprs), agg.arg.type, "agg_arg"),
                agg.result_type,
            )
        pre_project = LogicalProject.of(tree, pre_exprs, pre_names)
        agg_plan: LogicalNode = LogicalAggregate.of(
            pre_project,
            group_keys=list(range(len(corr_exprs))),
            aggregates=[agg],
            names=[f"corr_{i}" for i in range(len(corr_exprs))] + ["scalar_value"],
        )
        # Apply the post-aggregation expression (identity when the select
        # item is the bare aggregate).  ``value_expr`` references the
        # aggregation output schema by construction of the binder.
        post_exprs = [
            InputRef(i, agg_plan.schema.fields[i].type, f"corr_{i}")
            for i in range(len(corr_exprs))
        ] + [value_expr]
        agg_plan = LogicalProject.of(
            agg_plan,
            post_exprs,
            [f"corr_{i}" for i in range(len(corr_exprs))] + ["scalar_value"],
        )
        return agg_plan, [outer for outer, _ in correlations], ext_offset

    # ------------------------------------------------------------------
    # Full SELECT planning
    # ------------------------------------------------------------------
    def _plan_query(
        self, stmt: ast.SelectStatement, outer_scope: Scope | None
    ) -> LogicalNode:
        stmt = _rewrite_distinct_aggregate(stmt)
        tree, layout, scope, correlations = self._plan_from_where(stmt, outer_scope)
        if correlations:
            raise AnalysisError("correlated column used outside a subquery predicate")
        mapping = {g: p for p, g in enumerate(layout)}

        items = self._expand_items(stmt.items, scope)
        has_aggregates = bool(stmt.group_by) or any(
            _contains_aggregate(item.expr) for item in items
        ) or (stmt.having is not None and _contains_aggregate(stmt.having))

        if has_aggregates:
            plan = self._plan_aggregation(stmt, items, tree, mapping, scope)
        else:
            if stmt.having is not None:
                raise AnalysisError("HAVING requires aggregation")
            binder = ExpressionBinder(scope)
            exprs = [remap_expr(binder.bind(item.expr), mapping) for item in items]
            names = [_output_name(item, i) for i, item in enumerate(items)]
            plan = LogicalProject.of(tree, exprs, names)

        if stmt.distinct:
            plan = LogicalAggregate.of(
                plan, list(range(len(plan.schema))), [], names=plan.schema.names()
            )

        return self._plan_ordering(stmt, plan)

    def _expand_items(
        self, items: list[ast.SelectItem], scope: Scope
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if not item.is_star:
                expanded.append(item)
                continue
            for binding, schema in scope.relations:
                for field in schema:
                    expanded.append(
                        ast.SelectItem(ast.ColumnName(field.name, binding), field.name)
                    )
        return expanded

    def _plan_aggregation(
        self,
        stmt: ast.SelectStatement,
        items: list[ast.SelectItem],
        tree: LogicalNode,
        mapping: dict[int, int],
        scope: Scope,
    ) -> LogicalNode:
        plain_binder = ExpressionBinder(scope)
        group_bound = [plain_binder.bind(g) for g in stmt.group_by]
        group_map = {g: i for i, g in enumerate(stmt.group_by)}

        aggs: list[AggregateCall] = []
        post_binder = ExpressionBinder(
            scope,
            aggregates=aggs,
            agg_offset=len(group_bound),
            group_expr_map=group_map,
            post_aggregation=True,
        )
        post_exprs = [post_binder.bind(item.expr) for item in items]
        # HAVING conjuncts comparing an aggregate against an uncorrelated
        # scalar subquery (TPC-H Q11) are split out: the subquery becomes
        # an independent 1-row plan cross-joined above the aggregate, the
        # comparison a filter over that join.  Plain conjuncts stay a
        # filter directly above the aggregate.
        plain_having: list[BoundExpr] = []
        scalar_having: list[tuple[str, BoundExpr, LogicalNode]] = []
        if stmt.having is not None:
            for conjunct in split_conjuncts(stmt.having):
                scalar = _scalar_side(conjunct)
                if scalar is not None:
                    op, value_ast, sub_stmt = scalar
                    sub_plan = self._plan_query(sub_stmt, None)
                    if len(sub_plan.schema) != 1:
                        raise PlanningError(
                            "scalar subquery in HAVING must produce one column"
                        )
                    scalar_having.append(
                        (op, post_binder.bind(value_ast), sub_plan)
                    )
                else:
                    plain_having.append(post_binder.bind_predicate(conjunct))
        having_expr: BoundExpr | None = None
        if len(plain_having) == 1:
            having_expr = plain_having[0]
        elif plain_having:
            having_expr = BoolAnd(tuple(plain_having))

        # Pre-projection: group keys first, then (deduplicated) agg args.
        pre_exprs: list[BoundExpr] = [remap_expr(g, mapping) for g in group_bound]
        pre_names = [f"group_{i}" for i in range(len(group_bound))]
        final_aggs: list[AggregateCall] = []
        arg_positions: dict[BoundExpr, int] = {}
        for agg in aggs:
            if agg.arg is None:
                final_aggs.append(agg)
                continue
            remapped = remap_expr(agg.arg, mapping)
            if remapped not in arg_positions:
                arg_positions[remapped] = len(pre_exprs)
                pre_exprs.append(remapped)
                pre_names.append(f"arg_{len(pre_exprs) - 1}")
            final_aggs.append(
                AggregateCall(
                    agg.function,
                    InputRef(arg_positions[remapped], agg.arg.type, "agg_arg"),
                    agg.result_type,
                )
            )

        if not pre_exprs:
            # count(*) with no group keys: keep a carrier column so pages
            # retain their row counts.
            from ..sql.expressions import Constant
            from ..pages import ColumnType

            pre_exprs = [Constant(1, ColumnType.INT64)]
            pre_names = ["one"]
        pre_project = LogicalProject.of(tree, pre_exprs, pre_names)
        agg_names = [_group_name(g, i) for i, g in enumerate(stmt.group_by)] + [
            f"agg_{i}" for i in range(len(final_aggs))
        ]
        plan: LogicalNode = LogicalAggregate.of(
            pre_project,
            group_keys=list(range(len(group_bound))),
            aggregates=final_aggs,
            names=agg_names,
        )
        if having_expr is not None:
            plan = LogicalFilter(plan, having_expr)
        for op, value_bound, sub_plan in scalar_having:
            # Cross join the 1-row scalar result; the comparison filter
            # references it at the end of the joined schema.  The final
            # projection below only reads aggregate-output positions, so
            # the extra column is dropped there.
            scalar_col = len(plan.schema)
            scalar_type = sub_plan.schema.fields[0].type
            plan = LogicalJoin(plan, sub_plan, JoinType.CROSS, [], [])
            plan = LogicalFilter(
                plan,
                Comparison(
                    op, value_bound, InputRef(scalar_col, scalar_type, "scalar")
                ),
            )
        names = [_output_name(item, i) for i, item in enumerate(items)]
        return LogicalProject.of(plan, post_exprs, names)

    def _plan_ordering(
        self, stmt: ast.SelectStatement, plan: LogicalNode
    ) -> LogicalNode:
        if stmt.order_by:
            output_scope = Scope([(None, plan.schema)])
            binder = ExpressionBinder(output_scope)
            keys: list[tuple[int, bool]] = []
            for order in stmt.order_by:
                bound = binder.bind(order.expr)
                if not isinstance(bound, InputRef):
                    raise PlanningError(
                        "ORDER BY must reference output columns by name or alias"
                    )
                keys.append((bound.index, order.ascending))
            if stmt.limit is not None:
                return LogicalTopN(plan, stmt.limit, keys)
            return LogicalSort(plan, keys)
        if stmt.limit is not None:
            return LogicalLimit(plan, stmt.limit)
        return plan


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _and_all(exprs: list[BoundExpr]) -> BoundExpr:
    if len(exprs) == 1:
        return exprs[0]
    flat: list[BoundExpr] = []
    for e in exprs:
        if isinstance(e, BoolAnd):
            flat.extend(e.terms)
        else:
            flat.append(e)
    return BoolAnd(tuple(flat))


def _contains_aggregate(node: ast.ExprNode) -> bool:
    if isinstance(node, ast.FunctionCall) and node.name in AGGREGATE_FUNCTIONS:
        return True
    for attr in getattr(node, "__dataclass_fields__", {}):
        value = getattr(node, attr)
        if isinstance(value, ast.ExprNode) and _contains_aggregate(value):
            return True
        if isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.ExprNode) and _contains_aggregate(item):
                    return True
                if (
                    isinstance(item, tuple)
                    and any(
                        isinstance(x, ast.ExprNode) and _contains_aggregate(x)
                        for x in item
                    )
                ):
                    return True
    return False


def _output_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnName):
        return item.expr.name
    return f"_col{index}"


def _group_name(expr: ast.ExprNode, index: int) -> str:
    if isinstance(expr, ast.ColumnName):
        return expr.name
    return f"group_{index}"


def _rewrite_distinct_aggregate(stmt: ast.SelectStatement) -> ast.SelectStatement:
    """Rewrite ``count(distinct x)`` into a two-level aggregation.

    ``SELECT g, count(distinct x) FROM ... GROUP BY g`` becomes::

        SELECT g, count(_dx) FROM (
            SELECT DISTINCT g, x AS _dx FROM ...
        ) AS _distinct GROUP BY g

    Supported when the distinct aggregate is the only aggregate in the
    select list (TPC-H Q16 shape); mixing it with other aggregates would
    need per-aggregate pipelines and is reported as unsupported.
    """
    def walk_ast(node):
        yield node
        for attr in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, attr)
            if isinstance(value, ast.ExprNode):
                yield from walk_ast(value)
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, ast.ExprNode):
                        yield from walk_ast(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, ast.ExprNode):
                                yield from walk_ast(sub)

    calls = [
        n
        for item in stmt.items
        for n in walk_ast(item.expr)
        if isinstance(n, ast.FunctionCall) and n.name in AGGREGATE_FUNCTIONS
    ]
    distinct_calls = {c for c in calls if c.distinct}
    if not distinct_calls:
        return stmt
    plain_calls = {c for c in calls if not c.distinct}
    if len(distinct_calls) > 1 or plain_calls:
        raise PlanningError(
            "DISTINCT aggregates are only supported as the sole aggregate"
        )
    call = next(iter(distinct_calls))
    if call.name != "count" or call.is_star or len(call.args) != 1:
        raise PlanningError("only count(DISTINCT <column expression>) is supported")
    if stmt.having is not None:
        raise PlanningError("HAVING with count(DISTINCT ...) is not supported")

    # Inner query: SELECT DISTINCT <group exprs...>, <arg> FROM/WHERE.
    inner_items: list[ast.SelectItem] = []
    outer_groups: list[ast.ExprNode] = []
    for i, group in enumerate(stmt.group_by):
        alias = group.name if isinstance(group, ast.ColumnName) else f"_g{i}"
        inner_items.append(ast.SelectItem(group, alias))
        outer_groups.append(ast.ColumnName(alias))
    inner_items.append(ast.SelectItem(call.args[0], "_dx"))
    inner = ast.SelectStatement(
        items=inner_items,
        relations=stmt.relations,
        where=stmt.where,
        distinct=True,
    )

    # Outer query mirrors the original, with the distinct call replaced by
    # a plain count over the deduplicated rows.
    alias_by_group = {g: o for g, o in zip(stmt.group_by, outer_groups)}

    def remap(node: ast.ExprNode) -> ast.ExprNode:
        if node in alias_by_group:
            return alias_by_group[node]
        if node == call:
            return ast.FunctionCall("count", (ast.ColumnName("_dx"),))
        return _ast_rebuild(node, remap)

    outer_items = [
        ast.SelectItem(remap(item.expr), item.alias, item.is_star)
        for item in stmt.items
    ]
    outer_order = [
        ast.OrderItem(remap(o.expr), o.ascending) for o in stmt.order_by
    ]
    return ast.SelectStatement(
        items=outer_items,
        relations=[ast.SubqueryRef(inner, "_distinct")],
        group_by=outer_groups,
        order_by=outer_order,
        limit=stmt.limit,
    )


def _ast_rebuild(node: ast.ExprNode, fn) -> ast.ExprNode:
    """Rebuild an AST expression with ``fn`` applied to child expressions."""
    import dataclasses

    if not dataclasses.is_dataclass(node):
        return node
    changes = {}
    for field_info in dataclasses.fields(node):
        value = getattr(node, field_info.name)
        if isinstance(value, ast.ExprNode):
            new_value = fn(value)
        elif isinstance(value, tuple) and value and isinstance(value[0], ast.ExprNode):
            new_value = tuple(fn(v) for v in value)
        elif (
            isinstance(value, tuple)
            and value
            and isinstance(value[0], tuple)
        ):  # CASE whens
            new_value = tuple(tuple(fn(v) for v in pair) for pair in value)
        else:
            continue
        if new_value != value:
            changes[field_info.name] = new_value
    return dataclasses.replace(node, **changes) if changes else node


def _scalar_side(
    conjunct: ast.ExprNode,
) -> tuple[str, ast.ExprNode, ast.SelectStatement] | None:
    """Detect ``expr op (SELECT ...)`` conjuncts; normalise subquery right."""
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    if conjunct.op not in ("=", "<>", "<", "<=", ">", ">="):
        return None
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if isinstance(conjunct.right, ast.ScalarSubquery):
        return conjunct.op, conjunct.left, conjunct.right.query
    if isinstance(conjunct.left, ast.ScalarSubquery):
        return flip[conjunct.op], conjunct.right, conjunct.left.query
    return None


def _extract_common_factors(conjuncts: list[ast.ExprNode]) -> list[ast.ExprNode]:
    """Pull conjuncts common to every OR branch up to the top level.

    Q19's predicate is ``(p=l AND ...) OR (p=l AND ...) OR (p=l AND ...)``;
    extracting the shared ``p_partkey = l_partkey`` exposes the join edge
    and avoids planning a cross product.
    """
    out: list[ast.ExprNode] = []
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "or"):
            out.append(conjunct)
            continue
        branches = _split_disjuncts(conjunct)
        branch_sets = [split_conjuncts(b) for b in branches]
        common = [c for c in branch_sets[0] if all(c in bs for bs in branch_sets[1:])]
        if not common:
            out.append(conjunct)
            continue
        out.extend(common)
        rest_branches = []
        for bs in branch_sets:
            rest = [c for c in bs if c not in common]
            rest_branches.append(_and_join(rest) if rest else ast.BooleanLiteral(True))
        out.append(_or_join(rest_branches))
    return out


def _split_disjuncts(node: ast.ExprNode) -> list[ast.ExprNode]:
    if isinstance(node, ast.BinaryOp) and node.op == "or":
        return _split_disjuncts(node.left) + _split_disjuncts(node.right)
    return [node]


def _and_join(nodes: list[ast.ExprNode]) -> ast.ExprNode:
    expr = nodes[0]
    for n in nodes[1:]:
        expr = ast.BinaryOp("and", expr, n)
    return expr


def _or_join(nodes: list[ast.ExprNode]) -> ast.ExprNode:
    expr = nodes[0]
    for n in nodes[1:]:
        expr = ast.BinaryOp("or", expr, n)
    return expr
