"""Logical plan nodes (relational algebra over bound expressions)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..pages import ColumnType, Field, Schema
from ..sql.expressions import AggregateCall, BoundExpr


class JoinType(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"    # EXISTS
    ANTI = "anti"    # NOT EXISTS
    CROSS = "cross"


class LogicalNode:
    """Base class; every node exposes an output :class:`Schema`."""

    schema: Schema

    def children(self) -> list["LogicalNode"]:
        raise NotImplementedError

    def with_children(self, children: list["LogicalNode"]) -> "LogicalNode":
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__.removeprefix("Logical")

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.name


@dataclass
class LogicalScan(LogicalNode):
    table: str
    schema: Schema
    #: Positions of the selected columns within the base table schema
    #: (projection pruning narrows this).
    column_indexes: tuple[int, ...]

    def children(self):
        return []

    def with_children(self, children):
        assert not children
        return self

    def describe(self) -> str:
        return f"Scan[{self.table}]({', '.join(self.schema.names())})"


@dataclass
class LogicalFilter(LogicalNode):
    child: LogicalNode
    predicate: BoundExpr

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def with_children(self, children):
        return LogicalFilter(children[0], self.predicate)

    def describe(self) -> str:
        return f"Filter[{self.predicate}]"


@dataclass
class LogicalProject(LogicalNode):
    child: LogicalNode
    exprs: list[BoundExpr]
    schema: Schema

    @classmethod
    def of(cls, child: LogicalNode, exprs: list[BoundExpr], names: list[str]) -> "LogicalProject":
        schema = Schema(Field(n, e.type) for n, e in zip(names, exprs))
        return cls(child, list(exprs), schema)

    def children(self):
        return [self.child]

    def with_children(self, children):
        return LogicalProject(children[0], self.exprs, self.schema)

    def describe(self) -> str:
        cols = ", ".join(f"{n}={e}" for n, e in zip(self.schema.names(), self.exprs))
        return f"Project[{cols}]"


@dataclass
class LogicalJoin(LogicalNode):
    """Hash join: ``left`` is the probe side, ``right`` the build side."""

    left: LogicalNode
    right: LogicalNode
    join_type: JoinType
    left_keys: list[int]
    right_keys: list[int]
    residual: BoundExpr | None = None

    @property
    def schema(self) -> Schema:
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            return self.left.schema
        return self.left.schema.concat(self.right.schema)

    def children(self):
        return [self.left, self.right]

    def with_children(self, children):
        return LogicalJoin(
            children[0], children[1], self.join_type,
            self.left_keys, self.right_keys, self.residual,
        )

    def describe(self) -> str:
        keys = ", ".join(
            f"${l}=${r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        extra = f" residual={self.residual}" if self.residual is not None else ""
        return f"Join[{self.join_type.value} on {keys or 'TRUE'}{extra}]"


@dataclass
class LogicalAggregate(LogicalNode):
    """Hash aggregation; group keys are input column positions."""

    child: LogicalNode
    group_keys: list[int]
    aggregates: list[AggregateCall]
    schema: Schema

    @classmethod
    def of(
        cls,
        child: LogicalNode,
        group_keys: list[int],
        aggregates: list[AggregateCall],
        names: list[str] | None = None,
    ) -> "LogicalAggregate":
        fields = []
        child_schema = child.schema
        for i, key in enumerate(group_keys):
            base = child_schema.fields[key]
            name = names[i] if names else base.name
            fields.append(Field(name, base.type))
        for j, agg in enumerate(aggregates):
            name = (
                names[len(group_keys) + j]
                if names
                else f"{agg.function}_{len(group_keys) + j}"
            )
            fields.append(Field(name, agg.result_type))
        return cls(child, list(group_keys), list(aggregates), Schema(fields))

    def children(self):
        return [self.child]

    def with_children(self, children):
        return LogicalAggregate(children[0], self.group_keys, self.aggregates, self.schema)

    def describe(self) -> str:
        keys = ", ".join(f"${k}" for k in self.group_keys)
        aggs = ", ".join(map(str, self.aggregates))
        return f"Aggregate[keys=({keys}) aggs=({aggs})]"


@dataclass
class LogicalSort(LogicalNode):
    child: LogicalNode
    #: (column index, ascending) pairs.
    sort_keys: list[tuple[int, bool]]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def with_children(self, children):
        return LogicalSort(children[0], self.sort_keys)

    def describe(self) -> str:
        keys = ", ".join(f"${i}{'' if asc else ' desc'}" for i, asc in self.sort_keys)
        return f"Sort[{keys}]"


@dataclass
class LogicalTopN(LogicalNode):
    child: LogicalNode
    count: int
    sort_keys: list[tuple[int, bool]]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def with_children(self, children):
        return LogicalTopN(children[0], self.count, self.sort_keys)

    def describe(self) -> str:
        keys = ", ".join(f"${i}{'' if asc else ' desc'}" for i, asc in self.sort_keys)
        return f"TopN[{self.count} by {keys}]"


@dataclass
class LogicalLimit(LogicalNode):
    child: LogicalNode
    count: int

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def with_children(self, children):
        return LogicalLimit(children[0], self.count)

    def describe(self) -> str:
        return f"Limit[{self.count}]"


def walk(node: LogicalNode):
    """Pre-order traversal of a logical plan."""
    yield node
    for child in node.children():
        yield from walk(child)
