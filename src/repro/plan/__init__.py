"""Query planning: logical plans, optimizer, physical plans, fragments."""

from .logical import (
    JoinType,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)
from .logical_planner import LogicalPlanner
from .optimizer import prune_columns

__all__ = [
    "JoinType",
    "LogicalAggregate",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalNode",
    "LogicalPlanner",
    "LogicalProject",
    "LogicalScan",
    "LogicalSort",
    "LogicalTopN",
    "prune_columns",
]
