"""Physical plan: fragment (stage) tree of operator descriptors.

A :class:`PhysicalPlan` is a set of :class:`PlanFragment` objects — the
paper's *stages* (Figure 4).  Fragment roots are task-output nodes (or the
final coordinator-output node for stage 0); fragment leaves are table
scans or remote sources reading a child fragment through the exchange.

Fragments are descriptors: tasks instantiate operators from them at
schedule time, and the *same* descriptor is reused when the dynamic
scheduler spawns additional tasks mid-query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..buffers import OutputMode
from ..pages import ColumnType, Field, Schema
from ..sql.expressions import AggregateCall, BoundExpr
from ..sql.functions import partial_fields
from .logical import JoinType


class PNode:
    """Base physical node; ``schema`` is the node's output schema."""

    schema: Schema

    def children(self) -> list["PNode"]:
        return []

    @property
    def name(self) -> str:
        return type(self).__name__.removeprefix("P").removesuffix("Node")

    def describe(self) -> str:
        return self.name

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass
class PScanNode(PNode):
    table: str
    column_indexes: tuple[int, ...]
    schema: Schema

    def describe(self) -> str:
        return f"TableScan[{self.table}]({', '.join(self.schema.names())})"


@dataclass
class PRemoteSourceNode(PNode):
    """Reads a child fragment's output through an exchange operator."""

    child_fragment: int
    schema: Schema

    def describe(self) -> str:
        return f"RemoteSource[stage {self.child_fragment}]"


@dataclass
class PLocalExchangeNode(PNode):
    child: PNode

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return "LocalExchange"


@dataclass
class PFilterNode(PNode):
    child: PNode
    predicate: BoundExpr

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"Filter[{self.predicate}]"


@dataclass
class PProjectNode(PNode):
    child: PNode
    exprs: list[BoundExpr]
    schema: Schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"Project[{', '.join(self.schema.names())}]"


@dataclass
class PPartialAggNode(PNode):
    """Partial (pre-)aggregation: stateless by the paper's classification —
    its state can be destroyed (flushed downstream) and reconstructed, so
    the DOP of its stage stays tunable (Section 4.1)."""

    child: PNode
    group_keys: list[int]
    aggregates: list[AggregateCall]
    schema: Schema

    def describe(self) -> str:
        return f"PartialAggregate[{len(self.group_keys)} keys, {len(self.aggregates)} aggs]"

    def children(self):
        return [self.child]


@dataclass
class PFinalAggNode(PNode):
    """Final aggregation: stateful; its stage/task parallelism is fixed at 1."""

    child: PNode
    group_keys: list[int]
    aggregates: list[AggregateCall]
    schema: Schema

    def describe(self) -> str:
        return f"FinalAggregate[{len(self.group_keys)} keys, {len(self.aggregates)} aggs]"

    def children(self):
        return [self.child]


@dataclass
class PJoinNode(PNode):
    """Hash join: probe child feeds the driver pipeline, build child feeds
    the build pipelines through a local exchange."""

    probe: PNode
    build: PNode
    join_type: JoinType
    probe_keys: list[int]
    build_keys: list[int]
    residual: BoundExpr | None
    schema: Schema
    #: "broadcast" or "partitioned" — decides the runtime tuning strategy
    #: (hash-table rebuild vs DOP switching, paper Sections 4.4/4.5).
    distribution: str = "broadcast"

    def children(self):
        return [self.probe, self.build]

    def describe(self) -> str:
        keys = ", ".join(f"p{k}=b{j}" for k, j in zip(self.probe_keys, self.build_keys))
        return f"HashJoin[{self.join_type.value}, {self.distribution}, {keys or 'TRUE'}]"


@dataclass
class PTopNNode(PNode):
    child: PNode
    count: int
    sort_keys: list[tuple[int, bool]]
    partial: bool = False

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"TopN[{'partial ' if self.partial else ''}{self.count}]"


@dataclass
class PSortNode(PNode):
    child: PNode
    sort_keys: list[tuple[int, bool]]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return "Sort"


@dataclass
class PLimitNode(PNode):
    child: PNode
    count: int
    partial: bool = False

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return f"Limit[{'partial ' if self.partial else ''}{self.count}]"


@dataclass
class PTaskOutputNode(PNode):
    """Fragment root: delivers pages to the task output buffer."""

    child: PNode

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return "TaskOutput"


@dataclass
class POutputNode(PNode):
    """Stage-0 root: delivers result pages to the coordinator."""

    child: PNode

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self):
        return [self.child]

    def describe(self) -> str:
        return "Output"


# ---------------------------------------------------------------------------
# Fragments
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OutputSpec:
    """How a fragment's output is distributed to its parent stage."""

    mode: OutputMode
    keys: tuple[int, ...] = ()
    #: Keep produced pages in the page cache (intermediate data caching,
    #: Section 4.5 — enables hash-table rebuild without re-running the
    #: upstream computation).
    cache: bool = False


@dataclass
class PlanFragment:
    """One stage of the distributed plan."""

    id: int
    root: PNode
    output: OutputSpec
    children: list[int] = field(default_factory=list)
    source_table: str | None = None
    #: Fragment whose output feeds this fragment's driver (probe) pipeline.
    probe_child: int | None = None
    #: Fragments feeding hash-join build sides within this fragment.
    build_children: list[int] = field(default_factory=list)
    #: True for stages whose parallelism is pinned to one task (final
    #: aggregation / gather stages, paper Section 4.1).
    dop_fixed: bool = False
    #: True for pure shuffle stages (exchange -> task output, Section 4.6).
    is_shuffle_stage: bool = False

    @property
    def is_source(self) -> bool:
        return self.source_table is not None

    @property
    def schema(self) -> Schema:
        return self.root.schema

    def describe(self) -> str:
        flags = []
        if self.is_source:
            flags.append(f"scan={self.source_table}")
        if self.dop_fixed:
            flags.append("dop=1 fixed")
        if self.is_shuffle_stage:
            flags.append("shuffle-stage")
        head = f"Stage {self.id} [{self.output.mode.value}{' ' + ' '.join(flags) if flags else ''}]"
        return head + "\n" + self.root.pretty(1)


@dataclass
class PhysicalPlan:
    """The full distributed plan: fragment 0 is the output stage."""

    fragments: dict[int, PlanFragment]

    @property
    def root(self) -> PlanFragment:
        return self.fragments[0]

    def fragment(self, fragment_id: int) -> PlanFragment:
        return self.fragments[fragment_id]

    def parents_of(self, fragment_id: int) -> list[int]:
        return [
            f.id for f in self.fragments.values() if fragment_id in f.children
        ]

    def bottom_up(self) -> list[PlanFragment]:
        """Fragments ordered children-before-parents (scheduling order)."""
        order: list[PlanFragment] = []
        visited: set[int] = set()

        def visit(fid: int) -> None:
            if fid in visited:
                return
            visited.add(fid)
            for child in self.fragments[fid].children:
                visit(child)
            order.append(self.fragments[fid])

        visit(0)
        return order

    def describe(self) -> str:
        return "\n".join(
            self.fragments[fid].describe() for fid in sorted(self.fragments)
        )


def partial_agg_schema(
    input_schema: Schema, group_keys: list[int], aggregates: list[AggregateCall]
) -> Schema:
    """Schema of partial-aggregation output: group keys then state columns."""
    fields: list[Field] = [input_schema.fields[k] for k in group_keys]
    for i, agg in enumerate(aggregates):
        arg_type = agg.arg.type if agg.arg is not None else None
        for j, state_type in enumerate(partial_fields(agg.function, arg_type)):
            fields.append(Field(f"{agg.function}_{i}_{j}", state_type))
    return Schema(fields)
