"""Generic transformations over bound expression trees.

Bound expressions are frozen dataclasses, so rewrites rebuild nodes
bottom-up.  These helpers are shared by the logical planner (column
remapping after join reordering) and the optimizer rules (projection
pruning).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..errors import PlanningError
from ..sql.expressions import BoundExpr, InputRef


def transform_expr(expr: BoundExpr, fn: Callable[[BoundExpr], BoundExpr]) -> BoundExpr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been transformed and
    returns a (possibly new) node.
    """
    if not dataclasses.is_dataclass(expr):
        raise TypeError(f"not a bound expression: {expr!r}")

    changes = {}
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        new_value = _transform_value(value, fn)
        if new_value is not value:
            changes[field.name] = new_value
    if changes:
        expr = dataclasses.replace(expr, **changes)
    return fn(expr)


def _transform_value(value, fn):
    if isinstance(value, BoundExpr):
        return transform_expr(value, fn)
    if isinstance(value, tuple):
        new_items = tuple(_transform_value(v, fn) for v in value)
        if any(a is not b for a, b in zip(new_items, value)):
            return new_items
        return value
    return value


def remap_expr(expr: BoundExpr, mapping: dict[int, int]) -> BoundExpr:
    """Replace every ``InputRef`` index through ``mapping``.

    Raises :class:`PlanningError` if the expression references a column the
    mapping does not cover — that always indicates a planner bug.
    """

    def rewrite(node: BoundExpr) -> BoundExpr:
        if isinstance(node, InputRef):
            if node.index not in mapping:
                raise PlanningError(
                    f"expression references unmapped column ${node.index} ({node.name})"
                )
            return InputRef(mapping[node.index], node.type, node.name)
        return node

    return transform_expr(expr, rewrite)


def input_refs(expr: BoundExpr) -> set[int]:
    """All input column positions referenced by ``expr``."""
    return {node.index for node in expr.walk() if isinstance(node, InputRef)}
