"""Optimizer rules: statistics, join ordering, projection pruning."""

from .join_order import JoinEdge, JoinStep, order_joins
from .rules import prune_columns
from .stats import estimate_rows, predicate_selectivity

__all__ = [
    "JoinEdge",
    "JoinStep",
    "estimate_rows",
    "order_joins",
    "predicate_selectivity",
    "prune_columns",
]
