"""Projection pruning: narrow every subplan to the columns actually used.

Scans otherwise produce all 16 lineitem columns; pruning them early is the
single most important data-volume optimization in the engine (it shrinks
pages, exchange traffic, and operator costs).
"""

from __future__ import annotations

from ...errors import PlanningError
from ...pages import Schema
from ...sql.expressions import AggregateCall, InputRef
from ..expr_utils import input_refs, remap_expr
from ..logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)


def prune_columns(root: LogicalNode) -> LogicalNode:
    """Return an equivalent plan whose nodes only carry needed columns."""
    plan, mapping = _prune(root, set(range(len(root.schema))))
    # The root keeps all its columns, so the mapping must be the identity.
    if any(k != v for k, v in mapping.items()):
        raise PlanningError("root projection was unexpectedly reordered")
    return plan


def _prune(node: LogicalNode, required: set[int]) -> tuple[LogicalNode, dict[int, int]]:
    """Prune ``node`` to ``required`` output positions.

    Returns ``(new_node, mapping)`` where ``mapping`` sends old output
    positions (for the required subset) to new positions.
    """
    required = set(required)
    if not required:
        required = {0} if len(node.schema) else set()

    if isinstance(node, LogicalScan):
        keep = sorted(required)
        mapping = {old: new for new, old in enumerate(keep)}
        schema = node.schema.select(keep)
        indexes = tuple(node.column_indexes[i] for i in keep)
        return LogicalScan(node.table, schema, indexes), mapping

    if isinstance(node, LogicalFilter):
        child_required = required | input_refs(node.predicate)
        child, child_map = _prune(node.child, child_required)
        predicate = remap_expr(node.predicate, child_map)
        mapping = {old: child_map[old] for old in required}
        return LogicalFilter(child, predicate), mapping

    if isinstance(node, LogicalProject):
        keep = sorted(required)
        child_required: set[int] = set()
        for i in keep:
            child_required |= input_refs(node.exprs[i])
        child, child_map = _prune(node.child, child_required)
        exprs = [remap_expr(node.exprs[i], child_map) for i in keep]
        schema = node.schema.select(keep)
        mapping = {old: new for new, old in enumerate(keep)}
        return LogicalProject(child, exprs, schema), mapping

    if isinstance(node, LogicalJoin):
        left_width = len(node.left.schema)
        semi = node.join_type.value in ("semi", "anti")
        left_required = {i for i in required if i < left_width}
        right_required = (
            set() if semi else {i - left_width for i in required if i >= left_width}
        )
        left_required |= set(node.left_keys)
        right_required |= set(node.right_keys)
        if node.residual is not None:
            for ref in input_refs(node.residual):
                if ref < left_width:
                    left_required.add(ref)
                else:
                    right_required.add(ref - left_width)
        left, left_map = _prune(node.left, left_required)
        right, right_map = _prune(node.right, right_required)
        new_left_width = len(left.schema)
        combined_map = {old: new for old, new in left_map.items()}
        for old, new in right_map.items():
            combined_map[old + left_width] = new + new_left_width
        residual = (
            remap_expr(node.residual, combined_map)
            if node.residual is not None
            else None
        )
        new_node = LogicalJoin(
            left,
            right,
            node.join_type,
            [left_map[k] for k in node.left_keys],
            [right_map[k] for k in node.right_keys],
            residual,
        )
        if semi:
            mapping = {old: left_map[old] for old in required}
        else:
            mapping = {old: combined_map[old] for old in required}
        return new_node, mapping

    if isinstance(node, LogicalAggregate):
        # Keep all group keys (partitioning depends on them); prune unused
        # aggregates.
        n_keys = len(node.group_keys)
        keep_aggs = sorted(
            {i - n_keys for i in required if i >= n_keys} | (set() if node.aggregates else set())
        )
        if not node.aggregates:
            keep_aggs = []
        child_required = set(node.group_keys)
        for i in keep_aggs:
            arg = node.aggregates[i].arg
            if arg is not None:
                child_required |= input_refs(arg)
        child, child_map = _prune(node.child, child_required)
        aggregates = []
        for i in keep_aggs:
            agg = node.aggregates[i]
            arg = remap_expr(agg.arg, child_map) if agg.arg is not None else None
            aggregates.append(AggregateCall(agg.function, arg, agg.result_type))
        group_keys = [child_map[k] for k in node.group_keys]
        keep_fields = list(range(n_keys)) + [n_keys + i for i in keep_aggs]
        schema = Schema(node.schema.fields[i] for i in keep_fields)
        mapping: dict[int, int] = {i: i for i in range(n_keys)}
        for new_i, old_agg in enumerate(keep_aggs):
            mapping[n_keys + old_agg] = n_keys + new_i
        mapping = {old: mapping[old] for old in required if old in mapping}
        for key in range(n_keys):
            mapping.setdefault(key, key)
        return (
            LogicalAggregate(child, group_keys, aggregates, schema),
            {old: mapping[old] for old in required},
        )

    if isinstance(node, (LogicalSort, LogicalTopN)):
        keys = {k for k, _ in node.sort_keys}
        child, child_map = _prune(node.child, required | keys)
        sort_keys = [(child_map[k], asc) for k, asc in node.sort_keys]
        mapping = {old: child_map[old] for old in required}
        if isinstance(node, LogicalSort):
            return LogicalSort(child, sort_keys), mapping
        return LogicalTopN(child, node.count, sort_keys), mapping

    if isinstance(node, LogicalLimit):
        child, child_map = _prune(node.child, required)
        return LogicalLimit(child, node.count), {
            old: child_map[old] for old in required
        }

    raise PlanningError(f"no pruning rule for {type(node).__name__}")
