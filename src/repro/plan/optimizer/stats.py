"""Heuristic cardinality estimation for join ordering and join-mode choice.

Accordion's optimizer only needs rough relative sizes: which side of a
join is smaller (build-side selection, broadcast-vs-partitioned choice)
and which join order avoids blowing up intermediates.  The estimates here
are the classic textbook selectivity constants applied to bound predicate
trees.
"""

from __future__ import annotations

from ...data import Catalog
from ...sql.expressions import (
    BoolAnd,
    BoolNot,
    BoolOr,
    BoundExpr,
    Comparison,
    Constant,
    InSet,
    IsNull,
    LikeMatch,
)
from ..logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
)

EQUALITY_SELECTIVITY = 0.05
RANGE_SELECTIVITY = 0.3
IN_SELECTIVITY = 0.2
LIKE_SELECTIVITY = 0.25
DEFAULT_SELECTIVITY = 0.5
AGGREGATE_REDUCTION = 0.1


def predicate_selectivity(predicate: BoundExpr) -> float:
    """Estimated fraction of rows satisfying ``predicate``."""
    if isinstance(predicate, BoolAnd):
        result = 1.0
        for term in predicate.terms:
            result *= predicate_selectivity(term)
        return result
    if isinstance(predicate, BoolOr):
        total = 0.0
        for term in predicate.terms:
            total += predicate_selectivity(term)
        return min(1.0, total)
    if isinstance(predicate, BoolNot):
        return max(0.0, 1.0 - predicate_selectivity(predicate.operand))
    if isinstance(predicate, Comparison):
        if predicate.op == "=":
            return EQUALITY_SELECTIVITY
        if predicate.op == "<>":
            return 1.0 - EQUALITY_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(predicate, InSet):
        return min(1.0, IN_SELECTIVITY * max(1, len(predicate.options)) / 4)
    if isinstance(predicate, LikeMatch):
        return LIKE_SELECTIVITY
    if isinstance(predicate, IsNull):
        return 0.0 if not predicate.negated else 1.0
    if isinstance(predicate, Constant):
        return 1.0 if predicate.value else 0.0
    return DEFAULT_SELECTIVITY


def estimate_rows(node: LogicalNode, catalog: Catalog) -> float:
    """Estimated output row count of a logical subplan."""
    if isinstance(node, LogicalScan):
        return float(max(1, catalog.table(node.table).num_rows))
    if isinstance(node, LogicalFilter):
        return estimate_rows(node.child, catalog) * predicate_selectivity(node.predicate)
    if isinstance(node, LogicalProject):
        return estimate_rows(node.child, catalog)
    if isinstance(node, LogicalAggregate):
        base = estimate_rows(node.child, catalog)
        if not node.group_keys:
            return 1.0
        return max(1.0, base * AGGREGATE_REDUCTION)
    if isinstance(node, LogicalJoin):
        left = estimate_rows(node.left, catalog)
        right = estimate_rows(node.right, catalog)
        if not node.left_keys:
            return left * right  # cross join
        # FK-join approximation: result is about the size of the bigger input.
        return max(left, right)
    if isinstance(node, (LogicalSort,)):
        return estimate_rows(node.child, catalog)
    if isinstance(node, LogicalTopN):
        return float(min(node.count, estimate_rows(node.child, catalog)))
    if isinstance(node, LogicalLimit):
        return float(min(node.count, estimate_rows(node.child, catalog)))
    raise TypeError(f"no estimator for {type(node).__name__}")
