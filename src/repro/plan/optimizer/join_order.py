"""Greedy join ordering over the query's join graph.

The planner hands us the FROM-clause leaves (with estimated cardinalities)
and the equi-join edges extracted from WHERE/ON conjuncts.  We produce a
left-deep join sequence that (a) starts from the smallest connected leaf,
(b) always attaches the smallest connected remaining leaf next, and
(c) falls back to a cross join only when the graph is disconnected.

The builder that consumes the sequence puts the smaller input on the hash
join's build side, which is what yields the paper's plan shapes (e.g. Q3:
lineitem probes the (orders x customer) build side, Figure 21).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join predicate between two leaves (global column ids)."""

    leaf_a: int
    col_a: int
    leaf_b: int
    col_b: int

    def involves(self, leaf: int) -> bool:
        return leaf in (self.leaf_a, self.leaf_b)

    def other(self, leaf: int) -> int:
        return self.leaf_b if leaf == self.leaf_a else self.leaf_a

    def columns_for(self, leaf: int) -> tuple[int, int]:
        """(column on ``leaf``, column on the other leaf)."""
        if leaf == self.leaf_a:
            return self.col_a, self.col_b
        return self.col_b, self.col_a


@dataclass(frozen=True)
class JoinStep:
    """Attach ``leaf`` to the current tree using ``edges`` (empty = cross)."""

    leaf: int
    edges: tuple[JoinEdge, ...]


def order_joins(estimates: list[float], edges: list[JoinEdge]) -> tuple[int, list[JoinStep]]:
    """Return ``(first_leaf, steps)`` covering every leaf exactly once."""
    n = len(estimates)
    if n == 0:
        raise ValueError("no relations to join")
    if n == 1:
        return 0, []

    remaining = set(range(n))
    connected_leaves = {e.leaf_a for e in edges} | {e.leaf_b for e in edges}

    def smallest(candidates: set[int]) -> int:
        return min(candidates, key=lambda i: (estimates[i], i))

    # Start from the smallest leaf that participates in some join edge so
    # the first join is never a cross product if one can be avoided.
    if connected_leaves:
        start = smallest(connected_leaves & remaining)
    else:
        start = smallest(remaining)
    joined = {start}
    remaining.discard(start)

    steps: list[JoinStep] = []
    while remaining:
        frontier = {
            edge.other(leaf)
            for edge in edges
            for leaf in joined
            if edge.involves(leaf) and edge.other(leaf) in remaining
        }
        if frontier:
            nxt = smallest(frontier)
            used = tuple(
                edge
                for edge in edges
                if edge.involves(nxt) and edge.other(nxt) in joined
            )
        else:
            nxt = smallest(remaining)
            used = ()
        steps.append(JoinStep(nxt, used))
        joined.add(nxt)
        remaining.discard(nxt)
    return start, steps
