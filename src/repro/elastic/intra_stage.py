"""Intra-stage runtime DOP tuning (paper Section 4.4, Figure 14).

Increasing a stage's DOP: (1) generate a new task, (2) hand its address to
the parent-stage tasks, (3) set the child-stage task addresses on the new
task.  Decreasing: send end signals to the task output buffers of the
child stages; end pages relay through the victim task, the parents retire
its address, and the task is destroyed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..buffers import OutputMode, ShuffleOutputBuffer
from ..cluster.scheduler import RPC_CREATE_TASK, RPC_UPDATE_LINK
from ..cluster.stage import StageExecution
from ..errors import TuningRejected
from ..exec.splits import RemoteSplit
from ..exec.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution
    from .dynamic_scheduler import DynamicScheduler


def add_tasks(
    ds: "DynamicScheduler",
    query: "QueryExecution",
    stage: StageExecution,
    count: int,
) -> list[Task]:
    """Spawn ``count`` new tasks for a stage whose inputs are not
    hash-partitioned (broadcast-join stages, scan stages, shuffle stages)."""
    for child_id in stage.fragment.children:
        child = query.stages[child_id]
        if (
            child.fragment.output.mode is OutputMode.HASH
            and not stage.is_partitioned_join
        ):
            raise TuningRejected(
                f"stage {stage.id} reads hash-partitioned input; use DOP switching",
                reason="needs-switch",
            )

    task_dop = max(1, stage.task_dop)
    requests = 0
    new_tasks: list[Task] = []
    for _ in range(count):
        task = ds.scheduler.create_task(query, stage)
        new_tasks.append(task)
        requests += RPC_CREATE_TASK
        requests += _wire_new_task(ds, query, stage, task)

    def start() -> None:
        for task in new_tasks:
            task.start(task_dop)

    ds.rpc.after_requests(requests, start)
    ds.watch_builds(query, stage, new_tasks)
    return new_tasks


def _wire_new_task(
    ds: "DynamicScheduler",
    query: "QueryExecution",
    stage: StageExecution,
    task: Task,
) -> int:
    """Steps 2 and 3 of Figure 14: link the new task to parents/children."""
    requests = 0
    seq = task.task_id.seq

    # Step 2: give the new task's address to the parent-stage tasks.
    for parent_id in query.plan.parents_of(stage.id):
        parent = query.stages[parent_id]
        if isinstance(task.output_buffer, ShuffleOutputBuffer):
            # Producing side of a partitioned exchange: the new task
            # partitions across the existing consumer group.
            task.output_buffer.set_group(
                [t.task_id.seq for t in parent.active_group]
            )
            requests += RPC_UPDATE_LINK
        for parent_task in parent.active_group:
            task.output_buffer.add_consumer(parent_task.task_id.seq)
            parent_task.add_upstream(stage.id, RemoteSplit(task, parent_task.task_id.seq))
            requests += RPC_UPDATE_LINK

    # Step 3: set the child-stage task addresses on the new task.
    for child_id in stage.fragment.children:
        child = query.stages[child_id]
        for upstream in child.tasks:  # including finished ones: their
            # broadcast caches replay the full build side to the new task.
            upstream.output_buffer.add_consumer(seq)
            task.add_upstream(child_id, RemoteSplit(upstream, seq))
            requests += RPC_UPDATE_LINK
    return requests


def remove_tasks(
    ds: "DynamicScheduler",
    query: "QueryExecution",
    stage: StageExecution,
    count: int,
) -> list[Task]:
    """Shut down ``count`` tasks via end signals (keeps at least one)."""
    active = stage.active_group
    victims = active[max(1, len(active) - count) :] if len(active) > 1 else []
    victims = victims[:count]
    requests = 0
    for task in victims:
        if stage.fragment.is_source:
            # Scan tasks: end signals go to each driver; unread splits are
            # returned to the split feed for the survivors.
            for runtime in task.pipelines:
                for driver in runtime.drivers:
                    driver.request_end()
            requests += RPC_UPDATE_LINK
        else:
            for child_id in stage.fragment.children:
                child = query.stages[child_id]
                for upstream in child.tasks:
                    upstream.output_buffer.end_consumer(task.task_id.seq)
                    requests += RPC_UPDATE_LINK
    ds.rpc.charge(requests)
    return victims
