"""Intra-task runtime DOP tuning (paper Section 4.3, Figure 12).

Changes the number of drivers of the tunable pipelines in every task of a
stage.  Increases spawn drivers directly from the task's global remote
split set (no coordinator round trip per driver — the paper measures
< 1 ms generation overhead); decreases inject end signals that ride the
end-page relay game through the drivers' operator chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.stage import StageExecution

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


def set_task_dop(query: "QueryExecution", stage: StageExecution, target: int) -> dict:
    """Adjust every active task of ``stage`` to ``target`` drivers on its
    tunable pipelines.  Returns per-task driver deltas."""
    deltas: dict[str, int] = {}
    for task in stage.active_group:
        for runtime in task.pipelines:
            if not runtime.spec.tunable or runtime.finished:
                continue
            current = runtime.active_drivers
            if target > current:
                added = task.add_drivers(runtime.spec.id, target - current)
                deltas[f"{task.task_id}/p{runtime.spec.id}"] = added
            elif target < current:
                removed = task.remove_drivers(runtime.spec.id, current - target)
                deltas[f"{task.task_id}/p{runtime.spec.id}"] = -removed
    return deltas
