"""The dynamic optimizer: classifies tuning requests and drives the
dynamic scheduler (paper Figure 8).

Given an accepted tuning request it determines which mechanism applies —
intra-task driver tuning, intra-stage task tuning, or DOP switching for
partitioned hash joins — and invokes the corresponding dynamic-scheduler
operation, recording the request marker (the red dashed lines of the
evaluation figures) and the state-transfer result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..cluster.stage import StageExecution
from ..errors import TuningRejected
from .dynamic_scheduler import DynamicScheduler
from .tuning import TuningKind, TuningRequest, TuningResult

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


class DynamicOptimizer:
    def __init__(self, dynamic_scheduler: DynamicScheduler):
        self.ds = dynamic_scheduler
        self.kernel = dynamic_scheduler.kernel
        self.history: list[TuningResult] = []

    def apply(
        self,
        query: "QueryExecution",
        request: TuningRequest,
        on_complete: Callable[[TuningResult], None] | None = None,
    ) -> TuningResult:
        stage = query.stage(request.stage)
        result = TuningResult(request, accepted=True, issued_at=self.kernel.now)
        if query.tracker is not None:
            query.tracker.mark("tuning", stage.id, request.describe())
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "tuning", request.describe(), parent=stage.trace_span,
                node="coordinator", query_id=query.id, stage=stage.id,
            )

        if request.kind is TuningKind.TASK_DOP:
            result.details["drivers"] = self.ds.set_task_dop(query, stage, request.target)
            result.completed_at = self.kernel.now
        elif self._needs_switch(stage, request):
            self.ds.switch_stage_dop(query, stage, request.target, result, on_complete)
        elif request.kind is TuningKind.STAGE_DOP:
            current = stage.stage_dop
            if request.target > current:
                tasks = self.ds.add_stage_tasks(query, stage, request.target - current)
                result.details["added"] = [str(t.task_id) for t in tasks]
            elif request.target < current:
                tasks = self.ds.remove_stage_tasks(query, stage, current - request.target)
                result.details["removed"] = [str(t.task_id) for t in tasks]
            else:
                raise TuningRejected("stage already at target DOP", reason="noop")
            result.completed_at = self.kernel.now
        else:
            raise TuningRejected(f"unknown tuning kind {request.kind}", reason="kind")

        self.history.append(result)
        return result

    def _needs_switch(self, stage: StageExecution, request: TuningRequest) -> bool:
        if request.kind is TuningKind.DOP_SWITCH:
            return True
        return request.kind is TuningKind.STAGE_DOP and stage.is_partitioned_join
