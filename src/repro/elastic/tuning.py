"""Tuning request/action types and results.

Requests use the paper's notation: ``AC Sn,a,b`` (add task DOP of stage n
from a to b), ``AP Sn,a,b`` (add stage DOP), ``RP Sn,a,b`` (reduce stage
DOP).  The dynamic optimizer classifies each request into one of the
mechanism types of Figure 9 and Section 4.5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TuningKind(enum.Enum):
    TASK_DOP = "task_dop"        # intra-task: change drivers per pipeline
    STAGE_DOP = "stage_dop"      # intra-stage: change tasks per stage
    DOP_SWITCH = "dop_switch"    # partitioned hash join task-group switch


@dataclass(frozen=True)
class TuningRequest:
    """A user's/auto-tuner's request to change a stage's parallelism."""

    stage: int
    kind: TuningKind
    target: int

    def describe(self) -> str:
        return f"{self.kind.value} S{self.stage} -> {self.target}"


@dataclass
class TuningResult:
    request: TuningRequest
    accepted: bool
    reason: str = ""
    #: Virtual time the request was issued.
    issued_at: float = 0.0
    #: Virtual time the adjustment fully took effect (e.g. hash tables
    #: rebuilt); None while in flight.
    completed_at: float | None = None
    #: State-transfer breakdown for DOP switching (paper Table 2).
    shuffle_seconds: float = 0.0
    build_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at
