"""The dynamic scheduler: runtime task/driver lifecycle operations.

Wraps the initial :class:`~repro.cluster.scheduler.Scheduler` with the
runtime operations the paper's dynamic optimizer invokes: spawning and
terminating tasks and drivers while a query runs, and the partitioned-join
task-group switch.  All control-plane work is charged to the RPC tracker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..cluster.scheduler import Scheduler
from ..cluster.stage import StageExecution
from ..exec.task import Task
from ..sim import SimKernel
from . import dop_switching, intra_stage, intra_task
from .tuning import TuningResult

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


class DynamicScheduler:
    def __init__(self, kernel: SimKernel, scheduler: Scheduler):
        self.kernel = kernel
        self.scheduler = scheduler
        self.rpc = scheduler.rpc

    # -- intra-task (Section 4.3) --------------------------------------
    def set_task_dop(
        self, query: "QueryExecution", stage: StageExecution, target: int
    ) -> dict:
        return intra_task.set_task_dop(query, stage, target)

    # -- intra-stage (Section 4.4) --------------------------------------
    def add_stage_tasks(
        self, query: "QueryExecution", stage: StageExecution, count: int
    ) -> list[Task]:
        return intra_stage.add_tasks(self, query, stage, count)

    def remove_stage_tasks(
        self, query: "QueryExecution", stage: StageExecution, count: int
    ) -> list[Task]:
        return intra_stage.remove_tasks(self, query, stage, count)

    # -- DOP switching (Section 4.5) --------------------------------------
    def switch_stage_dop(
        self,
        query: "QueryExecution",
        stage: StageExecution,
        target: int,
        result: TuningResult,
        on_complete: Callable[[TuningResult], None] | None = None,
    ) -> list[Task]:
        return dop_switching.switch_dop(self, query, stage, target, result, on_complete)

    # -- fault recovery ------------------------------------------------------
    def respawn_task(
        self, query: "QueryExecution", stage: StageExecution, task: Task
    ) -> Task | None:
        """Replace a crashed task through the same 3-step wiring path used
        for intra-stage elasticity (delegates to the recovery manager)."""
        return self.scheduler.recovery.recover_task(query, stage, task)

    # -- instrumentation hooks ----------------------------------------------
    def mark_build_ready(self, query: "QueryExecution", stage: StageExecution) -> None:
        # Bridge on_ready callbacks can fire after the query was cancelled
        # (the rebuild drains cleanly); a terminal query records nothing.
        if query.finished:
            return
        stage.build_ready_times.append(self.kernel.now)
        if query.tracker is not None:
            query.tracker.mark("build_ready", stage.id)
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "tuning", "build_ready", parent=stage.trace_span,
                node="coordinator", query_id=query.id, stage=stage.id,
            )

    def watch_builds(
        self, query: "QueryExecution", stage: StageExecution, tasks: list[Task]
    ) -> None:
        """Record a build-ready marker when each new task's hash table is
        rebuilt (the yellow dashed lines of Figures 24-26)."""
        for task in tasks:
            for bridge in task.bridges:
                if bridge.ready:
                    self.mark_build_ready(query, stage)
                else:
                    bridge.on_ready.add(
                        lambda q=query, s=stage: self.mark_build_ready(q, s)
                    )
