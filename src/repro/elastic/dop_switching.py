"""DOP switching for partitioned hash joins (paper Section 4.5, Figure 16b).

Changing the parallelism of a partitioned-join stage requires rebuilding
the distributed hash table.  Rather than re-balancing the existing one
(which would disrupt in-flight probes), the build side *rebuilds from the
upstream stage's intermediate data cache* into a brand-new task group:

1. a new task group of the target size is created,
2. the build-side child stage's shuffle buffers switch to the new
   buffer-ID group and replay their page caches (the *shuffle* phase of
   Table 2), feeding the new hash tables (the *build* phase),
3. once every new hash table is ready, the probe-side child's shuffle
   buffers switch to the new group and the old group is closed with end
   signals — the probe continues on the new group without interruption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..buffers import ShuffleOutputBuffer
from ..cluster.scheduler import RPC_CREATE_TASK, RPC_UPDATE_LINK
from ..cluster.stage import StageExecution
from ..errors import TuningRejected
from ..exec.splits import RemoteSplit
from ..exec.task import Task
from .tuning import TuningResult

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution
    from .dynamic_scheduler import DynamicScheduler


def switch_dop(
    ds: "DynamicScheduler",
    query: "QueryExecution",
    stage: StageExecution,
    target: int,
    result: TuningResult,
    on_complete: Callable[[TuningResult], None] | None = None,
) -> list[Task]:
    fragment = stage.fragment
    if not stage.is_partitioned_join:
        raise TuningRejected(
            f"stage {stage.id} is not a partitioned hash join", reason="not-partitioned"
        )
    build_children = [query.stages[c] for c in fragment.build_children]
    probe_children = [
        query.stages[c]
        for c in fragment.children
        if c not in fragment.build_children
    ]
    for child in build_children:
        if not all(
            isinstance(t.output_buffer, ShuffleOutputBuffer) for t in child.tasks
        ):
            raise TuningRejected("build child is not hash-partitioned", reason="shape")
        if not all(t.output_buffer.cache_enabled for t in child.tasks):
            raise TuningRejected(
                "DOP switching needs the intermediate data cache (Section 4.5); "
                "it is disabled on this engine",
                reason="no-cache",
            )

    old_group = list(stage.active_group)
    kernel = ds.kernel
    issued_at = kernel.now

    # 1. Create the new task group.
    stage.task_groups.append([])
    new_tasks = [ds.scheduler.create_task(query, stage) for _ in range(target)]
    new_ids = [t.task_id.seq for t in new_tasks]
    requests = target * RPC_CREATE_TASK
    task_dop = max(1, stage.task_dop)

    # 2. Wire parents (downstream) for the new group.
    for parent_id in query.plan.parents_of(stage.id):
        parent = query.stages[parent_id]
        for parent_task in parent.active_group:
            for task in new_tasks:
                task.output_buffer.add_consumer(parent_task.task_id.seq)
                parent_task.add_upstream(
                    stage.id, RemoteSplit(task, parent_task.task_id.seq)
                )
                requests += RPC_UPDATE_LINK

    # 3. Build side: switch the shuffle buffers to the new group and
    #    replay the intermediate data cache into the new hash tables.
    shuffle_pending = 0
    shuffle_done_at = [issued_at]

    def one_shuffle_drained() -> None:
        nonlocal shuffle_pending
        shuffle_pending -= 1
        shuffle_done_at[0] = max(shuffle_done_at[0], kernel.now)
        if shuffle_pending == 0:
            result.shuffle_seconds = shuffle_done_at[0] - issued_at

    def start_build_switch() -> None:
        nonlocal shuffle_pending
        for child in build_children:
            for upstream in child.tasks:
                buffer: ShuffleOutputBuffer = upstream.output_buffer
                buffer.switch_group(new_ids, replay_cache=True)
                for task in new_tasks:
                    task.add_upstream(child.id, RemoteSplit(upstream, task.task_id.seq))
                shuffle_pending += 1
                if buffer._pending_shuffles == 0:
                    one_shuffle_drained()
                else:
                    buffer.on_drained.add(one_shuffle_drained)
        for task in new_tasks:
            task.start(task_dop)

    # 4. When every new hash table is ready, switch the probe side.
    bridges = []

    def maybe_finish() -> None:
        if not all(b.ready for b in bridges):
            return
        ready_at = kernel.now
        result.build_seconds = max(0.0, ready_at - issued_at - result.shuffle_seconds)
        for child in probe_children:
            for upstream in child.tasks:
                buffer = upstream.output_buffer
                if isinstance(buffer, ShuffleOutputBuffer):
                    buffer.switch_group(new_ids, replay_cache=False)
                    buffer.end_group([t.task_id.seq for t in old_group])
                else:  # arbitrary probe distribution: just retire old readers
                    for task in new_tasks:
                        buffer.add_consumer(task.task_id.seq)
                    for old in old_group:
                        buffer.end_consumer(old.task_id.seq)
                for task in new_tasks:
                    task.add_upstream(child.id, RemoteSplit(upstream, task.task_id.seq))
        ds.rpc.charge(RPC_UPDATE_LINK * max(1, len(probe_children)))
        result.completed_at = kernel.now
        if on_complete is not None:
            on_complete(result)

    def watch_bridges() -> None:
        for task in new_tasks:
            for bridge in task.bridges:
                bridges.append(bridge)
                if not bridge.ready:
                    bridge.on_ready.add(
                        lambda: (ds.mark_build_ready(query, stage), maybe_finish())
                    )
                else:
                    ds.mark_build_ready(query, stage)
        maybe_finish()

    def begin() -> None:
        start_build_switch()
        watch_bridges()

    ds.rpc.after_requests(requests, begin)
    return new_tasks
