"""Intra-query runtime elasticity: the paper's core contribution.

* :mod:`.intra_task` — driver-level DOP tuning (Section 4.3)
* :mod:`.intra_stage` — task-level DOP tuning (Section 4.4)
* :mod:`.dop_switching` — partitioned-join task-group switching (4.5)
* :mod:`.dynamic_scheduler` / :mod:`.dynamic_optimizer` — the runtime DOP
  tuning module of Figure 8
"""

from .dynamic_optimizer import DynamicOptimizer
from .dynamic_scheduler import DynamicScheduler
from .tuning import TuningKind, TuningRequest, TuningResult

__all__ = [
    "DynamicOptimizer",
    "DynamicScheduler",
    "TuningKind",
    "TuningRequest",
    "TuningResult",
]
