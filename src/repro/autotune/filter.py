"""DOP tuning request filter (paper Section 5.2).

Blocks requests that would waste resources:

* requests against finished queries or stages,
* no-op requests (already at the target DOP) and requests against stages
  whose parallelism is pinned (final aggregation),
* join-stage requests whose estimated remaining time is smaller than the
  hash-table reconstruction time,
* DOP switching while the active group's hash tables are still building.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..elastic.tuning import TuningKind, TuningRequest
from ..errors import TuningRejected
from .whatif import WhatIfService

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


class TuningRequestFilter:
    def __init__(self, whatif: WhatIfService):
        self.whatif = whatif
        self.rejections: list[tuple[float, TuningRequest, str]] = []
        #: Stage id -> virtual time until which scale-ups are pinned.  Set
        #: by the resource arbiter after revoking cores from a stage so
        #: the victim's own monitor does not immediately re-grab them.
        self.pins: dict[int, float] = {}

    def pin(self, stage_id: int, until: float) -> None:
        """Block scale-up requests against ``stage_id`` until ``until``."""
        self.pins[stage_id] = max(self.pins.get(stage_id, 0.0), until)

    def check(self, query: "QueryExecution", request: TuningRequest) -> None:
        """Raises :class:`TuningRejected` if the request should be blocked."""
        try:
            self._check(query, request)
        except TuningRejected as exc:
            self.rejections.append((query.kernel.now, request, exc.reason))
            if query.tracker is not None:
                query.tracker.mark("rejected", request.stage, str(exc))
            tracer = query.kernel.tracer
            if tracer.enabled:
                tracer.instant(
                    "tuning", f"rejected: {exc.reason}",
                    parent=tracer.root_for_query(query.id),
                    node="coordinator", query_id=query.id, stage=request.stage,
                )
            raise

    def _check(self, query: "QueryExecution", request: TuningRequest) -> None:
        if query.finished:
            raise TuningRejected("query already finished", reason="finished")
        if request.stage not in query.stages:
            raise TuningRejected(f"no stage {request.stage}", reason="unknown-stage")
        stage = query.stage(request.stage)
        if stage.finished:
            raise TuningRejected(
                f"stage {stage.id} already finished", reason="finished"
            )
        if request.target < 1:
            raise TuningRejected("target DOP must be >= 1", reason="invalid")
        if stage.fragment.dop_fixed and request.target != 1:
            raise TuningRejected(
                f"stage {stage.id} parallelism is fixed at 1 (final aggregation)",
                reason="fixed",
            )
        if request.kind is TuningKind.TASK_DOP:
            if request.target == stage.task_dop:
                raise TuningRejected("already at target task DOP", reason="noop")
            return
        if request.target == stage.stage_dop:
            raise TuningRejected("already at target stage DOP", reason="noop")
        pin_until = self.pins.get(request.stage)
        if (
            pin_until is not None
            and request.target > stage.stage_dop
            and query.kernel.now < pin_until
        ):
            raise TuningRejected(
                f"stage {stage.id} pinned by the resource arbiter until "
                f"t={pin_until:.2f} (cores were revoked)",
                reason="pinned",
            )
        if stage.has_join() and request.target > stage.stage_dop:
            self._check_join_worthwhile(query, stage, request)

    def _check_join_worthwhile(self, query, stage, request) -> None:
        if stage.is_partitioned_join:
            active = stage.active_group
            if active and not all(
                all(b.ready for b in t.bridges) for t in active
            ):
                raise TuningRejected(
                    "hash tables still building; DOP switch deferred",
                    reason="building",
                )
        t_remain = self.whatif.remaining_time(stage.id)
        t_build = self.whatif.tuning_time(stage.id)
        if t_remain is not None and t_build > 0 and t_remain < t_build:
            raise TuningRejected(
                f"remaining time {t_remain:.2f}s < hash rebuild time "
                f"{t_build:.2f}s — tuning would waste resources",
                reason="remaining-lt-build",
            )
