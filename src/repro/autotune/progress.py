"""Query progress estimation from table-scan stages (paper Section 5.2).

Because execution is streaming, intermediate stages pull data from the
table-scan stages at the rate of their own processing capacity, so the
scan stage's consumption rate approximates overall progress.  The
remaining execution time of a stage is estimated from the scan stage that
feeds (transitively) its probe input:

    T_remain = V_remain / R_consume
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .collector import RuntimeInfoCollector

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


def probe_scan_stage(query: "QueryExecution", stage_id: int) -> int | None:
    """The table-scan stage feeding ``stage_id``'s probe input chain.

    Follows ``probe_child`` links down the fragment tree (e.g. Q3's S1 ->
    S2, S3 -> S4, Figure 21).
    """
    current = query.plan.fragment(stage_id)
    seen = set()
    while current is not None and current.id not in seen:
        seen.add(current.id)
        if current.is_source:
            return current.id
        if current.probe_child is None:
            return None
        current = query.plan.fragment(current.probe_child)
    return None


def remaining_seconds(
    collector: RuntimeInfoCollector,
    query: "QueryExecution",
    stage_id: int,
    window: float = 3.0,
) -> float | None:
    """T_remain for a stage via its probe-side scan progress.

    Returns ``None`` when no rate is observable yet (query just started).
    """
    scan_id = probe_scan_stage(query, stage_id)
    if scan_id is None:
        return None
    scan_stage = query.stages.get(scan_id)
    if scan_stage is None or scan_stage.split_feed is None:
        return None
    if scan_stage.finished:
        return 0.0
    v_remain = scan_stage.split_feed.rows_remaining
    r_consume = collector.scan_consume_rate(scan_id, window)
    if r_consume <= 0:
        return None
    return v_remain / r_consume


def scan_progress(query: "QueryExecution", stage_id: int) -> float | None:
    """Fraction of the probe-side scan completed (the progress bars of the
    Accordion main UI, which show only table-scan stages)."""
    scan_id = probe_scan_stage(query, stage_id)
    if scan_id is None:
        return None
    return query.stages[scan_id].scan_progress()
