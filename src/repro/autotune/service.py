"""ElasticQuery: the per-query tuning handle (Accordion's controller UI).

Bundles the runtime info collector, what-if service, request filter,
dynamic optimizer, and auto-tuner for one running query, and exposes the
paper's notation:

* ``ac(stage, to)``  — add task DOP   ("AC Sn,a,b", Section 6.2)
* ``ap(stage, to)``  — add stage DOP  ("AP Sn,a,b", Section 6.3)
* ``rp(stage, to)``  — reduce stage DOP ("RP Sn,a,b", Section 6.5)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.cluster import Cluster
from ..cluster.scheduler import Scheduler
from ..elastic import DynamicOptimizer, DynamicScheduler, TuningKind, TuningRequest, TuningResult
from .bottleneck import Bottleneck, find_bottlenecks
from .collector import RuntimeInfoCollector
from .filter import TuningRequestFilter
from .whatif import WhatIfEstimate, WhatIfService
from .tuner import DopAutoTuner, TuningUnit, tuning_units

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


class ElasticQuery:
    """Runtime elasticity controls for one query."""

    def __init__(
        self,
        query: "QueryExecution",
        cluster: Cluster,
        scheduler: Scheduler,
        collector_period: float = 0.5,
        arbiter=None,
    ):
        self.query = query
        self.kernel = query.kernel
        self.collector = RuntimeInfoCollector(
            self.kernel, query, cluster, period=collector_period
        )
        self.whatif = WhatIfService(self.collector, query)
        self.filter = TuningRequestFilter(self.whatif)
        self.dynamic_scheduler = DynamicScheduler(self.kernel, scheduler)
        self.optimizer = DynamicOptimizer(self.dynamic_scheduler)
        self.arbiter = arbiter
        self.tuner = DopAutoTuner(
            query,
            self.collector,
            self.whatif,
            self.filter,
            self.optimizer,
            max_stage_dop=max(8, 2 * len(cluster.compute)),
            arbiter=arbiter,
        )
        if arbiter is not None:
            arbiter.attach_elastic(query.id, self)

    # -- paper-notation direct tuning ------------------------------------
    def ac(self, stage: int, to: int) -> TuningResult:
        """Add/set task DOP of every task in ``stage`` ("AC Sn,a,b")."""
        return self.tuner.direct(TuningRequest(stage, TuningKind.TASK_DOP, to))

    def ap(self, stage: int, to: int) -> TuningResult:
        """Add stage DOP ("AP Sn,a,b"); partitioned joins DOP-switch."""
        return self.tuner.direct(TuningRequest(stage, TuningKind.STAGE_DOP, to))

    def rp(self, stage: int, to: int) -> TuningResult:
        """Reduce stage DOP ("RP Sn,a,b")."""
        return self.tuner.direct(TuningRequest(stage, TuningKind.STAGE_DOP, to))

    set_task_dop = ac
    set_stage_dop = ap

    # -- what-if / introspection --------------------------------------------
    def estimate(self, stage: int, target_dop: int) -> WhatIfEstimate | None:
        return self.whatif.predict(stage, target_dop)

    def remaining_time(self, stage: int) -> float | None:
        return self.whatif.remaining_time(stage)

    def bottlenecks(self) -> list[Bottleneck]:
        return find_bottlenecks(self.collector, self.query)

    def units(self) -> list[TuningUnit]:
        return tuning_units(self.query)

    def panel(self) -> str:
        """ASCII rendering of the DOP tuning panel (paper Figure 19).

        One line per tuning unit: the knob stage with its current DOPs and
        the scan-stage progress indicator that paces it.
        """
        lines = []
        for unit in self.units():
            knob = self.query.stages[unit.knob_stage]
            indicator = self.query.stages[unit.indicator_stage]
            progress = indicator.scan_progress() or 0.0
            remaining = self.remaining_time(unit.knob_stage)
            remaining_text = f"{remaining:7.1f}s" if remaining is not None else "      ?"
            state = "done" if knob.finished else "running"
            lines.append(
                f"knob S{unit.knob_stage:<3} dop={knob.stage_dop}x{knob.task_dop} "
                f"({state:<7}) <- scan S{unit.indicator_stage} "
                f"{100 * progress:5.1f}% scanned, est. remaining {remaining_text}"
            )
        return "\n".join(lines)

    # -- auto tuning ----------------------------------------------------
    def tune_once(self, stage: int, latency_constraint: float):
        return self.tuner.tune_once(stage, latency_constraint)

    def set_constraint(self, stage: int, seconds_from_now: float) -> None:
        self.tuner.set_constraint(stage, seconds_from_now)

    def start_monitor(self, period: float = 2.0) -> None:
        self.tuner.start_monitor(period)

    def stop_monitor(self) -> None:
        self.tuner.stop_monitor()
