"""The DOP auto-tuner (paper Section 5.4, Figure 19).

Supports the three request types:

* **direct DOP tuning** — a manual adjustment, checked by the request
  filter and executed by the dynamic optimizer;
* **one-time auto-tuning** — builds a DOP-time list with the what-if
  service and applies the smallest DOP whose predicted remaining time
  meets the latency constraint;
* **DOP monitor** — periodically tracks each tuning unit's scan progress
  and incrementally adjusts the knob stages to meet per-scan deadlines
  while minimizing resource usage (scaling *down* when ahead of schedule,
  the RP markers of Figure 30).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..elastic.dynamic_optimizer import DynamicOptimizer
from ..elastic.tuning import TuningKind, TuningRequest, TuningResult
from ..errors import TuningRejected
from .collector import RuntimeInfoCollector
from .filter import TuningRequestFilter
from .whatif import WhatIfEstimate, WhatIfService
from .progress import probe_scan_stage

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution

#: Monitor hysteresis: scale up above this required/current rate ratio...
SCALE_UP_RATIO = 1.15
#: ...and down below this one.
SCALE_DOWN_RATIO = 0.70


@dataclass(frozen=True)
class TuningUnit:
    """One knob of the DOP tuning panel: an adjustable stage plus the
    table-scan stage acting as its progress indicator."""

    knob_stage: int
    indicator_stage: int


def tuning_units(query: "QueryExecution") -> list[TuningUnit]:
    """Decompose the stage tree into tuning units (the execution DAG shown
    on the DOP tuning panel)."""
    units = []
    for stage_id in sorted(query.stages):
        stage = query.stages[stage_id]
        if stage.fragment.dop_fixed or stage.fragment.is_source:
            continue
        indicator = probe_scan_stage(query, stage_id)
        if indicator is not None:
            units.append(TuningUnit(knob_stage=stage_id, indicator_stage=indicator))
    return units


class DopAutoTuner:
    def __init__(
        self,
        query: "QueryExecution",
        collector: RuntimeInfoCollector,
        whatif: WhatIfService,
        request_filter: TuningRequestFilter,
        optimizer: DynamicOptimizer,
        max_stage_dop: int = 32,
        arbiter=None,
    ):
        self.query = query
        self.kernel = query.kernel
        self.collector = collector
        self.whatif = whatif
        self.filter = request_filter
        self.optimizer = optimizer
        self.max_stage_dop = max_stage_dop
        #: Cluster-wide :class:`~repro.workload.ResourceArbiter`; when set,
        #: every request that passes the filter becomes a *bid* the arbiter
        #: may grant, trim, or defer before the optimizer applies it.
        self.arbiter = arbiter
        #: Monitor state: indicator scan stage -> absolute virtual deadline.
        self.constraints: dict[int, float] = {}
        self._monitor_running = False
        self.applied: list[TuningResult] = []

    # ------------------------------------------------------------------
    # 1. direct tuning
    # ------------------------------------------------------------------
    def direct(self, request: TuningRequest) -> TuningResult:
        self.filter.check(self.query, request)
        if self.arbiter is not None:
            request = self.arbiter.arbitrate(self.query, request, self.whatif)
        result = self.optimizer.apply(self.query, request)
        self.applied.append(result)
        return result

    # ------------------------------------------------------------------
    # 2. one-time auto tuning
    # ------------------------------------------------------------------
    def tune_once(self, stage_id: int, latency_constraint: float) -> TuningResult | None:
        """Pick the cheapest DOP predicted to finish the stage within
        ``latency_constraint`` seconds and apply it."""
        predictions = self.whatif.dop_time_list(stage_id)
        if not predictions:
            return None
        choice = self._pick(predictions, latency_constraint)
        if choice is None:
            return None
        request = TuningRequest(stage_id, TuningKind.STAGE_DOP, choice.target_dop)
        try:
            return self.direct(request)
        except TuningRejected:
            return None

    @staticmethod
    def _pick(predictions: list[WhatIfEstimate], constraint: float) -> WhatIfEstimate | None:
        meeting = [p for p in predictions if p.t_predicted <= constraint]
        if meeting:
            return min(meeting, key=lambda p: p.target_dop)
        # Nothing meets the constraint: use the fastest configuration.
        return min(predictions, key=lambda p: p.t_predicted)

    # ------------------------------------------------------------------
    # 3. DOP monitor
    # ------------------------------------------------------------------
    def set_constraint(self, stage_id: int, seconds_from_now: float) -> None:
        """(Re)set a completion constraint.

        ``stage_id`` may be an intermediate stage — it is translated to its
        scan-progress indicator, discarding any previous plan for that unit
        (the mid-flight constraint change of Figure 30b).
        """
        stage = self.query.stage(stage_id)
        indicator = stage_id if stage.fragment.is_source else probe_scan_stage(
            self.query, stage_id
        )
        if indicator is None:
            raise TuningRejected(f"stage {stage_id} has no scan indicator")
        self.constraints[indicator] = self.kernel.now + seconds_from_now
        if self.query.tracker is not None:
            self.query.tracker.mark(
                "constraint", stage_id, f"finish in {seconds_from_now:.0f}s"
            )

    def start_monitor(self, period: float = 2.0) -> None:
        if self._monitor_running:
            return
        self._monitor_running = True
        self.kernel.schedule(period, lambda: self._monitor_tick(period))

    def stop_monitor(self) -> None:
        self._monitor_running = False

    def _monitor_tick(self, period: float) -> None:
        if not self._monitor_running or self.query.finished:
            self._monitor_running = False
            return
        for unit in tuning_units(self.query):
            deadline = self.constraints.get(unit.indicator_stage)
            if deadline is None:
                continue
            self._adjust_unit(unit, deadline)
        self.kernel.schedule(period, lambda: self._monitor_tick(period))

    def _adjust_unit(self, unit: TuningUnit, deadline: float) -> None:
        scan = self.query.stages.get(unit.indicator_stage)
        knob = self.query.stages.get(unit.knob_stage)
        if scan is None or knob is None or scan.finished or knob.finished:
            return
        feed = scan.split_feed
        if feed is None or feed.rows_remaining <= 0:
            return
        current_rate = self.collector.scan_consume_rate(unit.indicator_stage)
        if current_rate <= 0:
            return
        time_left = deadline - self.kernel.now
        if time_left <= 0:
            required_ratio = SCALE_UP_RATIO + 1.0  # late: push hard
        else:
            required_rate = feed.rows_remaining / time_left
            required_ratio = required_rate / current_rate

        current_dop = max(1, knob.stage_dop)
        if required_ratio > SCALE_UP_RATIO:
            target = min(self.max_stage_dop, math.ceil(current_dop * required_ratio))
        elif required_ratio < SCALE_DOWN_RATIO:
            # Ahead of schedule: shed resources but keep a safety margin.
            target = max(1, math.floor(current_dop * required_ratio / 0.9))
        else:
            return
        if target == current_dop:
            return
        request = TuningRequest(unit.knob_stage, TuningKind.STAGE_DOP, target)
        try:
            result = self.direct(request)
            result.details["monitor"] = {
                "required_ratio": required_ratio,
                "deadline": deadline,
            }
        except TuningRejected:
            pass
