"""Runtime bottleneck localization (paper Section 5.1).

A stage whose exchange receive buffers keep turning up (growing) is *not*
a bottleneck — it drains faster than its upstream produces.  A stage whose
turn-up counters stay flat while it runs is a computational bottleneck.
The coordinator additionally watches NIC utilization to flag network
bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .collector import RuntimeInfoCollector

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution

#: NIC busy fraction above which a node is considered network-bound.
NIC_BOTTLENECK_THRESHOLD = 0.9


@dataclass(frozen=True)
class Bottleneck:
    stage: int
    kind: str  # "compute" | "network"
    detail: str = ""


def find_bottlenecks(
    collector: RuntimeInfoCollector,
    query: "QueryExecution",
    window: float = 2.0,
) -> list[Bottleneck]:
    """Stages currently limiting query progress."""
    samples = collector.window_samples(window)
    if len(samples) < 2:
        return []
    first, last = samples[0], samples[-1]
    found: list[Bottleneck] = []
    for stage_id in sorted(query.stages):
        stage = query.stages[stage_id]
        if stage.finished or not stage.started:
            continue
        a = first.stages.get(stage_id)
        b = last.stages.get(stage_id)
        if a is None or b is None:
            continue
        if stage.fragment.is_source:
            # A scan stage bottlenecks the query when its consumers starve:
            # their exchange buffers keep turning up while the scan runs.
            for parent_id in query.plan.parents_of(stage_id):
                pa = first.stages.get(parent_id)
                pb = last.stages.get(parent_id)
                if pa is None or pb is None:
                    continue
                if pb.exchange_turn_up > pa.exchange_turn_up and not pb.finished:
                    found.append(
                        Bottleneck(stage_id, "compute", "consumers starving")
                    )
                    break
            continue
        # A computational bottleneck keeps its exchange buffers populated:
        # data flows in, yet the consumer never finds them empty (the
        # turn-up counter stays flat, Section 5.1).
        receiving = b.rows_received > a.rows_received
        turned_up = b.exchange_turn_up > a.exchange_turn_up
        if receiving and not turned_up:
            found.append(
                Bottleneck(stage_id, "compute", "exchange turn-up counter flat")
            )
    for node_key, utilization in collector.node_nic_utilization().items():
        if utilization >= NIC_BOTTLENECK_THRESHOLD:
            found.append(Bottleneck(-1, "network", f"{node_key} NIC at {utilization:.0%}"))
    return found


def stage_rows_expected(stage) -> bool:
    """Whether the stage is expected to emit rows continuously (joins and
    scans do; a final aggregation only emits at the end)."""
    return not stage.fragment.dop_fixed
