"""Automatic DOP tuning (paper Section 5)."""

from .bottleneck import Bottleneck, find_bottlenecks
from .collector import RuntimeInfoCollector, Snapshot, StageSample
from .filter import TuningRequestFilter
from .planner import DopPlan, DopPlanner
from .whatif import WhatIfEstimate, WhatIfService
from .progress import probe_scan_stage, remaining_seconds, scan_progress
from .service import ElasticQuery
from .tuner import DopAutoTuner, TuningUnit, tuning_units

__all__ = [
    "Bottleneck",
    "DopAutoTuner",
    "DopPlan",
    "DopPlanner",
    "ElasticQuery",
    "RuntimeInfoCollector",
    "Snapshot",
    "StageSample",
    "TuningRequestFilter",
    "TuningUnit",
    "WhatIfEstimate",
    "WhatIfService",
    "find_bottlenecks",
    "probe_scan_stage",
    "remaining_seconds",
    "scan_progress",
    "tuning_units",
]
