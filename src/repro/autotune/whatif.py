"""The what-if service: stage remaining-time prediction (Section 5.3).

For a stage at parallelism ``n1`` asked about parallelism ``n2``:

    n_f = min(n2 / n1, n_f_max)                  (CPU-bounded speedup)
    T_pred = (T_remain - T_tuning) / n_f + T_tuning

``T_tuning`` is ~0 for stages without joins and ~T_build (hash-table
reconstruction) for join stages.  ``n_f_max`` is estimated in real time
from the upstream/cluster CPU headroom so requests like "increase by
1000x" are tempered (Section 5.3, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .collector import RuntimeInfoCollector
from .progress import remaining_seconds

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


@dataclass(frozen=True)
class WhatIfEstimate:
    stage: int
    current_dop: int
    target_dop: int
    t_remain: float
    t_tuning: float
    n_f: float
    t_predicted: float

    def describe(self) -> str:
        return (
            f"S{self.stage} {self.current_dop}->{self.target_dop}: "
            f"T_remain={self.t_remain:.2f}s T_tuning={self.t_tuning:.2f}s "
            f"n_f={self.n_f:.2f} => T_pred={self.t_predicted:.2f}s"
        )


class WhatIfService:
    def __init__(self, collector: RuntimeInfoCollector, query: "QueryExecution"):
        self.collector = collector
        self.query = query

    # -- inputs -----------------------------------------------------------
    def remaining_time(self, stage_id: int) -> float | None:
        return remaining_seconds(self.collector, self.query, stage_id)

    def tuning_time(self, stage_id: int) -> float:
        """T_tuning: ~0 for stateless stages, ~T_build for join stages."""
        stage = self.query.stage(stage_id)
        if not stage.has_join():
            return 0.0
        observed = stage.max_build_seconds()
        return observed

    def max_speedup(self, stage_id: int) -> float:
        """Upper bound on n_f from cluster CPU headroom."""
        used, idle = self.collector.cluster_cpu_headroom()
        if used <= 0.0:
            return float("inf")
        return 1.0 + idle / used

    # -- the what-if computation --------------------------------------------
    def predict(self, stage_id: int, target_dop: int) -> WhatIfEstimate | None:
        """Predicted remaining time of ``stage_id`` at ``target_dop``.

        Returns ``None`` while no progress rate is observable yet.
        """
        stage = self.query.stage(stage_id)
        current = max(1, stage.stage_dop)
        t_remain = self.remaining_time(stage_id)
        if t_remain is None:
            return None
        t_tuning = self.tuning_time(stage_id) if target_dop > current else 0.0
        requested = target_dop / current
        n_f = max(1e-9, min(requested, self.max_speedup(stage_id)))
        if requested <= 1.0:
            n_f = requested  # slowdowns are not CPU-bounded
        t_pred = max(0.0, (t_remain - t_tuning)) / n_f + t_tuning
        return WhatIfEstimate(
            stage=stage_id,
            current_dop=current,
            target_dop=target_dop,
            t_remain=t_remain,
            t_tuning=t_tuning,
            n_f=n_f,
            t_predicted=t_pred,
        )

    def dop_time_list(
        self, stage_id: int, candidates: list[int] | None = None
    ) -> list[WhatIfEstimate]:
        """Predicted execution times across candidate DOPs (used by the
        one-time auto-tuner to pick the cheapest DOP meeting a deadline)."""
        stage = self.query.stage(stage_id)
        if candidates is None:
            ceiling = max(2 * stage.stage_dop, 16)
            candidates = sorted({1, 2, 3, 4, 6, 8, 12, 16, ceiling})
        out = []
        for dop in candidates:
            prediction = self.predict(stage_id, dop)
            if prediction is not None:
                out.append(prediction)
        return out
