"""Runtime information collector (paper Section 5.1, Figure 18).

Periodically snapshots every task's context and aggregates the samples
into the query-stage-task hierarchy: per-stage output rows, exchange
turn-up counters, scan progress, DOPs, plus per-node CPU utilization and
NIC activity.  The what-if service, bottleneck localizer, and auto-tuner all
read from here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..cluster.cluster import Cluster
from ..sim import SimKernel

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


@dataclass
class StageSample:
    rows_out: int
    rows_received: int
    exchange_turn_up: int
    stage_dop: int
    task_dop: int
    finished: bool
    scan_rows_remaining: int | None
    scan_rows_total: int | None
    max_build_seconds: float


@dataclass
class Snapshot:
    time: float
    stages: dict[int, StageSample] = field(default_factory=dict)
    #: node key -> mean CPU utilization since the previous snapshot.
    cpu_utilization: dict[str, float] = field(default_factory=dict)
    #: node key -> NIC busy fraction since the previous snapshot.
    nic_utilization: dict[str, float] = field(default_factory=dict)


class RuntimeInfoCollector:
    def __init__(
        self,
        kernel: SimKernel,
        query: "QueryExecution",
        cluster: Cluster,
        period: float = 0.5,
        window: int = 64,
    ):
        self.kernel = kernel
        self.query = query
        self.cluster = cluster
        self.period = period
        self.samples: deque[Snapshot] = deque(maxlen=window)
        self._cpu_marks: dict[str, tuple[float, float]] = {}
        self._nic_marks: dict[str, float] = {}
        self._stopped = False
        self._sample()

    # ------------------------------------------------------------------
    def _nodes(self):
        seen = {}
        for node in self.cluster.compute + self.cluster.storage:
            seen[f"{node.role}{node.id}"] = node
        return seen

    def _sample(self) -> None:
        if self._stopped:
            return
        now = self.kernel.now
        snap = Snapshot(now)
        for stage_id, stage in self.query.stages.items():
            feed = stage.split_feed
            snap.stages[stage_id] = StageSample(
                rows_out=stage.rows_out(),
                rows_received=stage.rows_received(),
                exchange_turn_up=stage.exchange_turn_up(),
                stage_dop=stage.stage_dop,
                task_dop=stage.task_dop,
                finished=stage.finished,
                scan_rows_remaining=feed.rows_remaining if feed else None,
                scan_rows_total=feed.total_rows if feed else None,
                max_build_seconds=stage.max_build_seconds(),
            )
        for key, node in self._nodes().items():
            busy = node.cpu.busy_core_seconds()
            nic_busy = node.nic.busy_seconds()
            prev = self._cpu_marks.get(key)
            if prev is not None:
                prev_busy, prev_time = prev
                dt = now - prev_time
                if dt > 0:
                    snap.cpu_utilization[key] = (busy - prev_busy) / (
                        dt * node.cpu.cores
                    )
                    prev_nic = self._nic_marks.get(key, 0.0)
                    snap.nic_utilization[key] = min(1.0, (nic_busy - prev_nic) / dt)
            self._cpu_marks[key] = (busy, now)
            self._nic_marks[key] = nic_busy
        self.samples.append(snap)
        if self.query.finished:
            self._stopped = True
            return
        self.kernel.schedule(self.period, self._sample)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def latest(self) -> Snapshot | None:
        return self.samples[-1] if self.samples else None

    def window_samples(self, seconds: float) -> list[Snapshot]:
        if not self.samples:
            return []
        cutoff = self.samples[-1].time - seconds
        return [s for s in self.samples if s.time >= cutoff]

    def stage_rate(self, stage_id: int, seconds: float = 3.0) -> float:
        """Stage output rows/second over the recent window."""
        window = self.window_samples(seconds)
        if len(window) < 2:
            return 0.0
        first, last = window[0], window[-1]
        dt = last.time - first.time
        if dt <= 0 or stage_id not in first.stages:
            return 0.0
        return (
            last.stages[stage_id].rows_out - first.stages[stage_id].rows_out
        ) / dt

    def scan_consume_rate(self, stage_id: int, seconds: float = 3.0) -> float:
        """R_consume: rows/second leaving the scan stage's split feed."""
        window = self.window_samples(seconds)
        if len(window) < 2:
            return 0.0
        first, last = window[0], window[-1]
        a = first.stages.get(stage_id)
        b = last.stages.get(stage_id)
        if a is None or b is None or a.scan_rows_remaining is None:
            return 0.0
        dt = last.time - first.time
        if dt <= 0:
            return 0.0
        return max(0.0, (a.scan_rows_remaining - b.scan_rows_remaining) / dt)

    def cluster_cpu_headroom(self) -> tuple[float, float]:
        """(used core-fraction, idle core-fraction) across compute nodes."""
        snap = self.latest()
        if snap is None or not snap.cpu_utilization:
            return 0.0, 1.0
        computes = [
            v for k, v in snap.cpu_utilization.items() if k.startswith("compute")
        ] or list(snap.cpu_utilization.values())
        used = sum(computes) / len(computes)
        return used, max(0.0, 1.0 - used)

    def node_nic_utilization(self) -> dict[str, float]:
        snap = self.latest()
        return dict(snap.nic_utilization) if snap else {}
