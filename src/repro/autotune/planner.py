"""DOP planning module (paper Section 6.5.2).

Before a deadline-constrained query starts, the planning module picks the
initial stage/task DOPs and splits the total latency budget into per-scan
time constraints (e.g. Q3 with a 200 s target: scan S4 within 80 s, scan
S2 within 120 s).  Build-side scans come earlier in the execution-
dependency order, and each scan's share of the budget is proportional to
its estimated data volume (with a floor so small scans get nonzero time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config import EngineConfig
from ..data import Catalog
from ..plan.physical import PhysicalPlan

#: Minimum share of the budget any constrained scan receives.
_MIN_SHARE = 0.2


@dataclass
class DopPlan:
    initial_stage_dop: int
    initial_task_dop: int
    #: scan stage id -> seconds from query start by which it must finish.
    scan_deadlines: dict[int, float] = field(default_factory=dict)


class DopPlanner:
    def __init__(self, catalog: Catalog, config: EngineConfig):
        self.catalog = catalog
        self.config = config

    def plan(self, plan: PhysicalPlan, deadline_seconds: float) -> DopPlan:
        scans = self._probe_chain_scans(plan)
        weights = {}
        for stage_id in scans:
            table = plan.fragment(stage_id).source_table
            weights[stage_id] = max(1, self.catalog.table(table).num_rows)
        total_weight = sum(weights.values()) or 1

        # Allocate budget shares (floored), deepest (build-side) first,
        # with cumulative deadlines along the execution-dependency order.
        shares = {}
        for stage_id in scans:
            share = max(_MIN_SHARE, weights[stage_id] / total_weight)
            shares[stage_id] = share
        norm = sum(shares.values())
        cumulative = 0.0
        deadlines = {}
        for stage_id in sorted(scans, reverse=True):  # deeper stages first
            cumulative += deadline_seconds * shares[stage_id] / norm
            deadlines[stage_id] = cumulative

        initial_stage_dop = self._initial_dop(plan, deadline_seconds)
        return DopPlan(
            initial_stage_dop=initial_stage_dop,
            initial_task_dop=max(1, min(2, initial_stage_dop)),
            scan_deadlines=deadlines,
        )

    def _probe_chain_scans(self, plan: PhysicalPlan) -> list[int]:
        """Scan stages that act as progress indicators (probe chains)."""
        scans = set()
        for fragment in plan.fragments.values():
            if fragment.dop_fixed or fragment.is_source:
                continue
            current = fragment
            seen = set()
            while current.probe_child is not None and current.id not in seen:
                seen.add(current.id)
                current = plan.fragment(current.probe_child)
                if current.is_source:
                    scans.add(current.id)
                    break
        return sorted(scans)

    def _initial_dop(self, plan: PhysicalPlan, deadline_seconds: float) -> int:
        """Crude starting parallelism: total scan CPU-seconds at DOP 1
        divided by the budget, clamped to the cluster size."""
        total_rows = 0
        for fragment in plan.fragments.values():
            if fragment.is_source:
                total_rows += self.catalog.table(fragment.source_table).num_rows
        per_row = self.config.cost.scan_row_cost * self.config.cost.cpu_multiplier
        # Downstream work is roughly an order of magnitude above raw scan.
        est_seconds = total_rows * per_row * 10
        needed = est_seconds / max(deadline_seconds, 1e-6)
        return max(1, min(self.config.cluster.compute_nodes, math.ceil(needed)))
