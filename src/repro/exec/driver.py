"""Drivers: physical operator sequences, the unit of scheduling.

A driver executes quanta on its node's simulated cores: each quantum takes
one page from the source, pushes it through the transform chain, and
delivers the outputs to the sink.  Drivers block on empty sources, full
sinks, and not-yet-ready join bridges, and are woken through waiter lists.

Scheduling follows Presto's multi-level feedback queue: a driver's
priority level grows with its accumulated CPU time, so fresh drivers
(e.g. ones just created by an intra-task DOP increase) get cores quickly —
this is why the paper measures sub-millisecond driver spawn overhead and
throughput steps within ~110 ms of a tuning action.
"""

from __future__ import annotations

import enum
import time
from typing import TYPE_CHECKING

from ..pages import Page
from .operators.base import SinkOperator, SourceOperator, TransformOperator

if TYPE_CHECKING:  # pragma: no cover
    from .task import Task

#: Accumulated-CPU thresholds for the multi-level feedback queue.
_MLFQ_LEVELS = (0.1, 1.0, 10.0)


def _noop() -> None:
    """Shared no-op commit (blocked/trapped quanta deliver nothing)."""


class DriverState(enum.Enum):
    CREATED = "created"
    QUEUED = "queued"     # waiting for a core
    RUNNING = "running"   # holding a core for the current quantum
    BLOCKED = "blocked"   # waiting on a buffer/bridge condition
    FINISHED = "finished"


class Driver:
    def __init__(
        self,
        task: "Task",
        pipeline_id: int,
        driver_id: int,
        source: SourceOperator,
        transforms: list[TransformOperator],
        sink: SinkOperator,
    ):
        self.task = task
        self.pipeline_id = pipeline_id
        self.driver_id = driver_id
        self.source = source
        self.transforms = transforms
        self.sink = sink
        self.state = DriverState.CREATED
        self.cpu_time = 0.0
        self.quanta = 0
        #: Set by the dynamic scheduler to shut this driver down (end
        #: signal, Section 4.3); the next quantum injects an end page.
        self.end_requested = False
        self._end_seen = False
        # Hot-path caches: the tracer, its flags, and the per-quantum
        # overhead are fixed for the engine's lifetime, so look them up
        # once per driver instead of once per quantum/page.
        self._tracer = task.kernel.tracer
        self._quantum_spans = self._tracer.quantum_spans
        self._op_spans = self._quantum_spans and self._tracer.operator_spans
        self._profiler = self._tracer.profiler if self._tracer.profiling else None
        self._quantum_overhead = task.cost.quantum_overhead
        # Only operators that can ever block (join probes) are polled for
        # readiness each quantum; for most pipelines this list is empty.
        self._waitable = [op for op in transforms if op.may_wait]

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self._enqueue()

    def request_end(self) -> None:
        self.end_requested = True
        if self.state is DriverState.BLOCKED:
            self._enqueue()

    @property
    def finished(self) -> bool:
        return self.state is DriverState.FINISHED

    def _priority(self) -> float:
        for level, threshold in enumerate(_MLFQ_LEVELS):
            if self.cpu_time < threshold:
                return float(level)
        return float(len(_MLFQ_LEVELS))

    def _enqueue(self) -> None:
        if self.state in (DriverState.QUEUED, DriverState.FINISHED):
            return
        self.state = DriverState.QUEUED
        self.task.node.cpu.acquire(self._run_quantum, priority=self._priority())

    def _block_on(self, waiters) -> tuple[float, callable]:
        self.state = DriverState.BLOCKED
        waiters.add(self._wake)
        return self._quantum_overhead, _noop

    def _wake(self) -> None:
        if self.state is DriverState.BLOCKED:
            self._enqueue()

    # -- quantum execution ----------------------------------------------------
    def _run_quantum(self) -> tuple[float, callable]:
        """Runs with a core granted; returns (cost, commit).

        Crashed tasks (fault injection) never execute another quantum; an
        operator exception is trapped and escalated to the task instead of
        unwinding the event loop."""
        if self.task.crashed:
            self.state = DriverState.FINISHED
            return 0.0, _noop
        try:
            cost, commit = self._quantum()
        except Exception as exc:  # noqa: BLE001 - escalate to the query
            return self._trap(exc)
        self.task.inflight_quanta += 1

        def safe_commit() -> None:
            try:
                commit()
            except Exception as exc:  # noqa: BLE001
                self._trap(exc)
            finally:
                self.task.quantum_done()

        return cost, safe_commit

    def _trap(self, exc: Exception) -> tuple[float, callable]:
        self.state = DriverState.FINISHED
        self.task.report_error(exc)
        return 0.0, _noop

    def _quantum(self) -> tuple[float, callable]:
        self.state = DriverState.RUNNING
        self.quanta += 1

        if self.end_requested and not self._end_seen:
            page: Page | None = Page.end(signal="shutdown")
            cost = 0.0
        else:
            # Block on a not-ready transform (join probe before build done).
            for op in self._waitable:
                waiters = op.waits_on()
                if waiters is not None:
                    return self._block_on(waiters)
            if self.sink.is_full:
                return self._block_on(self.sink.waiters())
            page, cost = self.source.poll()
            if page is None:
                return self._block_on(self.source.waiters())

        op_costs = [] if self._op_spans else None
        outputs, chain_cost, finished = self._run_chain(page, op_costs)
        cost += chain_cost + self._quantum_overhead
        cost += self.sink.cost_of(outputs)
        self.cpu_time += cost

        if self._quantum_spans:
            tracer = self._tracer
            # The quantum occupies a core for [now, now + cost]; record it
            # as a closed span now that the cost is known.  Operator
            # sub-spans stack their virtual costs sequentially inside it.
            now = self.task.kernel.now
            quantum_span = tracer.complete(
                "quantum",
                f"p{self.pipeline_id}.d{self.driver_id}",
                now,
                now + cost,
                parent=self.task.trace_span,
                node=self.task.node.name,
                rows=sum(p.num_rows for p in outputs),
            )
            if op_costs:
                at = now
                for op_name, op_cost in op_costs:
                    tracer.complete(
                        "operator", op_name, at, at + op_cost,
                        parent=quantum_span, node=self.task.node.name,
                    )
                    at += op_cost

        def commit() -> None:
            if outputs:
                self.sink.deliver(outputs)
            if finished:
                self._finish()
            else:
                self._enqueue()

        return cost, commit

    def _run_chain(
        self, page: Page, op_costs: list | None = None
    ) -> tuple[list[Page], float, bool]:
        """Push ``page`` (possibly an end page) through the transforms.

        ``op_costs`` (tracing only) collects ``(operator, virtual_cost)``
        per transform; the accumulation of ``cost`` itself is unchanged so
        virtual timings are identical with tracing on or off."""
        if page.is_end:
            self._end_seen = True
        profiler = self._profiler
        pages = [page]
        cost = 0.0
        for index, op in enumerate(self.transforms):
            next_pages: list[Page] = []
            op_cost = 0.0
            for p in pages:
                if profiler is not None:
                    wall_start = time.perf_counter_ns()
                    outs, c = op.process(p)
                    handle = getattr(op, "memory", None)
                    if handle is None:
                        bridge = getattr(op, "bridge", None)
                        handle = getattr(bridge, "memory", None)
                    profiler.record(
                        self.task.query_id,
                        self.task.task_id.stage,
                        type(op).__name__,
                        time.perf_counter_ns() - wall_start,
                        p.num_rows,
                        peak_bytes=handle.peak_bytes if handle is not None else 0,
                    )
                else:
                    outs, c = op.process(p)
                cost += c
                op_cost += c
                next_pages.extend(outs)
            if op_costs is not None:
                op_costs.append((type(op).__name__, op_cost))
            pages = next_pages
            if op.done_early and not self._end_seen:
                # LIMIT satisfied: start the end relay from here without
                # draining the source.
                self._end_seen = True
                end_outs, c = self._relay_end(index + 1)
                cost += c
                pages = [p for p in pages if not p.is_end] + end_outs
                break
        data_pages = [p for p in pages if not p.is_end]
        # An end page always traverses the whole remaining chain within one
        # quantum (stateful operators flush, then relay), so seeing the end
        # means the relay completed and the driver is done.
        finished = self._end_seen
        return data_pages, cost, finished

    def _relay_end(self, start_index: int) -> tuple[list[Page], float]:
        pages: list[Page] = [Page.end()]
        cost = 0.0
        for op in self.transforms[start_index:]:
            next_pages: list[Page] = []
            for p in pages:
                outs, c = op.process(p)
                cost += c
                next_pages.extend(outs)
            pages = next_pages
        return [p for p in pages if not p.is_end], cost

    def _finish(self) -> None:
        self.state = DriverState.FINISHED
        shutdown = getattr(self.source, "shutdown", None)
        if shutdown is not None:
            shutdown()
        self.sink.driver_finished()
        self.task.driver_finished(self)
