"""Tasks: the smallest unit of distributed execution.

A task instantiates one fragment on one node: it creates the shared
structures (output buffer, exchange clients, local exchanges, join
bridges), generates drivers from the pipeline specs, and tracks their
lifecycle.  The task context exposes the runtime counters that the
coordinator's information collector aggregates into the query-stage-task
tree (paper Section 5.1, Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..buffers import (
    LocalExchange,
    OutputMode,
    SharedOutputBuffer,
    ShuffleOutputBuffer,
    TaskOutputBuffer,
)
from ..config import EngineConfig
from ..errors import SchedulingError
from ..pages import Page
from ..plan.physical import (
    PFilterNode,
    PFinalAggNode,
    PJoinNode,
    PLimitNode,
    PNode,
    PPartialAggNode,
    PProjectNode,
    PSortNode,
    PTopNNode,
)
from ..plan.pipelines import FragmentLayout, PipelineSpec
from ..sim import SimKernel
from .driver import Driver
from .exchange_client import ExchangeClient
from .operators.aggregation import FinalAggOperator, PartialAggOperator
from .operators.base import SinkOperator, SourceOperator, TransformOperator
from .operators.basic import FilterOperator, LimitOperator, ProjectOperator
from .operators.join import HashJoinProbeOperator, JoinBridge, JoinBuildSink
from .operators.sinks import CoordinatorSink, LocalExchangeSink, TaskOutputSink
from .operators.sorting import SortOperator, TopNOperator
from .operators.sources import ExchangeSource, LocalExchangeSource, ScanSource
from .splits import RemoteSplit, SplitFeed

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from .spill import QueryMemory


@dataclass(frozen=True, order=True)
class TaskId:
    stage: int
    seq: int

    def __str__(self) -> str:
        return f"task{self.stage}_{self.seq}"


class PipelineRuntime:
    def __init__(self, spec: PipelineSpec):
        self.spec = spec
        self.drivers: list[Driver] = []
        self.finished_drivers = 0

    @property
    def active_drivers(self) -> int:
        return len(self.drivers) - self.finished_drivers

    @property
    def finished(self) -> bool:
        return bool(self.drivers) and self.finished_drivers >= len(self.drivers)


class Task:
    def __init__(
        self,
        kernel: SimKernel,
        config: EngineConfig,
        layout: FragmentLayout,
        seq: int,
        node: "Node",
        storage_nodes: dict[int, "Node"] | None = None,
        split_feed: SplitFeed | None = None,
        collect_output: Callable[[Page], None] | None = None,
        on_finished: Callable[["Task"], None] | None = None,
        on_error: Callable[["Task", Exception], None] | None = None,
        query_id: int | None = None,
        trace_parent: int | None = None,
        memory: "QueryMemory | None" = None,
    ):
        self.kernel = kernel
        self.config = config
        self.cost = config.cost
        self.layout = layout
        self.fragment = layout.fragment
        self.task_id = TaskId(self.fragment.id, seq)
        self.node = node
        self.storage_nodes = storage_nodes or {}
        self.split_feed = split_feed
        self.collect_output = collect_output
        self.on_finished = on_finished
        self.on_error = on_error
        self.created_at = kernel.now
        self.finished_at: float | None = None
        self.finished = False
        #: Set by fault injection / node death; crashed tasks never run
        #: another driver quantum and never fire ``on_finished``.
        self.crashed = False
        self.crash_reason: str | None = None
        self.error: Exception | None = None
        #: Set once the recovery manager has dealt with this crashed task.
        self.recovered = False
        #: Driver quanta currently holding a core (their commits are
        #: quantum-atomic: they deliver even across a crash, so recovery
        #: waits for them before sealing the old output spool).
        self.inflight_quanta = 0
        self._drain_callbacks: list = []
        self.query_id = query_id
        #: Per-query memory accounting; None means unlimited (no budget).
        self.memory = memory
        self._op_seq = 0
        self._memory_handles: list = []
        self.trace_span = kernel.tracer.begin(
            "task",
            str(self.task_id),
            parent=trace_parent,
            node=node.name,
            query_id=query_id,
        )

        self.output_buffer = self._make_output_buffer()
        self.exchange_clients: dict[int, ExchangeClient] = {
            child: ExchangeClient(
                kernel,
                config.buffers,
                self.cost,
                node,
                name=f"{self.task_id}.x{child}",
            )
            for child in layout.exchange_children
        }
        self.local_exchanges = [
            LocalExchange(f"{self.task_id}.lx{i}")
            for i in range(layout.local_exchanges)
        ]
        self.bridges = [
            JoinBridge(
                kernel,
                b.build_schema,
                list(b.build_keys),
                f"{self.task_id}.b{b.id}",
                memory=self._op_memory(f"b{b.id}"),
                offload=kernel.offload,
            )
            for b in layout.bridges
        ]
        self._bridge_by_join = {
            id(spec.join): i for i, spec in enumerate(layout.bridges)
        }
        self.pipelines = [PipelineRuntime(spec) for spec in layout.pipelines]
        node.task_count += 1
        if self.trace_span > 0:
            # Buffers report turn-up/resize instants under this task's span.
            self.output_buffer.trace_parent = self.trace_span
            for client in self.exchange_clients.values():
                client.buffer.trace_parent = self.trace_span

    # ------------------------------------------------------------------
    def _op_memory(self, label: str):
        """An accounting handle for one stateful operator of this task
        (None when the query runs without memory accounting)."""
        if self.memory is None:
            return None
        self._op_seq += 1
        handle = self.memory.operator(
            f"{self.task_id}.{label}.{self._op_seq}", trace_parent=self.trace_span
        )
        self._memory_handles.append(handle)
        return handle

    # ------------------------------------------------------------------
    def _make_output_buffer(self) -> TaskOutputBuffer:
        spec = self.fragment.output
        cache = spec.cache and self.config.intermediate_data_cache
        name = f"{self.task_id}.out"
        if spec.mode is OutputMode.HASH:
            return ShuffleOutputBuffer(
                self.kernel,
                self.config.buffers,
                key_positions=list(spec.keys),
                cpu=self.node.cpu,
                cost=self.cost,
                cache_pages=cache,
                name=name,
            )
        return SharedOutputBuffer(
            self.kernel, self.config.buffers, spec.mode, cache_pages=cache, name=name
        )

    # ------------------------------------------------------------------
    # wiring (called by the scheduler / dynamic scheduler)
    # ------------------------------------------------------------------
    def add_upstream(self, child_fragment: int, split: RemoteSplit) -> None:
        """Register an upstream task in the global remote split set."""
        client = self.exchange_clients.get(child_fragment)
        if client is None:
            raise SchedulingError(
                f"{self.task_id} has no exchange for stage {child_fragment}"
            )
        client.add_split(split)

    # ------------------------------------------------------------------
    # driver management
    # ------------------------------------------------------------------
    def start(self, task_dop: int) -> None:
        for runtime in self.pipelines:
            count = task_dop if runtime.spec.tunable else 1
            for _ in range(max(1, count)):
                self._spawn_driver(runtime)

    def add_drivers(self, pipeline_id: int, count: int) -> int:
        """Intra-task DOP increase (Section 4.3). Returns drivers created."""
        runtime = self._pipeline(pipeline_id)
        if runtime.finished or self.finished:
            return 0
        for _ in range(count):
            self._spawn_driver(runtime)
        return count

    def remove_drivers(self, pipeline_id: int, count: int) -> int:
        """Intra-task DOP decrease via end signals (Section 4.3)."""
        runtime = self._pipeline(pipeline_id)
        candidates = [
            d for d in runtime.drivers if not d.finished and not d.end_requested
        ]
        # Always keep at least one driver alive.
        removable = max(0, min(count, len(candidates) - 1))
        for driver in candidates[:removable]:
            driver.request_end()
        return removable

    def driver_count(self, pipeline_id: int | None = None) -> int:
        if pipeline_id is not None:
            return self._pipeline(pipeline_id).active_drivers
        return sum(p.active_drivers for p in self.pipelines)

    def _pipeline(self, pipeline_id: int) -> PipelineRuntime:
        for runtime in self.pipelines:
            if runtime.spec.id == pipeline_id:
                return runtime
        raise SchedulingError(f"{self.task_id}: no pipeline {pipeline_id}")

    @property
    def tunable_pipeline(self) -> PipelineRuntime:
        """The pipeline targeted by task-DOP tuning (the output pipeline)."""
        return self.pipelines[-1]

    def _spawn_driver(self, runtime: PipelineRuntime) -> Driver:
        spec = runtime.spec
        driver = Driver(
            task=self,
            pipeline_id=spec.id,
            driver_id=len(runtime.drivers),
            source=self._make_source(spec),
            transforms=[self._make_transform(n) for n in spec.transforms],
            sink=self._make_sink(spec),
        )
        runtime.drivers.append(driver)
        driver.start()
        return driver

    def _make_source(self, spec: PipelineSpec) -> SourceOperator:
        src = spec.source
        if src.kind == "scan":
            if self.split_feed is None:
                raise SchedulingError(f"{self.task_id}: scan task without split feed")
            return ScanSource(
                self.kernel,
                self.cost,
                self.split_feed,
                self.node,
                self.config.page_row_limit,
                self.storage_nodes,
                column_indexes=src.column_indexes,
            )
        if src.kind == "exchange":
            return ExchangeSource(self.cost, self.exchange_clients[src.child_fragment])
        if src.kind == "local_exchange":
            return LocalExchangeSource(
                self.cost, self.local_exchanges[src.local_exchange]
            )
        raise SchedulingError(f"unknown source kind {src.kind}")

    def _make_sink(self, spec: PipelineSpec) -> SinkOperator:
        sink = spec.sink
        if sink.kind == "task_output":
            return TaskOutputSink(self.cost, self.output_buffer)
        if sink.kind == "local_exchange":
            return LocalExchangeSink(self.cost, self.local_exchanges[sink.local_exchange])
        if sink.kind == "join_build":
            return JoinBuildSink(self.cost, self.bridges[sink.bridge])
        if sink.kind == "coordinator":
            if self.collect_output is None:
                raise SchedulingError(f"{self.task_id}: no output collector")
            return CoordinatorSink(self.cost, self.collect_output)
        raise SchedulingError(f"unknown sink kind {sink.kind}")

    def _make_transform(self, node: PNode) -> TransformOperator:
        compiled = self.config.compiled_expressions
        offload = self.kernel.offload
        if isinstance(node, PFilterNode):
            return FilterOperator(
                self.cost, node.predicate, compiled=compiled, offload=offload
            )
        if isinstance(node, PProjectNode):
            return ProjectOperator(
                self.cost, node.exprs, node.schema, compiled=compiled,
                offload=offload,
            )
        if isinstance(node, PPartialAggNode):
            return PartialAggOperator(
                self.cost,
                node.group_keys,
                node.aggregates,
                node.schema,
                row_limit=self.config.page_row_limit,
                group_limit=self.config.partial_agg_group_limit,
                compiled=compiled,
                memory=self._op_memory("partial_agg"),
                offload=offload,
            )
        if isinstance(node, PFinalAggNode):
            return FinalAggOperator(
                self.cost,
                len(node.group_keys),
                node.aggregates,
                node.schema,
                row_limit=self.config.page_row_limit,
                memory=self._op_memory("final_agg"),
                offload=offload,
            )
        if isinstance(node, PJoinNode):
            bridge = self.bridges[self._bridge_by_join[id(node)]]
            return HashJoinProbeOperator(
                self.cost,
                bridge,
                node.join_type,
                node.probe_keys,
                node.residual,
                node.schema,
                compiled=compiled,
            )
        if isinstance(node, PTopNNode):
            return TopNOperator(
                self.cost, node.schema, node.count, node.sort_keys, node.partial,
                row_limit=self.config.page_row_limit,
            )
        if isinstance(node, PSortNode):
            return SortOperator(
                self.cost, node.schema, node.sort_keys,
                row_limit=self.config.page_row_limit,
            )
        if isinstance(node, PLimitNode):
            return LimitOperator(self.cost, node.count, node.partial)
        raise SchedulingError(f"no operator for {type(node).__name__}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def driver_finished(self, driver: Driver) -> None:
        runtime = self._pipeline(driver.pipeline_id)
        runtime.finished_drivers += 1
        if all(p.finished for p in self.pipelines) and not self.finished:
            self._finish()

    def _finish(self) -> None:
        # A shuffle output buffer may still hold in-flight partitioning
        # work; the task stays alive (and its stage tunable) until the
        # shuffle executors drain.
        pending = getattr(self.output_buffer, "_pending_shuffles", 0)
        if pending:
            self.output_buffer.on_drained.add(self._finish)
            return
        self.finished = True
        self.finished_at = self.kernel.now
        self.node.task_count -= 1
        self._release_memory()
        self._release_offload()
        self.output_buffer.task_finished()
        self.kernel.tracer.end(self.trace_span)
        if self.on_finished is not None:
            self.on_finished(self)

    def _release_memory(self) -> None:
        """Return this task's tracked bytes to the query budget (finished
        or crashed tasks no longer hold operator state)."""
        for handle in self._memory_handles:
            handle.report(0)

    def _release_offload(self) -> None:
        """Unpin this task's build indexes from the worker pool."""
        for bridge in self.bridges:
            bridge.release_offload()

    def crash(self, reason: str = "node down") -> None:
        """Kill this task mid-execution (fault injection).

        Marks the task dead so pending driver quanta become no-ops.  The
        output buffer is deliberately left untouched: already-spooled
        pages survive on durable storage, and the recovery manager decides
        whether to keep (resumable scan) or abort (restart) them.
        ``on_finished`` is *not* fired — the stage does not count a
        crashed task as completed work."""
        if self.finished or self.crashed:
            return
        self.crashed = True
        self.finished = True
        self.finished_at = self.kernel.now
        self.node.task_count -= 1
        self._release_memory()
        self._release_offload()
        self.crash_reason = reason
        self.kernel.tracer.end(self.trace_span, crashed=True, reason=reason)
        for client in self.exchange_clients.values():
            client.close()

    def report_error(self, exc: Exception) -> None:
        """A driver quantum raised: record it and escalate to the query."""
        if self.error is not None:
            return
        self.error = exc
        self.crash(reason=f"operator error: {exc}")
        if self.on_error is not None:
            self.on_error(self, exc)

    def when_quanta_drained(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` once no driver quantum of this task holds a core
        (immediately if none does)."""
        if self.inflight_quanta == 0:
            fn()
        else:
            self._drain_callbacks.append(fn)

    def quantum_done(self) -> None:
        self.inflight_quanta -= 1
        if self.inflight_quanta == 0 and self._drain_callbacks:
            callbacks, self._drain_callbacks = self._drain_callbacks, []
            for fn in callbacks:
                fn()

    # ------------------------------------------------------------------
    # runtime information (task context, Figure 18)
    # ------------------------------------------------------------------
    def info(self) -> dict:
        exchange_turnups = sum(
            c.buffer.turn_up_counter for c in self.exchange_clients.values()
        )
        return {
            "task": str(self.task_id),
            "node": self.node.id,
            "rows_out": self.output_buffer.rows_out,
            "bytes_out": self.output_buffer.bytes_out,
            "rows_received": sum(
                c.rows_received for c in self.exchange_clients.values()
            ),
            "exchange_turn_up": exchange_turnups,
            "output_turn_up": self.output_buffer.capacity.turn_up_counter,
            "drivers": self.driver_count(),
            "finished": self.finished,
            "build_seconds": max(
                (b.build_seconds for b in self.bridges), default=0.0
            ),
            "builds_ready": all(b.ready for b in self.bridges),
        }

    def cpu_seconds(self) -> float:
        """Total virtual CPU time consumed by this task's drivers."""
        return sum(
            d.cpu_time for p in self.pipelines for d in p.drivers
        )

    def quanta(self) -> int:
        """Total driver quanta executed by this task."""
        return sum(d.quanta for p in self.pipelines for d in p.drivers)

    def peak_tracked_bytes(self) -> int:
        """Sum of peak tracked bytes across this task's operator state."""
        return sum(h.peak_bytes for h in self._memory_handles)
