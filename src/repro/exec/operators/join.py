"""Hash join: bridge (shared vectorized index), build sink, probe transform.

One :class:`JoinBridge` exists per task.  Build pipelines feed it through
:class:`JoinBuildSink`; once every build driver has finished, the bridge
finalises its index, records the build duration (the ``T_build`` measured
by the evaluation, Sections 5.2/6.3), and wakes the probe drivers that
were blocked on it.  Probe drivers share the read-only index.

The index is CSR-style and fully columnar (DESIGN.md §8): composite build
keys are factorized to dense int64 group codes, build rows are argsorted
by code, and the bridge stores ``(sorted_rows, group_starts, group
dictionaries)``.  Probing maps a whole page of probe keys onto build
group ids in one vectorized pass — ``searchsorted`` against the sorted
per-column uniques for numeric keys, one dict lookup per *distinct* value
(not per row) for object keys — then expands matches with ``np.repeat``
and fancy indexing.  No per-row python loop survives on the numeric path.

Out-of-core mode (DESIGN.md §13): when the query's memory budget is
exceeded while the build side accumulates, the bridge switches to a
Grace-style radix plan — build pages go to spilled partitions instead of
the in-memory index, probe pages are partitioned the same way, and once
the probe input ends the partitions are joined pairwise, building one
in-memory :class:`_BuildIndex` per partition so peak memory stays near
``build_bytes / fanout`` instead of ``build_bytes``.  Oversized
partitions repartition recursively on the next radix digit, guarded by a
max depth and a strict-shrink check (a single pathological key cannot
recurse forever).  CROSS joins have no keys to partition on and never
spill.
"""

from __future__ import annotations

import itertools

import numpy as np

from ...buffers.elastic import WaiterList
from ...config import CostModel
from ...errors import ExecutionError
from ...pages import Page, Schema, concat_pages
from ...plan.logical import JoinType
from ...sql.compiler import compile_expression
from ...sql.expressions import BoundExpr
from ..spill import OperatorMemory, SpillPartitions
from .base import SinkOperator, TransformOperator

_INT64_MAX = np.iinfo(np.int64).max


def _dense_int_lut(uniq: np.ndarray) -> tuple[np.ndarray, int] | None:
    """(value - base) -> column code table for densely packed int keys.

    TPC-H join keys are near-dense integers, so a direct-address table
    beats a binary search per probe row.  Only built when the value range
    stays within 64x the distinct count (selective build filters leave
    sparse-ish key sets) and an absolute entry cap, bounding memory.
    """
    if len(uniq) == 0 or not np.issubdtype(uniq.dtype, np.integer):
        return None
    base = int(uniq[0])
    span = int(uniq[-1]) - base + 1
    if span > 64 * len(uniq) + 4096 or span > 1 << 22:
        return None
    table = np.full(span, -1, dtype=np.int64)
    table[uniq.astype(np.int64) - base] = np.arange(len(uniq), dtype=np.int64)
    return table, base


class _BuildIndex:
    """CSR join index over one build-side page.

    Extracted from the bridge so the out-of-core path can build one small
    index per spilled partition; the in-memory path builds exactly one
    over the whole build side.
    """

    def __init__(self, build_page: Page, build_keys: list[int]):
        self.build_page = build_page
        self._reset()
        key_cols = [build_page.columns[k] for k in build_keys]
        if key_cols and build_page.num_rows:
            self._init_from_keys(key_cols)

    @classmethod
    def from_key_columns(cls, key_cols: list[np.ndarray]) -> "_BuildIndex":
        """Index over bare key columns, without a build page.

        This is how pool workers derive the probe index from a pinned
        shared-memory segment: construction is deterministic given the
        key arrays, so every worker — and the host fallback indexing the
        same columns — produces the identical CSR structure.  Combining
        matched rows into output pages stays host-side, so the missing
        ``build_page`` is never touched on this path.
        """
        index = cls.__new__(cls)
        index.build_page = None
        index._reset()
        if key_cols and len(key_cols[0]):
            index._init_from_keys(list(key_cols))
        return index

    def _reset(self) -> None:
        self.num_groups = 0
        self.sorted_rows = np.zeros(0, dtype=np.int64)
        self.group_starts = np.zeros(1, dtype=np.int64)
        self.group_counts = np.zeros(0, dtype=np.int64)
        self._col_uniques: list[np.ndarray] = []
        self._col_dicts: list[dict | None] = []
        self._col_luts: list[tuple[np.ndarray, int] | None] = []
        self._radices: list[int] = []
        self._ucomb = np.zeros(0, dtype=np.int64)
        self._identity_comb = False
        self._fallback_table: dict[tuple, int] | None = None

    def _init_from_keys(self, key_cols: list[np.ndarray]) -> None:
        codes = self._factorize(key_cols)
        order = np.argsort(codes, kind="stable")
        counts = np.bincount(codes, minlength=self.num_groups).astype(np.int64)
        starts = np.zeros(self.num_groups + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        self.sorted_rows = order.astype(np.int64, copy=False)
        self.group_starts = starts
        self.group_counts = counts

    def _factorize(self, key_cols: list[np.ndarray]) -> np.ndarray:
        """Factorize build keys; returns a dense group code per build row."""
        per_col_codes: list[np.ndarray] = []
        for col in key_cols:
            uniq, inv = np.unique(col, return_inverse=True)
            self._col_uniques.append(uniq)
            self._radices.append(max(1, len(uniq)))
            self._col_dicts.append(
                {v: i for i, v in enumerate(uniq.tolist())}
                if col.dtype == object
                else None
            )
            self._col_luts.append(_dense_int_lut(uniq))
            per_col_codes.append(inv.astype(np.int64))
        radix_product = 1
        for r in self._radices:
            radix_product *= r
        if radix_product <= _INT64_MAX:
            if len(per_col_codes) == 1:
                # Single key column: the per-column code IS the group id
                # (every code 0..r-1 occurs), so skip the combined unique.
                self._identity_comb = True
                self.num_groups = self._radices[0]
                return per_col_codes[0]
            combined = per_col_codes[0]
            for inv, r in zip(per_col_codes[1:], self._radices[1:]):
                combined = combined * r + inv
            self._ucomb, codes = np.unique(combined, return_inverse=True)
            codes = codes.astype(np.int64)
            self.num_groups = len(self._ucomb)
            return codes
        # Mixed-radix packing would overflow int64 (astronomically wide
        # composite keys): fall back to a per-distinct-key dict.
        table: dict[tuple, int] = {}
        codes = np.empty(len(key_cols[0]), dtype=np.int64)
        for i, key in enumerate(zip(*[c.tolist() for c in key_cols])):
            gid = table.get(key)
            if gid is None:
                gid = len(table)
                table[key] = gid
            codes[i] = gid
        self._fallback_table = table
        self.num_groups = len(table)
        return codes

    def probe_group_ids(self, key_cols: list[np.ndarray]) -> np.ndarray:
        """Map each probe row to its build group id, or -1 for no match."""
        n = len(key_cols[0]) if key_cols else 0
        if not key_cols or self.num_groups == 0:
            return np.full(n, -1, dtype=np.int64)
        if (
            self._identity_comb
            and self._col_luts[0] is not None
            and np.issubdtype(key_cols[0].dtype, np.integer)
        ):
            # Single dense-int key (the dominant TPC-H case): the LUT
            # already holds -1 for in-span misses, so one clipped gather
            # replaces the generic mask/combine machinery below.
            table, base = self._col_luts[0]
            rel = key_cols[0].astype(np.int64, copy=False) - base
            gid = table.take(rel, mode="clip")
            oob = (rel < 0) | (rel >= len(table))
            if oob.any():
                gid = np.where(oob, np.int64(-1), gid)
            return gid
        if self._fallback_table is not None:
            table = self._fallback_table
            return np.fromiter(
                (
                    table.get(key, -1)
                    for key in zip(*[c.tolist() for c in key_cols])
                ),
                dtype=np.int64,
                count=n,
            )
        valid: np.ndarray | None = None
        combined = None
        for col, uniq, vdict, lut, radix in zip(
            key_cols,
            self._col_uniques,
            self._col_dicts,
            self._col_luts,
            self._radices,
        ):
            if vdict is not None:
                # Object keys: one dict lookup per *distinct* probe value.
                uvals, inv = np.unique(col, return_inverse=True)
                code_of = np.fromiter(
                    (vdict.get(v, -1) for v in uvals.tolist()),
                    dtype=np.int64,
                    count=len(uvals),
                )
                code = code_of[inv]
                ok = code >= 0
                code = np.where(ok, code, 0)
            elif lut is not None and np.issubdtype(col.dtype, np.integer):
                # Dense integer keys: O(1) direct lookup per row.
                table, base = lut
                rel = col.astype(np.int64, copy=False) - base
                inside = (rel >= 0) & (rel < len(table))
                code = table[np.where(inside, rel, 0)]
                ok = inside & (code >= 0)
                code = np.where(ok, code, 0)
            else:
                pos = np.searchsorted(uniq, col)
                code = np.minimum(pos, len(uniq) - 1)
                ok = (pos < len(uniq)) & (uniq[code] == col)
            valid = ok if valid is None else valid & ok
            combined = code if combined is None else combined * radix + code
        if not self._identity_comb:
            gid = np.searchsorted(self._ucomb, combined)
            gid = np.minimum(gid, len(self._ucomb) - 1)
            valid &= self._ucomb[gid] == combined
        else:
            gid = combined
        return np.where(valid, gid, -1)

    def expand_matches(
        self, gids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR expansion: (probe_rows, build_rows) index pairs for all
        matches, in probe-row order with build rows ascending per probe."""
        matched = np.nonzero(gids >= 0)[0]
        if matched.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        mgids = gids[matched]
        repeats = self.group_counts[mgids]
        probe_rows = np.repeat(matched, repeats)
        total = int(repeats.sum())
        ends = np.cumsum(repeats)
        within = np.arange(total, dtype=np.int64) - np.repeat(ends - repeats, repeats)
        build_rows = self.sorted_rows[np.repeat(self.group_starts[mgids], repeats) + within]
        return probe_rows, build_rows


class JoinBridge:
    """Shared build-side state of one task's hash join."""

    def __init__(
        self,
        kernel,
        build_schema: Schema,
        build_keys: list[int],
        name: str = "bridge",
        memory: OperatorMemory | None = None,
        offload=None,
    ):
        self.kernel = kernel
        self.build_schema = build_schema
        self.build_keys = build_keys
        self.name = name
        self.memory = memory
        self.offload = offload
        #: Set when the build keys are pinned to the worker pool; probe
        #: pages then ship to workers instead of the host index.
        self.offload_index_id: int | None = None
        self._build_page: Page | None = None
        self.pages: list[Page] = []
        self.build_rows = 0
        self.ready = False
        self.on_ready = WaiterList()
        self._producers = 0
        self._finished_producers = 0
        self.created_at = kernel.now
        self.first_page_at: float | None = None
        self.ready_at: float | None = None
        #: Populated by _finalize() on the in-memory path; None when spilled.
        self.index: _BuildIndex | None = None
        # Out-of-core (Grace) state.
        self.spilled = False
        self.grace_done = False
        self.build_spill: SpillPartitions | None = None
        self.probe_spill: SpillPartitions | None = None
        self._tracked = 0
        self._spill_seq = itertools.count()

    # -- index delegation (stable surface for probe operators and tests) --
    @property
    def build_page(self) -> Page | None:
        return self._build_page

    def ensure_index(self) -> _BuildIndex:
        """The host-side index, built lazily.

        When the build keys are pinned to the worker pool the host never
        pays for index construction unless some path actually needs it
        (sub-threshold probe pages, tests poking at the index surface).
        """
        if self.index is None:
            self.index = _BuildIndex(self._build_page, self.build_keys)
        return self.index

    @property
    def num_groups(self) -> int:
        if self._build_page is None:
            return 0
        return self.ensure_index().num_groups

    def probe_group_ids(self, key_cols: list[np.ndarray]) -> np.ndarray:
        return self.ensure_index().probe_group_ids(key_cols)

    def expand_matches(self, gids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.ensure_index().expand_matches(gids)

    # -- build side -------------------------------------------------------
    def register_producer(self) -> None:
        self._producers += 1

    def add_page(self, page: Page) -> float:
        """Accumulate one build page; returns the virtual spill-I/O cost
        incurred (0.0 while the build stays in memory)."""
        if self.ready:
            raise ExecutionError(f"{self.name}: build page after finalize")
        if self.first_page_at is None:
            self.first_page_at = self.kernel.now
        self.build_rows += page.num_rows
        if self.spilled:
            nbytes = self.build_spill.write_page(page)
            return self.memory.spill_written(
                nbytes, self.build_spill.partitions_written, "build"
            )
        self.pages.append(page)
        if self.memory is not None:
            self._tracked += page.size_bytes
            # CROSS joins have no keys to partition on: they stay in
            # memory even over budget (documented fallback).
            if self.memory.update(self._tracked) and self.build_keys:
                return self._enter_spill_mode()
        return 0.0

    def _enter_spill_mode(self) -> float:
        """Switch to the Grace plan: flush accumulated build pages to
        radix partitions and stop growing the in-memory build."""
        query = self.memory.query
        self.build_spill = SpillPartitions(
            query.spill_directory(),
            f"{self.name}.build",
            self.build_schema,
            self.build_keys,
            query.config.spill_fanout,
            offload=self.offload,
        )
        nbytes = 0
        for page in self.pages:
            nbytes += self.build_spill.write_page(page)
        self.pages = []
        self.spilled = True
        self._tracked = 0
        self.memory.update(0)
        return self.memory.spill_written(
            nbytes, self.build_spill.partitions_written, "build"
        )

    def producer_finished(self) -> None:
        self._finished_producers += 1
        if self._producers and self._finished_producers >= self._producers:
            self._finalize()

    def _finalize(self) -> None:
        if self.spilled:
            # Index construction is deferred to the probe side, one
            # partition at a time (HashJoinProbeOperator._grace_join).
            self.build_spill.finish()
        else:
            self._build_page = concat_pages(self.build_schema, self.pages)
            self.pages = []
            if self.memory is not None:
                self._tracked = self._build_page.size_bytes
                self.memory.update(self._tracked)
            if (
                self.offload is not None
                and self.offload.config.offload_join
                and self.build_keys
                and self._build_page.num_rows
            ):
                # Ship the build keys to the pool once; workers derive
                # the identical index lazily.  The host index stays lazy
                # too (ensure_index) for sub-threshold probe pages.
                self.offload_index_id = self.offload.pin_index(
                    [self._build_page.columns[k] for k in self.build_keys]
                )
            else:
                self.index = _BuildIndex(self._build_page, self.build_keys)
        self.ready = True
        self.ready_at = self.kernel.now
        self.on_ready.notify_all()

    def release_spill(self) -> None:
        """Drop the spilled partition files (after the grace join ran)."""
        if self.build_spill is not None:
            self.build_spill.delete()
        if self.probe_spill is not None:
            self.probe_spill.delete()

    def release_offload(self) -> None:
        """Unpin the build keys from the worker pool (task end/crash)."""
        if self.offload_index_id is not None:
            self.offload.release_index(self.offload_index_id)
            self.offload_index_id = None

    @property
    def build_seconds(self) -> float:
        """T_build for this task: first build page to hash-table-ready.

        Measures the reconstruction work itself (transfer + insert), not
        the wait for the upstream stage to start producing — matching the
        paper's red-line-to-yellow-line interval.
        """
        start = self.first_page_at if self.first_page_at is not None else self.created_at
        if self.ready_at is None:
            return self.kernel.now - start
        return self.ready_at - start


class JoinBuildSink(SinkOperator):
    name = "hash_join_build"
    row_cost_attr = "join_build_row_cost"

    def __init__(self, cost: CostModel, bridge: JoinBridge):
        self.cost = cost
        self.bridge = bridge
        bridge.register_producer()

    def deliver(self, pages: list[Page]) -> float:
        rows = 0
        spill_cost = 0.0
        for page in pages:
            spill_cost += self.bridge.add_page(page)
            rows += page.num_rows
        return rows * self.cost.join_build_row_cost * self.cost.cpu_multiplier + spill_cost

    def driver_finished(self) -> None:
        self.bridge.producer_finished()


class HashJoinProbeOperator(TransformOperator):
    name = "hash_join_probe"

    def __init__(
        self,
        cost: CostModel,
        bridge: JoinBridge,
        join_type: JoinType,
        probe_keys: list[int],
        residual: BoundExpr | None,
        output_schema: Schema,
        compiled: bool = True,
    ):
        super().__init__(cost)
        self.bridge = bridge
        self.join_type = join_type
        self.probe_keys = probe_keys
        self.residual = residual
        if residual is None:
            self._residual_evaluate = None
        elif compiled:
            self._residual_evaluate = compile_expression(residual)
        else:
            self._residual_evaluate = residual.evaluate
        self.output_schema = output_schema
        self.rows_probed = 0

    may_wait = True

    def waits_on(self) -> WaiterList | None:
        if not self.bridge.ready:
            return self.bridge.on_ready
        return None

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            bridge = self.bridge
            if bridge.spilled and not bridge.grace_done:
                # First probe driver to drain its input runs the grace
                # join.  Safe with multiple drivers: every earlier data
                # page was partitioned to disk synchronously within its
                # own quantum, and end pages always trail the data.
                bridge.grace_done = True
                pages, cost = self._grace_join()
                bridge.release_spill()
                return pages + [page], cost
            return [page], 0.0
        if not self.bridge.ready:
            raise ExecutionError("probe ran before hash table was ready")
        self.rows_probed += page.num_rows
        cpu = self.cpu(page.num_rows, self.cost.join_probe_row_cost)

        if self.bridge.spilled:
            return self._spill_probe_page(page, cpu)

        if self.join_type is JoinType.CROSS:
            return self._cross(page, cpu)

        bridge = self.bridge
        if bridge.offload_index_id is not None and bridge.offload.want(
            True, page.num_rows
        ):
            pages, extra = self._probe_offload(page)
        else:
            pages, extra = self._probe_with(bridge.ensure_index(), page)
        return pages, cpu + extra

    def _probe_offload(self, page: Page) -> tuple[list[Page], float]:
        """Probe one page on the worker pool against the pinned index.

        Mirrors :meth:`_probe_with` decision for decision: the pool
        chunks the probe keys by row range and concatenates per-chunk
        results in chunk order, which is bit-identical to the host's
        whole-page ``probe_group_ids`` + ``expand_matches`` (both are
        probe-row-ordered).  Residual evaluation and page combination
        stay on the host, so virtual costs accrue identically.
        """
        bridge = self.bridge
        offload = bridge.offload
        key_cols = [page.columns[k] for k in self.probe_keys]
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            join = "semi" if self.join_type is JoinType.SEMI else "anti"
            mask = offload.probe_mask(bridge.offload_index_id, key_cols, join)
            if not mask.any():
                return [], 0.0
            return [page.mask(mask)], 0.0
        probe_rows, build_rows, _ = offload.probe_expand(
            bridge.offload_index_id, key_cols, need_mask=False
        )
        if len(probe_rows) == 0:
            return [], 0.0
        cpu = self.cpu(len(probe_rows), self.cost.join_probe_row_cost)
        out = self._combine(bridge.build_page, page, probe_rows, build_rows)
        if self._residual_evaluate is not None:
            mask = self._residual_evaluate(out).astype(bool, copy=False)
            if not mask.any():
                return [], cpu
            out = out.mask(mask)
        return [out], cpu

    def _probe_with(
        self, index: _BuildIndex, page: Page
    ) -> tuple[list[Page], float]:
        """Probe one page against one index (whole build or one spilled
        partition); returns output pages and the match-expansion cost."""
        key_cols = [page.columns[k] for k in self.probe_keys]
        gids = index.probe_group_ids(key_cols)
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            mask = (gids >= 0) == (self.join_type is JoinType.SEMI)
            if not mask.any():
                return [], 0.0
            return [page.mask(mask)], 0.0

        probe_rows, build_rows = index.expand_matches(gids)
        if len(probe_rows) == 0:
            return [], 0.0
        cpu = self.cpu(len(probe_rows), self.cost.join_probe_row_cost)
        out = self._combine(index.build_page, page, probe_rows, build_rows)
        if self._residual_evaluate is not None:
            mask = self._residual_evaluate(out).astype(bool, copy=False)
            if not mask.any():
                return [], cpu
            out = out.mask(mask)
        return [out], cpu

    def _combine(
        self,
        build_page: Page,
        page: Page,
        probe_rows: np.ndarray,
        build_rows: np.ndarray,
    ) -> Page:
        columns = [c[probe_rows] for c in page.columns]
        columns += [c[build_rows] for c in build_page.columns]
        return Page(self.output_schema, columns)

    def _cross(self, page: Page, cpu: float) -> tuple[list[Page], float]:
        build_page = self.bridge.build_page
        nb = build_page.num_rows
        if nb == 0:
            return [], cpu
        probe_rows = np.repeat(np.arange(page.num_rows), nb)
        build_rows = np.tile(np.arange(nb), page.num_rows)
        cpu += self.cpu(len(probe_rows), self.cost.join_probe_row_cost)
        out = self._combine(build_page, page, probe_rows, build_rows)
        if self._residual_evaluate is not None:
            mask = self._residual_evaluate(out).astype(bool, copy=False)
            out = out.mask(mask)
        if out.num_rows == 0:
            return [], cpu
        return [out], cpu

    # -- out-of-core (Grace) probe path -----------------------------------
    def _spill_probe_page(
        self, page: Page, cpu: float
    ) -> tuple[list[Page], float]:
        """Route one probe page to the shared radix partitions on disk."""
        bridge = self.bridge
        if bridge.probe_spill is None:
            query = bridge.memory.query
            bridge.probe_spill = SpillPartitions(
                query.spill_directory(),
                f"{bridge.name}.probe",
                page.schema,
                self.probe_keys,
                query.config.spill_fanout,
                offload=bridge.offload,
            )
        nbytes = bridge.probe_spill.write_page(page)
        cpu += bridge.memory.spill_written(
            nbytes, bridge.probe_spill.partitions_written, "probe"
        )
        return [], cpu

    def _grace_join(self) -> tuple[list[Page], float]:
        """Join the spilled build/probe partitions pairwise."""
        bridge = self.bridge
        out: list[Page] = []
        cost = 0.0
        if bridge.probe_spill is None:
            return out, cost  # probe side produced no rows at all
        bridge.probe_spill.finish()  # flush buffered writers before reading
        memory = bridge.memory
        for p in range(bridge.memory.query.config.spill_fanout):
            probe_bytes = bridge.probe_spill.partition_bytes(p)
            if probe_bytes == 0:
                continue  # no probe rows → no output, even for ANTI
            build_bytes = bridge.build_spill.partition_bytes(p)
            cost += memory.spill_read(
                build_bytes + probe_bytes, f"partition {p}"
            )
            cost += self._join_partition(
                list(bridge.build_spill.read_pages(p)),
                bridge.probe_spill.read_pages(p),
                build_bytes,
                parent_bytes=_INT64_MAX,
                level=0,
                out=out,
            )
        return out, cost

    def _join_partition(
        self,
        build_pages: list[Page],
        probe_pages,
        build_bytes: int,
        parent_bytes: int,
        level: int,
        out: list[Page],
    ) -> float:
        """Join one partition pair in memory, or repartition it on the
        next radix digit when its build side still exceeds the budget.

        The strict-shrink guard (``build_bytes < parent_bytes``) together
        with the depth cap stops recursion on degenerate keys — a
        partition whose rows all share one key value lands in the same
        child partition at every level, so repartitioning it again would
        loop forever; such partitions fall back to an in-memory build.
        """
        bridge = self.bridge
        memory = bridge.memory
        config = memory.query.config
        budget = memory.query.budget_bytes
        cost = 0.0
        if (
            budget is not None
            and build_bytes > budget
            and level + 1 < config.spill_max_depth
            and build_bytes < parent_bytes
        ):
            directory = memory.query.spill_directory()
            seq = next(bridge._spill_seq)
            sub_build = SpillPartitions(
                directory,
                f"{bridge.name}.g{seq}.build",
                bridge.build_schema,
                bridge.build_keys,
                config.spill_fanout,
                level=level + 1,
                offload=bridge.offload,
            )
            written = 0
            for pg in build_pages:
                written += sub_build.write_page(pg)
            sub_build.finish()
            probe_schema = None
            sub_probe = None
            for pg in probe_pages:
                if sub_probe is None:
                    sub_probe = SpillPartitions(
                        directory,
                        f"{bridge.name}.g{seq}.probe",
                        pg.schema,
                        self.probe_keys,
                        config.spill_fanout,
                        level=level + 1,
                        offload=bridge.offload,
                    )
                written += sub_probe.write_page(pg)
            if sub_probe is not None:
                sub_probe.finish()
            cost += memory.spill_written(
                written,
                sub_build.partitions_written
                + (sub_probe.partitions_written if sub_probe else 0),
                f"repartition l{level + 1}",
            )
            if sub_probe is not None:
                for q in range(config.spill_fanout):
                    sub_probe_bytes = sub_probe.partition_bytes(q)
                    if sub_probe_bytes == 0:
                        continue
                    sub_bytes = sub_build.partition_bytes(q)
                    cost += memory.spill_read(
                        sub_bytes + sub_probe_bytes, f"partition l{level + 1}.{q}"
                    )
                    cost += self._join_partition(
                        list(sub_build.read_pages(q)),
                        sub_probe.read_pages(q),
                        sub_bytes,
                        parent_bytes=build_bytes,
                        level=level + 1,
                        out=out,
                    )
            sub_build.delete()
            if sub_probe is not None:
                sub_probe.delete()
            return cost

        build_page = concat_pages(bridge.build_schema, build_pages)
        index = _BuildIndex(build_page, bridge.build_keys)
        cost += self.cpu(build_page.num_rows, self.cost.join_build_row_cost)
        memory.update(bridge._tracked + build_page.size_bytes)
        for page in probe_pages:
            cost += self.cpu(page.num_rows, self.cost.join_probe_row_cost)
            pages, extra = self._probe_with(index, page)
            cost += extra
            out.extend(pages)
        memory.update(bridge._tracked)
        return cost
