"""Hash join: bridge (shared hash table), build sink, probe transform.

One :class:`JoinBridge` exists per task.  Build pipelines feed it through
:class:`JoinBuildSink`; once every build driver has finished, the bridge
finalises the hash table, records the build duration (the ``T_build``
measured by the evaluation, Sections 5.2/6.3), and wakes the probe drivers
that were blocked on it.  Probe drivers share the read-only table.
"""

from __future__ import annotations

import numpy as np

from ...buffers.elastic import WaiterList
from ...config import CostModel
from ...errors import ExecutionError
from ...pages import Page, Schema, concat_pages
from ...plan.logical import JoinType
from ...sql.expressions import BoundExpr
from .base import SinkOperator, TransformOperator


class JoinBridge:
    """Shared build-side state of one task's hash join."""

    def __init__(
        self,
        kernel,
        build_schema: Schema,
        build_keys: list[int],
        name: str = "bridge",
    ):
        self.kernel = kernel
        self.build_schema = build_schema
        self.build_keys = build_keys
        self.name = name
        self.pages: list[Page] = []
        self.build_rows = 0
        self.ready = False
        self.on_ready = WaiterList()
        self._producers = 0
        self._finished_producers = 0
        self.created_at = kernel.now
        self.first_page_at: float | None = None
        self.ready_at: float | None = None
        self.table: dict[tuple, np.ndarray] = {}
        self.build_page: Page | None = None

    # -- build side -------------------------------------------------------
    def register_producer(self) -> None:
        self._producers += 1

    def add_page(self, page: Page) -> None:
        if self.ready:
            raise ExecutionError(f"{self.name}: build page after finalize")
        if self.first_page_at is None:
            self.first_page_at = self.kernel.now
        self.pages.append(page)
        self.build_rows += page.num_rows

    def producer_finished(self) -> None:
        self._finished_producers += 1
        if self._producers and self._finished_producers >= self._producers:
            self._finalize()

    def _finalize(self) -> None:
        self.build_page = concat_pages(self.build_schema, self.pages)
        self.pages = []
        keys = [self.build_page.columns[k].tolist() for k in self.build_keys]
        buckets: dict[tuple, list[int]] = {}
        if keys:
            for i, key in enumerate(zip(*keys)):
                buckets.setdefault(key, []).append(i)
        self.table = {k: np.asarray(v, dtype=np.int64) for k, v in buckets.items()}
        self.ready = True
        self.ready_at = self.kernel.now
        self.on_ready.notify_all()

    @property
    def build_seconds(self) -> float:
        """T_build for this task: first build page to hash-table-ready.

        Measures the reconstruction work itself (transfer + insert), not
        the wait for the upstream stage to start producing — matching the
        paper's red-line-to-yellow-line interval.
        """
        start = self.first_page_at if self.first_page_at is not None else self.created_at
        if self.ready_at is None:
            return self.kernel.now - start
        return self.ready_at - start


class JoinBuildSink(SinkOperator):
    name = "hash_join_build"
    row_cost_attr = "join_build_row_cost"

    def __init__(self, cost: CostModel, bridge: JoinBridge):
        self.cost = cost
        self.bridge = bridge
        bridge.register_producer()

    def deliver(self, pages: list[Page]) -> float:
        rows = 0
        for page in pages:
            self.bridge.add_page(page)
            rows += page.num_rows
        return rows * self.cost.join_build_row_cost * self.cost.cpu_multiplier

    def driver_finished(self) -> None:
        self.bridge.producer_finished()


class HashJoinProbeOperator(TransformOperator):
    name = "hash_join_probe"

    def __init__(
        self,
        cost: CostModel,
        bridge: JoinBridge,
        join_type: JoinType,
        probe_keys: list[int],
        residual: BoundExpr | None,
        output_schema: Schema,
    ):
        super().__init__(cost)
        self.bridge = bridge
        self.join_type = join_type
        self.probe_keys = probe_keys
        self.residual = residual
        self.output_schema = output_schema
        self.rows_probed = 0

    def waits_on(self) -> WaiterList | None:
        if not self.bridge.ready:
            return self.bridge.on_ready
        return None

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            return [page], 0.0
        if not self.bridge.ready:
            raise ExecutionError("probe ran before hash table was ready")
        self.rows_probed += page.num_rows
        cpu = self.cpu(page.num_rows, self.cost.join_probe_row_cost)

        if self.join_type is JoinType.CROSS:
            return self._cross(page, cpu)

        keys = [page.columns[k].tolist() for k in self.probe_keys]
        table = self.bridge.table
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            want = self.join_type is JoinType.SEMI
            mask = np.fromiter(
                ((key in table) == want for key in zip(*keys)),
                dtype=bool,
                count=page.num_rows,
            )
            if not mask.any():
                return [], cpu
            return [page.mask(mask)], cpu

        probe_idx: list[int] = []
        build_chunks: list[np.ndarray] = []
        for i, key in enumerate(zip(*keys)):
            matches = table.get(key)
            if matches is not None:
                probe_idx.extend([i] * len(matches))
                build_chunks.append(matches)
        if not probe_idx:
            return [], cpu
        probe_rows = np.asarray(probe_idx, dtype=np.int64)
        build_rows = np.concatenate(build_chunks)
        cpu += self.cpu(len(probe_rows), self.cost.join_probe_row_cost)
        out = self._combine(page, probe_rows, build_rows)
        if self.residual is not None:
            mask = self.residual.evaluate(out).astype(bool, copy=False)
            if not mask.any():
                return [], cpu
            out = out.mask(mask)
        return [out], cpu

    def _combine(self, page: Page, probe_rows: np.ndarray, build_rows: np.ndarray) -> Page:
        build_page = self.bridge.build_page
        columns = [c[probe_rows] for c in page.columns]
        columns += [c[build_rows] for c in build_page.columns]
        return Page(self.output_schema, columns)

    def _cross(self, page: Page, cpu: float) -> tuple[list[Page], float]:
        build_page = self.bridge.build_page
        nb = build_page.num_rows
        if nb == 0:
            return [], cpu
        probe_rows = np.repeat(np.arange(page.num_rows), nb)
        build_rows = np.tile(np.arange(nb), page.num_rows)
        cpu += self.cpu(len(probe_rows), self.cost.join_probe_row_cost)
        out = self._combine(page, probe_rows, build_rows)
        if self.residual is not None:
            mask = self.residual.evaluate(out).astype(bool, copy=False)
            out = out.mask(mask)
        if out.num_rows == 0:
            return [], cpu
        return [out], cpu
