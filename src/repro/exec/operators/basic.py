"""Stateless transforms: filter, project, limit."""

from __future__ import annotations

import numpy as np

from ...config import CostModel
from ...pages import Page, Schema
from ...sql.compiler import compile_expression, compile_expressions
from ...sql.expressions import BoundExpr
from .base import TransformOperator


class FilterOperator(TransformOperator):
    name = "filter"

    def __init__(self, cost: CostModel, predicate: BoundExpr, compiled: bool = True):
        super().__init__(cost)
        self.predicate = predicate
        self._evaluate = (
            compile_expression(predicate) if compiled else predicate.evaluate
        )
        self.rows_in = 0
        self.rows_out = 0

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            return [page], 0.0
        self.rows_in += page.num_rows
        mask = self._evaluate(page).astype(bool, copy=False)
        cpu = self.cpu(page.num_rows, self.cost.filter_row_cost)
        if not mask.any():
            return [], cpu
        out = page.mask(mask) if not mask.all() else page
        self.rows_out += out.num_rows
        return [out], cpu


class ProjectOperator(TransformOperator):
    name = "project"

    def __init__(
        self,
        cost: CostModel,
        exprs: list[BoundExpr],
        schema: Schema,
        compiled: bool = True,
    ):
        super().__init__(cost)
        self.exprs = exprs
        self.schema = schema
        if compiled:
            # Joint compilation: subexpressions shared between projection
            # columns are computed once per page.
            self._evaluate = compile_expressions(exprs)
        else:
            self._evaluate = lambda page: [e.evaluate(page) for e in exprs]

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            return [page], 0.0
        columns = self._evaluate(page)
        cpu = self.cpu(page.num_rows * max(1, len(self.exprs)), self.cost.project_row_cost)
        return [Page(self.schema, columns)], cpu


class LimitOperator(TransformOperator):
    """Stops the pipeline early once ``count`` rows have passed.

    ``partial`` limits run in upstream stages (each task passes at most
    ``count`` rows); the final limit runs in stage 0.
    """

    name = "limit"

    def __init__(self, cost: CostModel, count: int, partial: bool = False):
        super().__init__(cost)
        self.count = count
        self.partial = partial
        self.remaining = count

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            return [page], 0.0
        if self.remaining <= 0:
            self.done_early = True
            return [], 0.0
        out = page
        if page.num_rows > self.remaining:
            out = page.slice(0, self.remaining)
        self.remaining -= out.num_rows
        if self.remaining <= 0:
            self.done_early = True
        cpu = self.cpu(out.num_rows, self.cost.project_row_cost)
        return [out], cpu
