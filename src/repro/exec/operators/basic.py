"""Stateless transforms: filter, project, limit."""

from __future__ import annotations

import numpy as np

from ...config import CostModel
from ...pages import Page, Schema
from ...sql.compiler import compile_expression, compile_expressions
from ...sql.expressions import BoundExpr, InputRef
from .base import TransformOperator


def _referenced_positions(exprs) -> list[int]:
    """Input-column positions an expression list reads, ascending.

    Compiled closures touch nothing but ``page.columns[i]`` at these
    positions (plus ``page.num_rows``), so they are exactly the columns a
    worker-side stub page needs to evaluate the expressions remotely.
    """
    return sorted({
        node.index
        for expr in exprs
        for node in expr.walk()
        if isinstance(node, InputRef)
    })


class FilterOperator(TransformOperator):
    name = "filter"

    def __init__(
        self,
        cost: CostModel,
        predicate: BoundExpr,
        compiled: bool = True,
        offload=None,
    ):
        super().__init__(cost)
        self.predicate = predicate
        self._evaluate = (
            compile_expression(predicate) if compiled else predicate.evaluate
        )
        # Workers always evaluate the compiled form; interpreted mode is
        # a host-side debugging path (the compiler's bit-identity contract
        # with the interpreter makes this safe, but keep modes apart).
        self.offload = offload if compiled else None
        self._spec_id: int | None = None
        self._positions: list[int] | None = None
        self.rows_in = 0
        self.rows_out = 0

    def _offload_mask(self, page: Page) -> np.ndarray:
        if self._spec_id is None:
            self._positions = _referenced_positions([self.predicate])
            self._spec_id = self.offload.register_spec(
                {"kind": "filter", "expr": self.predicate}
            )
        return self.offload.filter_mask(
            self._spec_id,
            [page.columns[i] for i in self._positions],
            self._positions,
            page.num_rows,
        )

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            return [page], 0.0
        self.rows_in += page.num_rows
        if self.offload is not None and self.offload.want(
            self.offload.config.offload_exprs, page.num_rows
        ):
            mask = self._offload_mask(page)
        else:
            mask = self._evaluate(page).astype(bool, copy=False)
        cpu = self.cpu(page.num_rows, self.cost.filter_row_cost)
        if not mask.any():
            return [], cpu
        out = page.mask(mask) if not mask.all() else page
        self.rows_out += out.num_rows
        return [out], cpu


class ProjectOperator(TransformOperator):
    name = "project"

    def __init__(
        self,
        cost: CostModel,
        exprs: list[BoundExpr],
        schema: Schema,
        compiled: bool = True,
        offload=None,
    ):
        super().__init__(cost)
        self.exprs = exprs
        self.schema = schema
        if compiled:
            # Joint compilation: subexpressions shared between projection
            # columns are computed once per page.
            self._evaluate = compile_expressions(exprs)
        else:
            self._evaluate = lambda page: [e.evaluate(page) for e in exprs]
        self.offload = offload if compiled else None
        self._spec_id: int | None = None
        self._positions: list[int] | None = None

    def _offload_columns(self, page: Page) -> list[np.ndarray]:
        if self._spec_id is None:
            self._positions = _referenced_positions(self.exprs)
            self._spec_id = self.offload.register_spec(
                {"kind": "project", "exprs": tuple(self.exprs)}
            )
        return self.offload.project_columns(
            self._spec_id,
            [page.columns[i] for i in self._positions],
            self._positions,
            page.num_rows,
        )

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            return [page], 0.0
        if self.offload is not None and self.offload.want(
            self.offload.config.offload_exprs, page.num_rows
        ):
            columns = self._offload_columns(page)
        else:
            columns = self._evaluate(page)
        cpu = self.cpu(page.num_rows * max(1, len(self.exprs)), self.cost.project_row_cost)
        return [Page(self.schema, columns)], cpu


class LimitOperator(TransformOperator):
    """Stops the pipeline early once ``count`` rows have passed.

    ``partial`` limits run in upstream stages (each task passes at most
    ``count`` rows); the final limit runs in stage 0.
    """

    name = "limit"

    def __init__(self, cost: CostModel, count: int, partial: bool = False):
        super().__init__(cost)
        self.count = count
        self.partial = partial
        self.remaining = count

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            return [page], 0.0
        if self.remaining <= 0:
            self.done_early = True
            return [], 0.0
        out = page
        if page.num_rows > self.remaining:
            out = page.slice(0, self.remaining)
        self.remaining -= out.num_rows
        if self.remaining <= 0:
            self.done_early = True
        cpu = self.cpu(out.num_rows, self.cost.project_row_cost)
        return [out], cpu
