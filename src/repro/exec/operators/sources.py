"""Source operators: table scan, exchange, local-exchange source."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...buffers import LocalExchange
from ...buffers.elastic import WaiterList
from ...config import CostModel
from ...pages import Page
from ...sim import SimKernel, transfer
from ..exchange_client import ExchangeClient
from ..splits import SplitFeed, SystemSplit
from .base import SourceOperator

if TYPE_CHECKING:  # pragma: no cover
    from ...cluster.node import Node


class ScanSource(SourceOperator):
    """Reads table pages from system splits acquired morsel-style.

    Splits local to the task's node are read directly; remote splits are
    transferred over the storage node's NIC before processing (the driver
    blocks for the transfer duration).
    """

    name = "table_scan"

    def __init__(
        self,
        kernel: SimKernel,
        cost: CostModel,
        feed: SplitFeed,
        node: "Node",
        page_rows: int,
        storage_nodes: dict[int, "Node"] | None = None,
        column_indexes: tuple[int, ...] | None = None,
    ):
        self.kernel = kernel
        self.cost = cost
        self.feed = feed
        self.node = node
        self.page_rows = page_rows
        self.column_indexes = column_indexes
        self.storage_nodes = storage_nodes or {}
        self.current: SystemSplit | None = None
        self.offset = 0
        self.rows_scanned = 0
        self._ended = False
        self._pending_page: Page | None = None
        self._transfer_waiters = WaiterList()
        self._transferring = False
        #: Failure-recovery bookkeeping: every split this source acquired
        #: (for full-restart release), the scan progress it charged to the
        #: feed (for compensation), and the page currently in network
        #: transfer whose rows were charged but never delivered.
        self._acquired: list[SystemSplit] = []
        self._recorded_rows = 0
        self._recorded_bytes = 0
        self._inflight: tuple[SystemSplit, int, Page] | None = None

    # -- SourceOperator -----------------------------------------------------
    def poll(self) -> tuple[Page | None, float]:
        if self._pending_page is not None:
            page, self._pending_page = self._pending_page, None
            self._inflight = None
            return page, self._page_cost(page)
        if self._transferring:
            return None, 0.0
        while True:
            if self.current is None:
                self.current = self.feed.acquire(preferred_node=self.node.id)
                self.offset = 0
                if self.current is None:
                    self._ended = True
                    return Page.end(), 0.0
                self._acquired.append(self.current)
            split = self.current
            page = split.read(self.offset, self.page_rows, self.column_indexes)
            self.offset += page.num_rows
            if self.offset >= split.num_rows:
                self.current = None
            if page.num_rows == 0:
                continue
            break
        self.rows_scanned += page.num_rows
        self.feed.record_scan(page.num_rows, page.size_bytes)
        self._recorded_rows += page.num_rows
        self._recorded_bytes += page.size_bytes
        storage = self.storage_nodes.get(split.storage_node)
        if storage is not None and storage is not self.node and storage.id != self.node.id:
            self._start_transfer(storage, split, page)
            return None, 0.0
        return page, self._page_cost(page)

    def _page_cost(self, page: Page) -> float:
        return page.num_rows * self.cost.scan_row_cost * self.cost.cpu_multiplier

    def _start_transfer(self, storage: "Node", split: SystemSplit, page: Page) -> None:
        self._transferring = True
        self._inflight = (split, self.offset - page.num_rows, page)

        def commit() -> None:
            self._transferring = False
            self._pending_page = page
            self._transfer_waiters.notify_all()

        # A dead storage node's splits stay readable through durable
        # disaggregated storage: only our NIC is occupied (src=None).
        transfer(
            self.kernel,
            storage.nic if storage.alive else None,
            self.node.nic,
            page.size_bytes,
            self.cost.network_latency,
            commit,
        )

    @property
    def has_output(self) -> bool:
        return not self._transferring

    def waiters(self) -> WaiterList:
        return self._transfer_waiters

    def shutdown(self) -> None:
        """Return the unread remainder of the current split to the feed."""
        if self.current is not None:
            self.feed.release(self.current, self.offset)
            self.current = None

    # -- failure recovery ---------------------------------------------------
    def release_unfinished(self) -> None:
        """Crash cleanup for a *resumable* scan: return undelivered work.

        The remainder of the current split goes back to the feed, and a
        page caught mid-transfer (rows already charged to the feed but
        never delivered to an operator) is returned with a compensating
        ``record_scan``, so the respawned task re-reads exactly the
        missing rows and feed progress stays exact."""
        inflight, self._inflight = self._inflight, None
        self._pending_page = None
        self._transferring = False
        if inflight is not None:
            split, start, page = inflight
            if self.current is split:
                self.offset = start
            else:
                self.feed.release(split, start)
            self.feed.record_scan(-page.num_rows, -page.size_bytes)
            self._recorded_rows -= page.num_rows
            self._recorded_bytes -= page.size_bytes
            self.rows_scanned -= page.num_rows
        if self.current is not None:
            self.feed.release(self.current, self.offset)
            self.current = None

    def restart_release(self) -> None:
        """Crash cleanup for a *from-scratch* restart: return every split
        this source ever acquired and undo all feed progress it charged."""
        self._inflight = None
        self._pending_page = None
        self._transferring = False
        self.current = None
        self.offset = 0
        for split in self._acquired:
            self.feed.release(split, 0)
        self._acquired = []
        if self._recorded_rows or self._recorded_bytes:
            self.feed.record_scan(-self._recorded_rows, -self._recorded_bytes)
        self._recorded_rows = 0
        self._recorded_bytes = 0
        self.rows_scanned = 0


class ExchangeSource(SourceOperator):
    """Pulls pages from the task's shared exchange client."""

    name = "exchange"

    def __init__(self, cost: CostModel, client: ExchangeClient):
        self.cost = cost
        self.client = client

    def poll(self) -> tuple[Page | None, float]:
        page = self.client.poll()
        if page is None:
            return None, 0.0
        if page.is_end:
            return page, 0.0
        cpu = page.num_rows * self.cost.exchange_row_cost * self.cost.cpu_multiplier
        return page, cpu

    @property
    def has_output(self) -> bool:
        return self.client.has_output

    def waiters(self) -> WaiterList:
        return self.client.waiters()


class LocalExchangeSource(SourceOperator):
    name = "local_exchange_source"

    def __init__(self, cost: CostModel, exchange: LocalExchange):
        self.cost = cost
        self.exchange = exchange

    def poll(self) -> tuple[Page | None, float]:
        page = self.exchange.poll()
        if page is None:
            return None, 0.0
        cpu = page.num_rows * self.cost.local_exchange_row_cost * self.cost.cpu_multiplier
        return page, cpu

    @property
    def has_output(self) -> bool:
        return self.exchange.has_output

    def waiters(self) -> WaiterList:
        return self.exchange.not_empty
