"""Physical operators."""

from .aggregation import FinalAggOperator, PartialAggOperator
from .base import SinkOperator, SourceOperator, TransformOperator
from .basic import FilterOperator, LimitOperator, ProjectOperator
from .join import HashJoinProbeOperator, JoinBridge, JoinBuildSink
from .sinks import CoordinatorSink, LocalExchangeSink, TaskOutputSink
from .sorting import SortOperator, TopNOperator
from .sources import ExchangeSource, LocalExchangeSource, ScanSource

__all__ = [
    "CoordinatorSink",
    "ExchangeSource",
    "FilterOperator",
    "FinalAggOperator",
    "HashJoinProbeOperator",
    "JoinBridge",
    "JoinBuildSink",
    "LimitOperator",
    "LocalExchangeSink",
    "LocalExchangeSource",
    "PartialAggOperator",
    "ProjectOperator",
    "ScanSource",
    "SinkOperator",
    "SortOperator",
    "SourceOperator",
    "TaskOutputSink",
    "TopNOperator",
    "TransformOperator",
]
