"""TopN and Sort operators (stateful; run in single-task stages, with a
partial TopN variant pushed into upstream stages)."""

from __future__ import annotations

from ...config import CostModel
from ...pages import Page, PageBuilder, Schema, concat_pages
from ...reference import sort_indices
from .base import TransformOperator


class TopNOperator(TransformOperator):
    """Keeps the ``count`` best rows by ``sort_keys``.

    The partial variant runs per driver in the upstream stage and merely
    bounds what flows downstream; the final variant produces the exact
    ordered prefix.
    """

    name = "topn"

    def __init__(
        self,
        cost: CostModel,
        schema: Schema,
        count: int,
        sort_keys: list[tuple[int, bool]],
        partial: bool = False,
        row_limit: int = 4096,
    ):
        super().__init__(cost)
        self.schema = schema
        self.count = count
        self.sort_keys = sort_keys
        self.partial = partial
        self.row_limit = row_limit
        self._pages: list[Page] = []
        self._rows = 0

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            out = self._emit()
            self.finished = True
            return out + [page], self.cpu(
                sum(p.num_rows for p in out), self.cost.sort_row_cost
            )
        self._pages.append(page)
        self._rows += page.num_rows
        cpu = self.cpu(page.num_rows, self.cost.sort_row_cost)
        if self._rows > max(4 * self.count, self.row_limit):
            self._compact()
        return [], cpu

    def _compact(self) -> None:
        merged = concat_pages(self.schema, self._pages)
        order = sort_indices(merged, self.sort_keys)[: self.count]
        self._pages = [merged.take(order)]
        self._rows = len(order)

    def _emit(self) -> list[Page]:
        if not self._pages:
            return []
        self._compact()
        return [p for p in self._pages if p.num_rows > 0]


class SortOperator(TransformOperator):
    name = "sort"

    def __init__(
        self,
        cost: CostModel,
        schema: Schema,
        sort_keys: list[tuple[int, bool]],
        row_limit: int = 4096,
    ):
        super().__init__(cost)
        self.schema = schema
        self.sort_keys = sort_keys
        self.row_limit = row_limit
        self._pages: list[Page] = []

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            out = self._emit()
            self.finished = True
            return out + [page], self.cpu(
                sum(p.num_rows for p in out), self.cost.sort_row_cost
            )
        self._pages.append(page)
        return [], self.cpu(page.num_rows, self.cost.sort_row_cost)

    def _emit(self) -> list[Page]:
        if not self._pages:
            return []
        merged = concat_pages(self.schema, self._pages)
        ordered = merged.take(sort_indices(merged, self.sort_keys))
        pages = []
        for start in range(0, ordered.num_rows, self.row_limit):
            pages.append(ordered.slice(start, start + self.row_limit))
        return pages
