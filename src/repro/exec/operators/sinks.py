"""Sink operators: task output, local-exchange sink, coordinator output."""

from __future__ import annotations

from typing import Callable

from ...buffers import LocalExchange, TaskOutputBuffer
from ...buffers.elastic import WaiterList
from ...config import CostModel
from ...pages import Page
from .base import SinkOperator


class TaskOutputSink(SinkOperator):
    """Delivers pages to the task output buffer (the task output operator
    of the paper — distribution itself is the buffer's job, Section 4.2.1)."""

    name = "task_output"

    def __init__(self, cost: CostModel, buffer: TaskOutputBuffer):
        self.cost = cost
        self.buffer = buffer

    def deliver(self, pages: list[Page]) -> float:
        rows = 0
        for page in pages:
            self.buffer.put(page)
            rows += page.num_rows
        return rows * self.cost.task_output_row_cost * self.cost.cpu_multiplier

    @property
    def is_full(self) -> bool:
        return self.buffer.is_full

    def waiters(self) -> WaiterList | None:
        return self.buffer.not_full


class LocalExchangeSink(SinkOperator):
    name = "local_exchange_sink"
    row_cost_attr = "local_exchange_row_cost"

    def __init__(self, cost: CostModel, exchange: LocalExchange):
        self.cost = cost
        self.exchange = exchange
        exchange.register_producer()

    def deliver(self, pages: list[Page]) -> float:
        rows = 0
        for page in pages:
            self.exchange.put(page)
            rows += page.num_rows
        return rows * self.cost.local_exchange_row_cost * self.cost.cpu_multiplier

    def driver_finished(self) -> None:
        self.exchange.producer_finished()


class CoordinatorSink(SinkOperator):
    """Stage-0 output operator: hands result pages to the coordinator."""

    name = "output"

    def __init__(self, cost: CostModel, collect: Callable[[Page], None]):
        self.cost = cost
        self.collect = collect

    def deliver(self, pages: list[Page]) -> float:
        rows = 0
        for page in pages:
            self.collect(page)
            rows += page.num_rows
        return rows * self.cost.task_output_row_cost * self.cost.cpu_multiplier
