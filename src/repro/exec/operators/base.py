"""Operator interfaces for driver execution.

A driver's pipeline is ``source -> transforms -> sink``.  Each driver
quantum takes one page from the source, pushes it through every transform,
and delivers the resulting pages to the sink; the virtual CPU cost of the
quantum is the sum of the costs reported by each step.

End pages (:meth:`Page.is_end`) travel through the chain (the paper's
"end page relay game", Figure 13): stateless transforms relay them
immediately and enter the finished state; stateful transforms first flush
their results, then relay.
"""

from __future__ import annotations

from ...config import CostModel
from ...pages import Page
from ...buffers.elastic import WaiterList


class TransformOperator:
    """A mid-pipeline operator: one input page -> zero or more outputs."""

    name = "transform"
    #: False when :meth:`waits_on` can never return a waiter list; the
    #: driver then skips this operator in its per-quantum readiness scan.
    may_wait = False

    def __init__(self, cost: CostModel):
        self.cost = cost
        self.finished = False
        #: Set by operators that can complete early (LIMIT): the driver
        #: starts the end-page relay from here without draining the source.
        self.done_early = False

    def cpu(self, rows: int, per_row: float) -> float:
        return rows * per_row * self.cost.cpu_multiplier

    def process(self, page: Page) -> tuple[list[Page], float]:
        """Transform ``page``; returns (output pages, cpu cost).

        ``page`` may be an end page: the operator must flush any state,
        append the end page after its outputs, and set ``finished``.
        """
        raise NotImplementedError

    def waits_on(self) -> WaiterList | None:
        """Non-None when the operator cannot accept input yet (e.g. a join
        probe waiting for the hash table); the driver blocks on the list."""
        return None


class SourceOperator:
    """Head of a pipeline: produces pages from splits/exchanges."""

    name = "source"

    def poll(self) -> tuple[Page | None, float]:
        """Next page and its cpu cost, or ``(None, 0)`` to block.

        Returns an end page exactly once per driver when exhausted.
        """
        raise NotImplementedError

    @property
    def has_output(self) -> bool:
        raise NotImplementedError

    def waiters(self) -> WaiterList:
        """Where to register for a wake-up when output may be available."""
        raise NotImplementedError


class SinkOperator:
    """Tail of a pipeline: absorbs pages into buffers/bridges."""

    name = "sink"
    #: CPU cost per row absorbed (drivers charge it into the quantum).
    row_cost_attr = "task_output_row_cost"

    def cost_of(self, pages: list[Page]) -> float:
        """CPU cost of absorbing ``pages`` (charged before delivery)."""
        cost_model = getattr(self, "cost", None)
        if cost_model is None:
            return 0.0
        rows = sum(p.num_rows for p in pages)
        per_row = getattr(cost_model, self.row_cost_attr)
        return rows * per_row * cost_model.cpu_multiplier

    def deliver(self, pages: list[Page]) -> float:
        """Absorb pages (end pages excluded); returns cpu cost."""
        raise NotImplementedError

    @property
    def is_full(self) -> bool:
        return False

    def waiters(self) -> WaiterList | None:
        """Where to wait when the sink is full (None = never blocks)."""
        return None

    def driver_finished(self) -> None:
        """Called once when the owning driver completes its end relay."""
