"""Two-stage hash aggregation (paper Section 4.1), vectorized end-to-end.

``PartialAggOperator`` pre-aggregates per driver; its state is flushed
downstream whenever it grows past a limit (and on end pages), which is why
the paper classifies it as *stateless* — the state can be destroyed and
reconstructed, so stages containing it remain DOP-tunable.

``FinalAggOperator`` merges partial states; it is stateful and its stage
runs with parallelism fixed at 1.

Both operators keep their running state in :class:`_HashAggState`, which
stores one growable numpy array per state field (DESIGN.md §8).  Each
input page is reduced to one value per *group* with the ``grouped_*``
kernels, and those per-group arrays are merged into the state with fancy
indexing — python touches groups (once per distinct key per page), never
rows.
"""

from __future__ import annotations

import numpy as np

from ...config import CostModel
from ...errors import ExecutionError
from ...pages import ColumnType, Page, PageBuilder, Schema
from ...sql.compiler import compile_expressions
from ...sql.expressions import AggregateCall, BoundExpr
from ...sql.functions import (
    ObjectDictEncoder,
    group_codes,
    grouped_count,
    grouped_max,
    grouped_min,
    grouped_sum,
    partial_fields,
)
from ..spill import OperatorMemory, SpillPartitions
from .base import TransformOperator

#: Estimated bytes per object cell in state accounting (mirrors the page
#: size estimate in repro.pages.page).
_OBJECT_CELL_BYTES = 24
#: Estimated dict/bookkeeping overhead per aggregation slot.
_SLOT_OVERHEAD_BYTES = 64

#: Aggregate over zero rows (engine-wide convention; see reference.py).
def _empty_value(function: str, result_type: ColumnType):
    if function == "count":
        return 0
    if function == "sum":
        return 0 if result_type is ColumnType.INT64 else 0.0
    return float("nan")


def _state_width(agg: AggregateCall) -> int:
    arg_type = agg.arg.type if agg.arg is not None else None
    return len(partial_fields(agg.function, arg_type))


#: How a state field combines with an incoming per-group partial array.
_SUM, _MIN, _MAX = "sum", "min", "max"


def _field_specs(agg: AggregateCall) -> list[tuple[str, np.dtype]]:
    """(merge kind, storage dtype) per state field of one aggregate call."""
    arg_type = agg.arg.type if agg.arg is not None else None
    types = partial_fields(agg.function, arg_type)
    if agg.function in ("sum", "count", "avg"):
        kinds = [_SUM] * len(types)
    elif agg.function == "min":
        kinds = [_MIN]
    elif agg.function == "max":
        kinds = [_MAX]
    else:  # pragma: no cover - analyzer rejects unknown aggregates
        raise ExecutionError(f"unknown aggregate {agg.function}")
    return [(kind, t.numpy_dtype) for kind, t in zip(kinds, types)]


def _merge_identity(kind: str, dtype: np.dtype):
    """Value that merging leaves unchanged (fills newly-grown slots)."""
    if kind == _SUM:
        return 0
    if dtype == object:
        return None
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return info.max if kind == _MIN else info.min
    return np.inf if kind == _MIN else -np.inf


class _HashAggState:
    """Columnar aggregation state: key columns + one array per state field.

    Slot assignment (key tuple → dense slot id) is the only dict the
    state keeps; it is consulted once per distinct key per page, and all
    value merging happens on whole numpy arrays.
    """

    def __init__(self, aggregates: list[AggregateCall]):
        self.aggregates = aggregates
        self.widths = [_state_width(a) for a in aggregates]
        self.offsets: list[int] = []
        total = 0
        for w in self.widths:
            self.offsets.append(total)
            total += w
        self.state_width = total
        self.field_specs: list[tuple[str, np.dtype]] = []
        for agg in aggregates:
            self.field_specs.extend(_field_specs(agg))
        self._slots: dict[tuple, int] = {}
        self._capacity = 0
        self._fields: list[np.ndarray] = [
            np.zeros(0, dtype=dt) for _, dt in self.field_specs
        ]
        #: Key columns of newly-seen groups, appended in slot order.
        self._key_chunks: list[list[np.ndarray]] = []
        #: Incrementally maintained key-column byte estimate (avoids an
        #: O(#chunks) walk on every page when budgets are enabled).
        self._key_bytes = 0

    def __len__(self) -> int:
        return len(self._slots)

    def tracked_bytes(self) -> int:
        """Estimated resident size of the state (field arrays at their
        grown capacity, key chunks, and per-slot dict overhead)."""
        total = self._key_bytes + _SLOT_OVERHEAD_BYTES * len(self._slots)
        for arr in self._fields:
            total += arr.nbytes
        return total

    def _grow_to(self, n: int) -> None:
        if n <= self._capacity:
            return
        capacity = max(256, self._capacity * 2, n)
        for i, ((kind, dtype), arr) in enumerate(zip(self.field_specs, self._fields)):
            grown = np.full(capacity, _merge_identity(kind, dtype), dtype=dtype)
            grown[: len(arr)] = arr
            self._fields[i] = grown
        self._capacity = capacity

    def merge_groups(
        self,
        group_keys: list[tuple],
        key_columns: list[np.ndarray],
        field_values: list[np.ndarray],
    ) -> None:
        """Merge one page's per-group partials into the state.

        ``group_keys[g]`` / ``key_columns[c][g]`` identify page-local group
        ``g``; ``field_values[f][g]`` is its contribution to state field
        ``f``.  Page-local groups are distinct, so each slot is touched at
        most once and plain fancy indexing merges correctly.
        """
        slots = self._slots
        before = len(slots)
        ids = np.empty(len(group_keys), dtype=np.int64)
        for g, key in enumerate(group_keys):
            slot = slots.get(key)
            if slot is None:
                slot = len(slots)
                slots[key] = slot

            ids[g] = slot
        if len(slots) > before:
            new = ids >= before
            chunk = [col[new] for col in key_columns]
            self._key_chunks.append(chunk)
            for col in chunk:
                self._key_bytes += (
                    col.size * _OBJECT_CELL_BYTES
                    if col.dtype == object
                    else col.nbytes
                )
            self._grow_to(len(slots))
        for arr, (kind, dtype), values in zip(
            self._fields, self.field_specs, field_values
        ):
            if kind == _SUM:
                arr[ids] += values
            elif dtype == object:
                current = arr[ids]
                if kind == _MIN:
                    take = np.fromiter(
                        (c is None or v < c for c, v in zip(current, values)),
                        dtype=bool,
                        count=len(ids),
                    )
                else:
                    take = np.fromiter(
                        (c is None or v > c for c, v in zip(current, values)),
                        dtype=bool,
                        count=len(ids),
                    )
                current[take] = values[take]
                arr[ids] = current
            elif kind == _MIN:
                arr[ids] = np.minimum(arr[ids], values)
            else:
                arr[ids] = np.maximum(arr[ids], values)

    def drain_columns(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """(key columns, state field columns) in slot order; resets state."""
        n = len(self._slots)
        if self._key_chunks and len(self._key_chunks[0]):
            ncols = len(self._key_chunks[0])
            keys = [
                np.concatenate([chunk[c] for chunk in self._key_chunks])
                for c in range(ncols)
            ]
        else:
            keys = []
        fields = [arr[:n] for arr in self._fields]
        self._slots = {}
        self._capacity = 0
        self._fields = [np.zeros(0, dtype=dt) for _, dt in self.field_specs]
        self._key_chunks = []
        self._key_bytes = 0
        return keys, fields


def _aggregate_arg_evaluator(
    aggregates: list[AggregateCall], compiled: bool
):
    """Build ``f(page) -> [values | None per aggregate]``.

    Compiled mode jointly compiles all argument expressions, so common
    subexpressions shared between aggregates evaluate once per page.
    """
    args: list[BoundExpr | None] = [a.arg for a in aggregates]
    exprs = [a for a in args if a is not None]
    if not exprs:
        return lambda page: [None] * len(args)
    if compiled:
        joint = compile_expressions(exprs)

        def eval_args(page: Page) -> list:
            values = iter(joint(page))
            return [None if a is None else next(values) for a in args]

        return eval_args
    return lambda page: [None if a is None else a.evaluate(page) for a in args]


def _page_partials(
    state: _HashAggState,
    arg_values: list,
    codes: np.ndarray,
    ngroups: int,
) -> list[np.ndarray]:
    """Reduce one input page to per-group partial arrays (one per field)."""
    out: list[np.ndarray] = []
    for agg, values in zip(state.aggregates, arg_values):
        if agg.function == "count":
            out.append(grouped_count(codes, ngroups))
            continue
        if agg.function == "sum":
            out.append(grouped_sum(codes, values, ngroups))
        elif agg.function == "avg":
            out.append(
                grouped_sum(codes, values.astype(np.float64, copy=False), ngroups)
            )
            out.append(grouped_count(codes, ngroups))
        elif agg.function == "min":
            out.append(grouped_min(codes, values, ngroups))
        elif agg.function == "max":
            out.append(grouped_max(codes, values, ngroups))
        else:  # pragma: no cover - analyzer rejects unknown aggregates
            raise ExecutionError(f"unknown aggregate {agg.function}")
    return out


def _group_key_tuples(uniques: list[np.ndarray], ngroups: int) -> list[tuple]:
    if not uniques:
        return [()] * ngroups
    return list(zip(*[u.tolist() for u in uniques]))


class _GroupKeyFactorizer:
    """Per-operator ``group_codes`` wrapper with dictionary-encoded strings.

    Object key columns are dictionary-encoded against an operator-lifetime
    :class:`ObjectDictEncoder` first, so the per-page factorization only
    ever sorts machine ints; the representative unique values are decoded
    back to the original objects afterwards.
    """

    def __init__(self):
        self._encoders: dict[int, ObjectDictEncoder] = {}

    def factorize(
        self, key_cols: list[np.ndarray]
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        encoded: list[np.ndarray] = []
        for j, col in enumerate(key_cols):
            if col.dtype == object:
                encoder = self._encoders.get(j)
                if encoder is None:
                    encoder = self._encoders[j] = ObjectDictEncoder()
                encoded.append(encoder.encode(col))
            else:
                encoded.append(col)
        codes, uniques = group_codes(encoded)
        for j, encoder in self._encoders.items():
            uniques[j] = encoder.value_array()[uniques[j]]
        return codes, uniques


def _partial_ops(aggregates: list[AggregateCall], num_keys: int):
    """Offload plan for :func:`_page_partials`: per-field ``(op, index)``
    pairs into the shipped array list (keys first, then one value array
    per non-count aggregate, in aggregate order)."""
    ops: list[tuple[str, int]] = []
    idx = num_keys
    for agg in aggregates:
        if agg.function == "count":
            ops.append(("count", -1))
            continue
        if agg.function == "sum":
            ops.append(("sum", idx))
        elif agg.function == "avg":
            ops.append(("sumf", idx))
            ops.append(("count", -1))
        elif agg.function == "min":
            ops.append(("min", idx))
        elif agg.function == "max":
            ops.append(("max", idx))
        else:  # pragma: no cover - analyzer rejects unknown aggregates
            raise ExecutionError(f"unknown aggregate {agg.function}")
        idx += 1
    return ops


class _DeferredMerges:
    """Per-operator queue of in-flight ``grouped_reduce`` tickets.

    Jobs are submitted fire-and-stash as pages arrive and *applied* —
    waited and merged into the aggregation state — in submission order
    at sync points, so the state always equals what serial page-order
    merging would have produced.  ``pending_rows`` upper-bounds how many
    groups the un-applied jobs can still add (each page contributes at
    most one group per row), which is what lets the group-limit check
    skip syncing while the bound stays under the limit.
    """

    __slots__ = ("offload", "handles", "pending_rows")

    def __init__(self, offload):
        self.offload = offload
        self.handles: list[int] = []
        self.pending_rows = 0

    def __bool__(self) -> bool:
        return bool(self.handles)

    def submit(self, key_cols, value_arrays, ops, num_rows: int) -> None:
        self.handles.append(
            self.offload.submit_grouped(key_cols, value_arrays, ops, num_rows)
        )
        self.pending_rows += num_rows

    def sync(self, state: _HashAggState) -> None:
        """Apply every pending job, in submission order."""
        for handle in self.handles:
            uniques, fields, ngroups = self.offload.wait_grouped(handle)
            state.merge_groups(
                _group_key_tuples(uniques, ngroups), uniques, fields
            )
        self.handles.clear()
        self.pending_rows = 0


def _agg_offload_ok(offload, memory: OperatorMemory | None, key_cols) -> bool:
    """Whether this page's grouped reduction may be deferred to the pool.

    Three gates keep deferred merging bit-identical to serial:
    object group keys are excluded (the serial path factorizes them
    through a stateful operator-lifetime :class:`ObjectDictEncoder`,
    whose first-seen code order a worker cannot reproduce), and an
    *active* memory budget forces the serial path (budgeted spill/flush
    decisions compare per-page state sizes, which deferral would skew).
    Checked per page because the arbiter can set a budget mid-query.
    """
    if offload is None or not offload.config.offload_agg:
        return False
    if any(col.dtype == object for col in key_cols):
        return False
    return memory is None or memory.query.budget_bytes is None


class PartialAggOperator(TransformOperator):
    name = "partial_aggregation"

    def __init__(
        self,
        cost: CostModel,
        group_keys: list[int],
        aggregates: list[AggregateCall],
        output_schema: Schema,
        row_limit: int = 4096,
        group_limit: int = 100_000,
        compiled: bool = True,
        memory: OperatorMemory | None = None,
        offload=None,
    ):
        super().__init__(cost)
        self.group_keys = group_keys
        self.output_schema = output_schema
        self.row_limit = row_limit
        self.group_limit = group_limit
        self.state = _HashAggState(aggregates)
        self._factorizer = _GroupKeyFactorizer()
        self._eval_args = _aggregate_arg_evaluator(aggregates, compiled)
        self.rows_in = 0
        self.memory = memory
        self.offload = offload
        self._deferred = None if offload is None else _DeferredMerges(offload)
        self._ops = _partial_ops(aggregates, len(group_keys))

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            if self._deferred:
                self._deferred.sync(self.state)
            pages = self._flush()
            self.finished = True
            cpu = self.cpu(sum(p.num_rows for p in pages), self.cost.partial_agg_row_cost)
            return pages + [page], cpu
        self.rows_in += page.num_rows
        cpu = self.cpu(page.num_rows, self.cost.partial_agg_row_cost)
        key_cols = [page.columns[k] for k in self.group_keys]
        if self.offload is not None and _agg_offload_ok(
            self.offload, self.memory, key_cols
        ) and self.offload.want(True, page.num_rows):
            arg_values = self._eval_args(page)
            values = [
                v for a, v in zip(self.state.aggregates, arg_values)
                if a.function != "count"
            ]
            self._deferred.submit(key_cols, values, self._ops, page.num_rows)
            # Group-limit check against the reachable upper bound: while
            # state-so-far plus every pending row stays under the limit,
            # serial merging could not have flushed here either.
            if len(self.state) + self._deferred.pending_rows <= self.group_limit:
                return [], cpu
            self._deferred.sync(self.state)
        else:
            if self._deferred:
                self._deferred.sync(self.state)
            if key_cols:
                codes, uniques = self._factorizer.factorize(key_cols)
                ngroups = len(uniques[0])
            else:
                codes = np.zeros(page.num_rows, dtype=np.int64)
                ngroups = 1
                uniques = []
            partials = _page_partials(self.state, self._eval_args(page), codes, ngroups)
            self.state.merge_groups(
                _group_key_tuples(uniques, ngroups), uniques, partials
            )
        out: list[Page] = []
        # Partial state is destructible by design: memory pressure is
        # relieved by flushing downstream early, never by spilling.
        pressure = self.memory is not None and self.memory.report(
            self.state.tracked_bytes()
        )
        if len(self.state) > self.group_limit or pressure:
            out = self._flush()
            cpu += self.cpu(sum(p.num_rows for p in out), self.cost.partial_agg_row_cost)
        return out, cpu

    def _flush(self) -> list[Page]:
        if not len(self.state):
            return []
        key_cols, field_cols = self.state.drain_columns()
        if self.memory is not None:
            self.memory.report(0)
        builder = PageBuilder(self.output_schema, self.row_limit)
        builder.append_columns(key_cols + field_cols)
        pages = builder.build_full_pages()
        tail = builder.flush()
        if tail is not None:
            pages.append(tail)
        return pages


class FinalAggOperator(TransformOperator):
    """Merges partial aggregation pages into final results (stateful).

    Under a memory budget the state spills on overflow: it is drained
    back to partial-page format and radix-partitioned on the group keys
    (DESIGN.md §13).  On the end page the spilled partitions are merged
    one at a time into a fresh state — every group lands in exactly one
    partition, so partition results concatenate into the final output and
    peak memory is bounded by the largest partition's state.  Global
    aggregates (``num_keys == 0``) keep a single-slot state and never
    spill.
    """

    name = "final_aggregation"

    def __init__(
        self,
        cost: CostModel,
        num_keys: int,
        aggregates: list[AggregateCall],
        output_schema: Schema,
        row_limit: int = 4096,
        memory: OperatorMemory | None = None,
        offload=None,
    ):
        super().__init__(cost)
        self.num_keys = num_keys
        self.output_schema = output_schema
        self.row_limit = row_limit
        self.state = _HashAggState(aggregates)
        self._factorizer = _GroupKeyFactorizer()
        self.rows_in = 0
        self.memory = memory
        self.offload = offload
        self._deferred = None if offload is None else _DeferredMerges(offload)
        self.spill: SpillPartitions | None = None
        self._input_schema: Schema | None = None

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            self.finished = True
            if self._deferred:
                self._deferred.sync(self.state)
            if self.spill is not None:
                return self._grace_finalize(page)
            pages = self._final_pages_from_state(self.state)
            if self.memory is not None:
                self.memory.report(0)
            cpu = self.cpu(sum(p.num_rows for p in pages), self.cost.final_agg_row_cost)
            return pages + [page], cpu
        self.rows_in += page.num_rows
        cpu = self.cpu(page.num_rows, self.cost.final_agg_row_cost)
        if self._input_schema is None:
            self._input_schema = page.schema
        key_cols = list(page.columns[: self.num_keys])
        if self.offload is not None and _agg_offload_ok(
            self.offload, self.memory, key_cols
        ) and self.offload.want(True, page.num_rows):
            # Partial-format pages merge field-by-field; the per-field
            # reduce kind comes straight from the state's merge spec.
            ops = [
                (kind, self.num_keys + i)
                for i, (kind, _) in enumerate(self.state.field_specs)
            ]
            fields = list(
                page.columns[self.num_keys : self.num_keys + len(ops)]
            )
            self._deferred.submit(key_cols, fields, ops, page.num_rows)
            return [], cpu
        if self._deferred:
            self._deferred.sync(self.state)
        self._merge_partial_page(self.state, page)
        if self.memory is not None:
            if self.num_keys:
                if self.memory.update(self.state.tracked_bytes()):
                    cpu += self._spill_state()
            else:
                # Single-slot global state: nothing to partition on.
                self.memory.report(self.state.tracked_bytes())
        return [], cpu

    def _merge_partial_page(self, state: _HashAggState, page: Page) -> None:
        """Merge one partial-format page into ``state`` (pre-reducing the
        page's state columns per group first)."""
        k = self.num_keys
        key_cols = list(page.columns[:k])
        if key_cols:
            codes, uniques = self._factorizer.factorize(key_cols)
            ngroups = len(uniques[0])
        else:
            codes = np.zeros(page.num_rows, dtype=np.int64)
            ngroups = 1
            uniques = []
        field_values: list[np.ndarray] = []
        field = 0
        for kind, _ in state.field_specs:
            col = page.columns[k + field]
            if kind == _SUM:
                field_values.append(grouped_sum(codes, col, ngroups))
            elif kind == _MIN:
                field_values.append(grouped_min(codes, col, ngroups))
            else:
                field_values.append(grouped_max(codes, col, ngroups))
            field += 1
        state.merge_groups(
            _group_key_tuples(uniques, ngroups), uniques, field_values
        )

    # -- out-of-core path (DESIGN.md §13) ---------------------------------
    def _state_pages(self) -> list[Page]:
        """Drain the state back into partial-format pages (spill format:
        the operator's own input format, so merging a spilled page reuses
        the ordinary merge path)."""
        key_cols, field_cols = self.state.drain_columns()
        builder = PageBuilder(self._input_schema, self.row_limit)
        builder.append_columns(list(key_cols) + list(field_cols))
        pages = builder.build_full_pages()
        tail = builder.flush()
        if tail is not None:
            pages.append(tail)
        return pages

    def _spill_state(self) -> float:
        """Spill the current state to the radix partitions; returns the
        virtual I/O cost."""
        memory = self.memory
        if self.spill is None:
            query = memory.query
            self.spill = SpillPartitions(
                query.spill_directory(),
                memory.name,
                self._input_schema,
                list(range(self.num_keys)),
                query.config.spill_fanout,
                offload=self.offload,
            )
        nbytes = 0
        for pg in self._state_pages():
            nbytes += self.spill.write_page(pg)
        memory.update(self.state.tracked_bytes())
        return memory.spill_written(nbytes, self.spill.partitions_written, "state")

    def _grace_finalize(self, end_page: Page) -> tuple[list[Page], float]:
        """End of input with spilled state: merge partition-at-a-time."""
        cpu = 0.0
        if len(self.state):
            cpu += self._spill_state()
        self.spill.finish()
        memory = self.memory
        out: list[Page] = []
        for p in range(memory.query.config.spill_fanout):
            nbytes = self.spill.partition_bytes(p)
            if nbytes == 0:
                continue
            cpu += memory.spill_read(nbytes, f"partition {p}")
            state = _HashAggState(self.state.aggregates)
            rows = 0
            for pg in self.spill.read_pages(p):
                rows += pg.num_rows
                self._merge_partial_page(state, pg)
            memory.update(state.tracked_bytes())
            pages = self._final_pages_from_state(state)
            cpu += self.cpu(
                rows + sum(p2.num_rows for p2 in pages),
                self.cost.final_agg_row_cost,
            )
            out.extend(pages)
        memory.update(0)
        self.spill.delete()
        self.spill = None
        return out + [end_page], cpu

    def _final_pages_from_state(self, state: _HashAggState) -> list[Page]:
        if not len(state):
            if self.num_keys == 0:
                # Global aggregate over empty input still yields one row.
                row = tuple(
                    _empty_value(a.function, a.result_type)
                    for a in state.aggregates
                )
                builder = PageBuilder(self.output_schema, self.row_limit)
                builder.append_rows([row])
                page = builder.flush()
                return [page] if page is not None else []
            return []
        key_cols, field_cols = state.drain_columns()
        columns = list(key_cols)
        for ai, agg in enumerate(state.aggregates):
            offset = state.offsets[ai]
            if agg.function == "avg":
                totals = field_cols[offset]
                counts = field_cols[offset + 1]
                with np.errstate(divide="ignore", invalid="ignore"):
                    avg = totals / counts
                avg = np.where(counts == 0, np.nan, avg)
                columns.append(avg)
            else:
                columns.append(field_cols[offset])
        builder = PageBuilder(self.output_schema, self.row_limit)
        builder.append_columns(columns)
        pages = builder.build_full_pages()
        tail = builder.flush()
        if tail is not None:
            pages.append(tail)
        return pages

    def offsets_of(self, agg_index: int) -> int:
        return self.state.offsets[agg_index]
