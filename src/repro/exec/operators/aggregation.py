"""Two-stage hash aggregation (paper Section 4.1).

``PartialAggOperator`` pre-aggregates per driver; its state is flushed
downstream whenever it grows past a limit (and on end pages), which is why
the paper classifies it as *stateless* — the state can be destroyed and
reconstructed, so stages containing it remain DOP-tunable.

``FinalAggOperator`` merges partial states; it is stateful and its stage
runs with parallelism fixed at 1.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ...config import CostModel
from ...errors import ExecutionError
from ...pages import ColumnType, Page, PageBuilder, Schema
from ...sql.expressions import AggregateCall
from ...sql.functions import (
    group_codes,
    grouped_count,
    grouped_max,
    grouped_min,
    grouped_sum,
    partial_fields,
)
from .base import TransformOperator

#: Aggregate over zero rows (engine-wide convention; see reference.py).
def _empty_value(function: str, result_type: ColumnType):
    if function == "count":
        return 0
    if function == "sum":
        return 0 if result_type is ColumnType.INT64 else 0.0
    return float("nan")


def _state_width(agg: AggregateCall) -> int:
    arg_type = agg.arg.type if agg.arg is not None else None
    return len(partial_fields(agg.function, arg_type))


class _HashAggState:
    """Shared machinery: a dict from group-key tuple to flat state list."""

    def __init__(self, aggregates: list[AggregateCall]):
        self.aggregates = aggregates
        self.widths = [_state_width(a) for a in aggregates]
        self.offsets: list[int] = []
        total = 0
        for w in self.widths:
            self.offsets.append(total)
            total += w
        self.state_width = total
        self.groups: dict[tuple, list] = {}

    def __len__(self) -> int:
        return len(self.groups)

    def state_for(self, key: tuple) -> list:
        state = self.groups.get(key)
        if state is None:
            state = [None] * self.state_width
            self.groups[key] = state
        return state

    def merge_value(self, state: list, agg_index: int, values: tuple) -> None:
        """Merge one group's partial contribution ``values`` into ``state``."""
        agg = self.aggregates[agg_index]
        offset = self.offsets[agg_index]
        fn = agg.function
        if fn in ("sum", "count"):
            current = state[offset]
            state[offset] = values[0] if current is None else current + values[0]
        elif fn == "avg":
            if state[offset] is None:
                state[offset] = values[0]
                state[offset + 1] = values[1]
            else:
                state[offset] += values[0]
                state[offset + 1] += values[1]
        elif fn == "min":
            current = state[offset]
            state[offset] = values[0] if current is None or values[0] < current else current
        elif fn == "max":
            current = state[offset]
            state[offset] = values[0] if current is None or values[0] > current else current
        else:  # pragma: no cover - analyzer rejects unknown aggregates
            raise ExecutionError(f"unknown aggregate {fn}")

    def drain(self) -> Iterator[tuple[tuple, list]]:
        groups, self.groups = self.groups, {}
        yield from groups.items()


def _per_group_partials(
    agg: AggregateCall, page: Page, codes: np.ndarray, ngroups: int
) -> list[tuple]:
    """Per-group partial contribution tuples for one input page."""
    if agg.function == "count":
        counts = grouped_count(codes, ngroups)
        return [(int(c),) for c in counts]
    values = agg.arg.evaluate(page)
    if agg.function == "sum":
        sums = grouped_sum(codes, values, ngroups)
        return [(v,) for v in sums.tolist()]
    if agg.function == "avg":
        sums = grouped_sum(codes, values.astype(np.float64, copy=False), ngroups)
        counts = grouped_count(codes, ngroups)
        return list(zip(sums.tolist(), counts.tolist()))
    if agg.function == "min":
        return [(v,) for v in grouped_min(codes, values, ngroups).tolist()]
    if agg.function == "max":
        return [(v,) for v in grouped_max(codes, values, ngroups).tolist()]
    raise ExecutionError(f"unknown aggregate {agg.function}")


class PartialAggOperator(TransformOperator):
    name = "partial_aggregation"

    def __init__(
        self,
        cost: CostModel,
        group_keys: list[int],
        aggregates: list[AggregateCall],
        output_schema: Schema,
        row_limit: int = 4096,
        group_limit: int = 100_000,
    ):
        super().__init__(cost)
        self.group_keys = group_keys
        self.output_schema = output_schema
        self.row_limit = row_limit
        self.group_limit = group_limit
        self.state = _HashAggState(aggregates)
        self.rows_in = 0

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            pages = self._flush()
            self.finished = True
            cpu = self.cpu(sum(p.num_rows for p in pages), self.cost.partial_agg_row_cost)
            return pages + [page], cpu
        self.rows_in += page.num_rows
        cpu = self.cpu(page.num_rows, self.cost.partial_agg_row_cost)
        key_cols = [page.columns[k] for k in self.group_keys]
        if key_cols:
            codes, uniques = group_codes(key_cols)
            ngroups = len(uniques[0])
            keys = list(zip(*[u.tolist() for u in uniques]))
        else:
            codes = np.zeros(page.num_rows, dtype=np.int64)
            ngroups = 1
            keys = [()]
        partials = [
            _per_group_partials(agg, page, codes, ngroups)
            for agg in self.state.aggregates
        ]
        for gi, key in enumerate(keys):
            state = self.state.state_for(key)
            for ai in range(len(self.state.aggregates)):
                self.state.merge_value(state, ai, partials[ai][gi])
        out: list[Page] = []
        if len(self.state) > self.group_limit:
            out = self._flush()
            cpu += self.cpu(sum(p.num_rows for p in out), self.cost.partial_agg_row_cost)
        return out, cpu

    def _flush(self) -> list[Page]:
        if not len(self.state):
            return []
        builder = PageBuilder(self.output_schema, self.row_limit)
        pages: list[Page] = []
        rows = []
        for key, state in self.state.drain():
            rows.append(tuple(key) + tuple(_fill_state(self.state, state)))
            if len(rows) >= self.row_limit:
                builder.append_rows(rows)
                rows = []
                page = builder.flush()
                if page is not None:
                    pages.append(page)
        if rows:
            builder.append_rows(rows)
        page = builder.flush()
        if page is not None:
            pages.append(page)
        return pages


def _fill_state(state_machine: _HashAggState, state: list) -> list:
    """Replace never-touched state cells with neutral values."""
    out = list(state)
    for ai, agg in enumerate(state_machine.aggregates):
        offset = state_machine.offsets[ai]
        width = state_machine.widths[ai]
        if out[offset] is None:
            if agg.function in ("sum", "count"):
                out[offset] = 0
            elif agg.function == "avg":
                out[offset] = 0.0
                out[offset + 1] = 0
            else:
                out[offset] = _empty_value(agg.function, agg.result_type)
        if width == 2 and out[offset + 1] is None:
            out[offset + 1] = 0
    return out


class FinalAggOperator(TransformOperator):
    """Merges partial aggregation pages into final results (stateful)."""

    name = "final_aggregation"

    def __init__(
        self,
        cost: CostModel,
        num_keys: int,
        aggregates: list[AggregateCall],
        output_schema: Schema,
        row_limit: int = 4096,
    ):
        super().__init__(cost)
        self.num_keys = num_keys
        self.output_schema = output_schema
        self.row_limit = row_limit
        self.state = _HashAggState(aggregates)
        self.rows_in = 0

    def process(self, page: Page) -> tuple[list[Page], float]:
        if page.is_end:
            pages = self._final_pages()
            self.finished = True
            cpu = self.cpu(sum(p.num_rows for p in pages), self.cost.final_agg_row_cost)
            return pages + [page], cpu
        self.rows_in += page.num_rows
        cpu = self.cpu(page.num_rows, self.cost.final_agg_row_cost)
        k = self.num_keys
        key_cols = [c.tolist() for c in page.columns[:k]]
        keys = list(zip(*key_cols)) if key_cols else [()] * page.num_rows
        state_cols = [c.tolist() for c in page.columns[k:]]
        for row_index, key in enumerate(keys):
            state = self.state.state_for(key)
            for ai in range(len(self.state.aggregates)):
                offset = self.state.offsets[ai]
                width = self.state.widths[ai]
                values = tuple(
                    state_cols[offset + j][row_index] for j in range(width)
                )
                self.state.merge_value(state, ai, values)
        return [], cpu

    def _final_pages(self) -> list[Page]:
        rows = []
        if not len(self.state) and self.num_keys == 0:
            # Global aggregate over empty input still yields one row.
            rows.append(
                tuple(
                    _empty_value(a.function, a.result_type)
                    for a in self.state.aggregates
                )
            )
        else:
            for key, state in self.state.drain():
                rows.append(tuple(key) + tuple(self._finalize(state)))
        if not rows:
            return []
        builder = PageBuilder(self.output_schema, self.row_limit)
        builder.append_rows(rows)
        pages = builder.build_full_pages()
        tail = builder.flush()
        if tail is not None:
            pages.append(tail)
        return pages

    def _finalize(self, state: list) -> list:
        out = []
        filled = _fill_state(self.state, state)
        for ai, agg in enumerate(self.state.aggregates):
            offset = self.state.offsets[ai]
            if agg.function == "avg":
                total, count = filled[offset], filled[offset + 1]
                out.append(total / count if count else float("nan"))
            else:
                value = filled[offset]
                if agg.result_type is ColumnType.INT64 and value is not None:
                    value = int(value)
                out.append(value)
        return out
