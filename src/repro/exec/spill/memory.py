"""Per-query memory accounting: the budget that makes spilling trigger.

One :class:`QueryMemory` exists per :class:`QueryExecution`.  Stateful
operators (join bridges, final aggregations, partial aggregations)
register an :class:`OperatorMemory` handle and report their tracked bytes
through it; the query-wide total is compared against the budget, so
whichever operator grows past the *query's* remaining headroom is the one
that spills.  The budget starts at ``MemoryConfig.query_budget_bytes``
and is overwritten by the workload arbiter's memory grant
(:meth:`ResourceArbiter.resize_memory`) — a trimmed grant makes in-flight
operators start spilling on their next growth, an enlarged one stops
further spills.

Accounting is always on (it feeds per-operator peak bytes in
``handle.profile()`` and the unbudgeted-peak measurements the benchmarks
ratchet against); only the budget comparison and the spill I/O cost have
any effect on execution, and both are no-ops when no budget is set.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
from pathlib import Path

from ...config import CostModel, MemoryConfig
from ...data.tpch.dataset_cache import CACHE_DIR_ENV
from ...errors import MemoryBudgetExceededError

#: Process-wide sequence making per-query spill directories unique even
#: across engines (two engines in one process both start query ids at 1).
_SPILL_SEQ = itertools.count(1)


def default_spill_root(config: MemoryConfig) -> Path:
    """Resolve the spill root: explicit config dir, else the repro cache
    dir (``REPRO_CACHE_DIR``), else the system temp dir."""
    if config.spill_dir is not None:
        return Path(config.spill_dir)
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    if cache_dir:
        return Path(cache_dir) / "spill"
    return Path(tempfile.gettempdir()) / "repro-spill"


class OperatorMemory:
    """One stateful operator's accounting handle (see module docstring)."""

    __slots__ = ("query", "name", "trace_parent", "tracked_bytes", "peak_bytes")

    def __init__(self, query: "QueryMemory", name: str, trace_parent: int | None):
        self.query = query
        self.name = name
        self.trace_parent = trace_parent
        self.tracked_bytes = 0
        self.peak_bytes = 0

    def report(self, tracked_bytes: int) -> bool:
        """Report this operator's current state size; returns True when
        the query is now over budget.  Never raises — for operators that
        can shed state without disk (partial aggregation flushes its
        state downstream instead of spilling)."""
        delta = tracked_bytes - self.tracked_bytes
        self.tracked_bytes = tracked_bytes
        if tracked_bytes > self.peak_bytes:
            self.peak_bytes = tracked_bytes
        query = self.query
        query.total_bytes += delta
        if query.total_bytes > query.peak_bytes:
            query.peak_bytes = query.total_bytes
        budget = query.budget_bytes
        return budget is not None and query.total_bytes > budget

    def update(self, tracked_bytes: int) -> bool:
        """Report this operator's current state size.

        Returns True when the query is now over budget and the operator
        should spill; raises :class:`MemoryBudgetExceededError` instead
        when spilling is disallowed."""
        over = self.report(tracked_bytes)
        query = self.query
        if over and not query.config.spill_enabled:
            raise MemoryBudgetExceededError(
                f"{self.name}: query {query.query_id} tracked "
                f"{query.total_bytes} bytes > budget "
                f"{query.budget_bytes} bytes with spilling disabled",
                query_id=query.query_id,
                operator=self.name,
                tracked_bytes=query.total_bytes,
                budget_bytes=query.budget_bytes,
            )
        return over

    def release(self) -> None:
        """Drop this operator's contribution (state handed off or freed)."""
        self.update(0)

    # -- spill events -----------------------------------------------------
    def spill_written(self, nbytes: int, partitions: int, what: str) -> float:
        """Record one spill write; returns its virtual I/O cost."""
        query = self.query
        query.spills += 1
        query.spilled_bytes += nbytes
        if query.metrics is not None:
            query.metrics.counter("spill.spills").add()
            query.metrics.counter("spill.bytes").add(nbytes)
            query.metrics.counter("spill.partitions").add(partitions)
        cost = nbytes * query.cost.spill_write_byte_cost
        self._span(f"{self.name} spill {what}", nbytes, partitions, cost)
        return cost

    def spill_read(self, nbytes: int, what: str) -> float:
        """Record reading spilled bytes back; returns the virtual cost."""
        cost = nbytes * self.query.cost.spill_read_byte_cost
        self._span(f"{self.name} read {what}", nbytes, None, cost)
        return cost

    def _span(
        self, label: str, nbytes: int, partitions: int | None, cost: float
    ) -> None:
        kernel = self.query.kernel
        if kernel is None:
            return
        tracer = kernel.tracer
        if tracer.enabled:
            now = kernel.now
            meta = {"bytes": nbytes, "query_id": self.query.query_id}
            if partitions is not None:
                meta["partitions"] = partitions
            tracer.complete(
                "spill", label, now, now + cost,
                parent=self.trace_parent, **meta,
            )


class QueryMemory:
    """Per-query budget, spill directory, and accounting roll-up."""

    def __init__(
        self,
        query_id: int,
        config: MemoryConfig,
        cost: CostModel,
        kernel=None,
        metrics=None,
    ):
        self.query_id = query_id
        self.config = config
        self.cost = cost
        self.kernel = kernel
        self.metrics = metrics
        self.budget_bytes = config.query_budget_bytes
        self.total_bytes = 0
        self.peak_bytes = 0
        self.spills = 0
        self.spilled_bytes = 0
        self._directory: Path | None = None

    # -- operator handles -------------------------------------------------
    def operator(self, name: str, trace_parent: int | None = None) -> OperatorMemory:
        return OperatorMemory(self, name, trace_parent)

    # -- budget (the arbiter's knob) --------------------------------------
    def set_budget(self, budget_bytes: int | None) -> None:
        self.budget_bytes = budget_bytes

    @property
    def over_budget(self) -> bool:
        return (
            self.budget_bytes is not None
            and self.total_bytes > self.budget_bytes
        )

    # -- spill directory lifecycle ----------------------------------------
    def spill_directory(self) -> Path:
        """This query's spill directory, created on first use only (a
        query that never spills touches no disk)."""
        if self._directory is None:
            root = default_spill_root(self.config)
            self._directory = root / f"q{self.query_id}-{next(_SPILL_SEQ)}"
            self._directory.mkdir(parents=True, exist_ok=True)
        return self._directory

    def cleanup(self) -> None:
        """Remove the query's spill directory (terminal states only —
        wired to ``QueryExecution.on_done`` so success, failure, and
        cancellation all clean up; recovery respawns keep it alive)."""
        if self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None

    def stats(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "tracked_bytes": self.total_bytes,
            "peak_bytes": self.peak_bytes,
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
        }
