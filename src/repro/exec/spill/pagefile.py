"""Columnar spill files: pages serialized through the Page buffer path.

A spill file is a sequence of page records.  Each record is a small
``int64`` header — row count, buffer count, and the byte length of every
buffer — followed by the raw buffers from :meth:`Page.column_buffers`.
Fixed-width columns go to disk as one ``write()`` of the array's own
memoryview (no intermediate copy) and come back as ``np.frombuffer``
views over the read buffer; only string columns pay an encode/decode.

Writers are append-only and cheap to keep open (one buffered file handle
per partition); readers stream the file page by page so a partition is
never fully materialised unless the consumer concatenates it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ...errors import ExecutionError
from ...pages import Page, Schema

_HEADER_DTYPE = np.dtype(np.int64)


class SpillWriter:
    """Append-only spill file for pages of one schema."""

    def __init__(self, path: Path, schema: Schema):
        self.path = Path(path)
        self.schema = schema
        self.pages = 0
        self.rows = 0
        self.bytes_written = 0
        self._file = open(self.path, "wb", buffering=1 << 16)

    def write_page(self, page: Page) -> int:
        """Serialise one data page; returns the bytes appended."""
        if self._file is None:
            raise ExecutionError(f"spill file {self.path.name} already closed")
        buffers = page.column_buffers()
        header = np.empty(2 + len(buffers), dtype=_HEADER_DTYPE)
        header[0] = page.num_rows
        header[1] = len(buffers)
        for i, buf in enumerate(buffers):
            header[2 + i] = len(buf) if isinstance(buf, bytes) else buf.nbytes
        written = header.nbytes
        self._file.write(memoryview(header).cast("B"))
        for buf in buffers:
            self._file.write(buf)
            written += len(buf) if isinstance(buf, bytes) else buf.nbytes
        self.pages += 1
        self.rows += page.num_rows
        self.bytes_written += written
        return written

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class SpillReader:
    """Streams the pages of one spill file back, in write order."""

    def __init__(self, path: Path, schema: Schema):
        self.path = Path(path)
        self.schema = schema
        self.bytes_read = 0

    def __iter__(self):
        header_item = _HEADER_DTYPE.itemsize
        with open(self.path, "rb", buffering=1 << 16) as f:
            while True:
                prefix = f.read(2 * header_item)
                if not prefix:
                    return
                num_rows, nbuffers = np.frombuffer(
                    prefix, dtype=_HEADER_DTYPE
                ).tolist()
                sizes = np.frombuffer(
                    f.read(nbuffers * header_item), dtype=_HEADER_DTYPE
                ).tolist()
                buffers = [f.read(size) for size in sizes]
                self.bytes_read += (2 + nbuffers) * header_item + sum(sizes)
                yield Page.from_column_buffers(self.schema, num_rows, buffers)

    def read_all(self) -> list[Page]:
        return list(self)
