"""Memory-elastic out-of-core execution support (DESIGN.md §13).

Three layers, bottom up:

* :mod:`pagefile` — append-only columnar spill files written through the
  :meth:`Page.column_buffers` zero-copy path.
* :mod:`partition` — Grace-style radix partitioning of pages onto spill
  files, level-salted so recursive repartitioning uses fresh hash bits.
* :mod:`memory` — per-query budget accounting (:class:`QueryMemory`) and
  the per-operator handles (:class:`OperatorMemory`) that turn "over
  budget" into "switch to the spill path" inside joins and aggregations.
"""

from .memory import OperatorMemory, QueryMemory, default_spill_root
from .pagefile import SpillReader, SpillWriter
from .partition import SpillPartitions, radix_assignments

__all__ = [
    "OperatorMemory",
    "QueryMemory",
    "SpillPartitions",
    "SpillReader",
    "SpillWriter",
    "default_spill_root",
    "radix_assignments",
]
