"""Radix (Grace-style) hash partitioning of pages onto spill files.

Every spill level consumes a disjoint slice of the same stable 64-bit row
hash (:func:`repro.sql.functions.hash_columns`): level 0 partitions on
the low bits, level 1 on the next ``log2(fanout)`` bits, and so on.
Build and probe side use identical key hashing, so a join key always
lands in the same partition index on both sides and partitions can be
joined pairwise.  Recursive repartitioning just re-runs the same routine
at ``level + 1`` over one oversized partition's pages.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ...pages import Page, Schema
from ...sql.functions import hash_columns
from .pagefile import SpillReader, SpillWriter


def radix_assignments(
    key_cols: list[np.ndarray], fanout: int, level: int
) -> np.ndarray:
    """Partition index per row from the ``level``-th radix digit of the
    stable row hash."""
    shift = np.uint64(level * max(1, (fanout - 1).bit_length()))
    return ((hash_columns(key_cols) >> shift) % np.uint64(fanout)).astype(
        np.int64
    )


class SpillPartitions:
    """``fanout`` append-only spill files for one operator side/level."""

    def __init__(
        self,
        directory: Path,
        name: str,
        schema: Schema,
        key_positions: list[int],
        fanout: int,
        level: int = 0,
        offload=None,
    ):
        self.directory = Path(directory)
        self.name = name
        self.schema = schema
        self.key_positions = key_positions
        self.fanout = fanout
        self.level = level
        self.offload = offload
        self._writers: dict[int, SpillWriter] = {}

    # -- write side -------------------------------------------------------
    def write_page(self, page: Page) -> int:
        """Split one page across the partitions; returns bytes written."""
        if page.num_rows == 0:
            return 0
        key_cols = [page.columns[k] for k in self.key_positions]
        if self.offload is not None and self.offload.want(
            self.offload.config.offload_radix, page.num_rows
        ):
            # hash_columns is deterministic across processes, so chunked
            # worker assignments concatenate to the host's exact result.
            parts = self.offload.radix_page(
                key_cols, self.fanout, self.level, page.num_rows
            )
        else:
            parts = radix_assignments(key_cols, self.fanout, self.level)
        written = 0
        for p in np.unique(parts).tolist():
            sub = page.mask(parts == p)
            written += self._writer(p).write_page(sub)
        return written

    def _writer(self, p: int) -> SpillWriter:
        writer = self._writers.get(p)
        if writer is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"{self.name}.l{self.level}.p{p}.spill"
            writer = self._writers[p] = SpillWriter(path, self.schema)
        return writer

    def finish(self) -> None:
        """Flush and close every partition file (they stay readable)."""
        for writer in self._writers.values():
            writer.close()

    # -- read side --------------------------------------------------------
    def partition_rows(self, p: int) -> int:
        writer = self._writers.get(p)
        return writer.rows if writer is not None else 0

    def partition_bytes(self, p: int) -> int:
        writer = self._writers.get(p)
        return writer.bytes_written if writer is not None else 0

    @property
    def partitions_written(self) -> int:
        return len(self._writers)

    @property
    def total_bytes(self) -> int:
        return sum(w.bytes_written for w in self._writers.values())

    def read_pages(self, p: int):
        """Iterate the pages of partition ``p`` (empty if never written)."""
        writer = self._writers.get(p)
        if writer is None:
            return iter(())
        return iter(SpillReader(writer.path, self.schema))

    def delete(self) -> None:
        """Close and remove every partition file (post-merge cleanup)."""
        for writer in self._writers.values():
            writer.close()
            try:
                writer.path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._writers.clear()
