"""Runtime splits.

* :class:`SystemSplit` — a chunk of a base table on a storage node,
  consumed by table-scan drivers.
* :class:`RemoteSplit` — the address of an upstream task's output buffer
  (task handle + buffer id), consumed by exchange clients.  The task's
  *global remote split set* (paper Section 4.3, Figure 12a) lets newly
  spawned drivers attach to all current upstreams without coordinator
  involvement.
* :class:`SplitFeed` — the per-stage pool of unassigned system splits;
  scan drivers acquire splits morsel-style, preferring local ones, which
  lets scan-stage DOP changes rebalance work naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..data import Table, TableSplit
from ..pages import Page

if TYPE_CHECKING:  # pragma: no cover
    from .task import Task


@dataclass(frozen=True)
class SystemSplit:
    """A scannable chunk of a table, resident on ``storage_node``."""

    table: Table
    info: TableSplit

    @property
    def storage_node(self) -> int:
        return self.info.storage_node

    @property
    def num_rows(self) -> int:
        return self.info.num_rows

    def read(self, offset: int, rows: int, columns: tuple[int, ...] | None = None) -> Page:
        start = self.info.row_start + offset
        stop = min(start + rows, self.info.row_stop)
        page = self.table.page(start, stop)
        if columns is not None:
            page = page.select(list(columns))
        return page


@dataclass(frozen=True)
class RemoteSplit:
    """Address of one upstream task's output (node URL + task id in the
    paper; a direct task handle in the simulator)."""

    upstream: "Task"
    buffer_id: int

    @property
    def key(self) -> tuple:
        return (self.upstream.task_id, self.buffer_id)


class SplitFeed:
    """Unassigned system splits of one table-scan stage."""

    def __init__(self, splits: list[SystemSplit]):
        self._pending: list[SystemSplit] = list(splits)
        self.total_rows = sum(s.num_rows for s in splits)
        self.total_bytes = sum(s.info.size_bytes for s in splits)
        self.rows_scanned = 0
        self.bytes_scanned = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def acquire(self, preferred_node: int | None = None) -> SystemSplit | None:
        """Take one split, preferring splits local to ``preferred_node``."""
        if not self._pending:
            return None
        if preferred_node is not None:
            for i, split in enumerate(self._pending):
                if split.storage_node == preferred_node:
                    return self._pending.pop(i)
        return self._pending.pop(0)

    def release(self, split: SystemSplit, offset: int) -> None:
        """Return the unread remainder of a split (task shutdown path)."""
        if offset >= split.num_rows:
            return
        remainder = TableSplit(
            table=split.info.table,
            split_id=split.info.split_id,
            storage_node=split.info.storage_node,
            row_start=split.info.row_start + offset,
            row_stop=split.info.row_stop,
            size_bytes=int(
                split.info.size_bytes
                * (split.num_rows - offset)
                / max(1, split.num_rows)
            ),
        )
        self._pending.append(SystemSplit(split.table, remainder))

    def record_scan(self, rows: int, nbytes: int) -> None:
        self.rows_scanned += rows
        self.bytes_scanned += nbytes

    @property
    def rows_remaining(self) -> int:
        return max(0, self.total_rows - self.rows_scanned)

    @property
    def progress(self) -> float:
        if self.total_rows == 0:
            return 1.0
        return min(1.0, self.rows_scanned / self.total_rows)
