"""Exchange client: fetches pages from upstream task output buffers.

One client exists per (task, remote source); its receive buffer is a
runtime elastic buffer (Section 4.2.2) whose turn-up counter feeds the
bottleneck localizer (Section 5.1).  The client maintains the task's
global remote split set: splits are added when upstream tasks appear
(stage DOP increase) and retired when an end page arrives — either the
natural completion of the upstream task or an elastic shutdown signal.
The client is *finished* once every known upstream ended and the receive
buffer drained, at which point exchange source operators observe end
pages and the relay game begins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..buffers import ElasticPageBuffer
from ..buffers.elastic import WaiterList
from ..config import BufferConfig, CostModel
from ..errors import InvariantViolation
from ..pages import Page
from ..sim import SimKernel, transfer
from .splits import RemoteSplit

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

#: Max pages moved per fetch round-trip.
_FETCH_BATCH = 8


@dataclass
class _SplitState:
    split: RemoteSplit
    fetching: bool = False
    waiting: bool = False
    ended: bool = False


class ExchangeClient:
    def __init__(
        self,
        kernel: SimKernel,
        buffer_config: BufferConfig,
        cost: CostModel,
        node: "Node",
        name: str = "exchange",
    ):
        self.kernel = kernel
        self.cost = cost
        self.node = node
        self.name = name
        self.buffer = ElasticPageBuffer(kernel, buffer_config, name=f"{name}.recv")
        self.splits: dict[tuple, _SplitState] = {}
        self.rows_received = 0
        self.bytes_received = 0
        #: Signalled when the finished state may have changed or new pages
        #: arrived; exchange source operators wait here.
        self.on_output = self.buffer.not_empty
        self.buffer.not_full.add(self._resume_all)
        self._no_more_splits = False
        #: Set when the owning task crashes: a dead client must never take
        #: pages from upstream buffers again (they belong to the
        #: replacement task after requeue).
        self.closed = False

    def close(self) -> None:
        self.closed = True

    # -- split set management (dynamic scheduler hooks) -------------------
    def add_split(self, split: RemoteSplit) -> None:
        if split.key in self.splits:
            return
        state = _SplitState(split)
        self.splits[split.key] = state
        self._try_fetch(state)

    def live_upstreams(self) -> list[RemoteSplit]:
        return [s.split for s in self.splits.values() if not s.ended]

    @property
    def finished(self) -> bool:
        return (
            bool(self.splits)
            and all(s.ended for s in self.splits.values())
            and self.buffer.is_empty
        )

    # -- consumer side (exchange source operators) ----------------------
    def poll(self) -> Page | None:
        """Next data page, an end page when finished, or ``None`` to block."""
        page = self.buffer.poll()
        if page is not None:
            return page
        if self.finished:
            return Page.end()
        # A poll on empty may have grown the buffer: resume paused fetches.
        self._resume_all()
        return None

    @property
    def has_output(self) -> bool:
        return not self.buffer.is_empty or self.finished

    def waiters(self) -> WaiterList:
        return self.buffer.not_empty

    # -- fetch machinery ----------------------------------------------------
    def _resume_all(self) -> None:
        # Re-arm the persistent not_full subscription (WaiterList is
        # one-shot) and kick every idle split.
        self.buffer.not_full.add(self._resume_all)
        for state in list(self.splits.values()):
            self._try_fetch(state)

    def _try_fetch(self, state: _SplitState) -> None:
        if self.closed:
            return
        if state.fetching or state.ended:
            return
        if self.buffer.free_slots <= 0:
            return
        upstream_buffer = state.split.upstream.output_buffer
        if not upstream_buffer.has_data(state.split.buffer_id):
            queue = upstream_buffer.consumers.get(state.split.buffer_id)
            if queue is not None and queue.ended and not queue.pages:
                # Ended and fully drained by us earlier.
                return
            if not state.waiting:
                state.waiting = True

                def wake(state=state) -> None:
                    state.waiting = False
                    self._try_fetch(state)

                if queue is not None:
                    queue.on_update.add(wake)
                else:
                    # Our buffer id does not exist yet (e.g. a task group
                    # being wired during DOP switching): wait for it.
                    upstream_buffer.on_consumer_added.add(wake)
            return
        batch = upstream_buffer.take(
            state.split.buffer_id, min(_FETCH_BATCH, self.buffer.free_slots)
        )
        if not batch:
            self._try_fetch(state)  # re-register waiter
            return
        state.fetching = True
        nbytes = sum(p.size_bytes for p in batch)
        # A dead upstream node's spooled output stays readable via durable
        # disaggregated storage — only our own NIC is occupied then.
        upstream_node = state.split.upstream.node
        src_nic = upstream_node.nic if upstream_node.alive else None
        dst_nic = self.node.nic

        def commit(state=state, batch=batch, nbytes=nbytes) -> None:
            self._commit_fetch(state, batch, nbytes)

        transfer(
            self.kernel, src_nic, dst_nic, nbytes, self.cost.network_latency, commit
        )

    def _commit_fetch(self, state: _SplitState, batch: list[Page], nbytes: int) -> None:
        state.fetching = False
        self.bytes_received += nbytes
        for page in batch:
            if page.is_end:
                if state.ended:
                    raise InvariantViolation(f"{self.name}: duplicate end page")
                state.ended = True
                continue
            self.rows_received += page.num_rows
            self.buffer.put(page)
        if state.ended and self.finished:
            # Wake blocked source drivers so they can observe the end.
            self.buffer.not_empty.notify_all()
        if not state.ended:
            self._try_fetch(state)
