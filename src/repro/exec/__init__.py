"""Execution layer: tasks, drivers, operators, splits, exchange clients."""

from .driver import Driver, DriverState
from .exchange_client import ExchangeClient
from .splits import RemoteSplit, SplitFeed, SystemSplit
from .task import Task, TaskId

__all__ = [
    "Driver",
    "DriverState",
    "ExchangeClient",
    "RemoteSplit",
    "SplitFeed",
    "SystemSplit",
    "Task",
    "TaskId",
]
