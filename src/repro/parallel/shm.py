"""Shared-memory segment helpers (lifecycle + resource-tracker quirks).

The pool forks its workers *after* calling
:func:`ensure_tracker_running`, so host and workers all talk to one
resource-tracker process.  The tracker's per-type cache is a set, which
makes Python 3.11's register-on-attach quirk (bpo-39959) harmless here:
re-registering an attached name is an idempotent ``add`` and the single
``unlink`` the owning side performs removes it exactly once.  On 3.13+
attaches pass ``track=False`` and never register at all.
"""

from __future__ import annotations

import secrets
from multiprocessing import resource_tracker, shared_memory

__all__ = [
    "create_segment",
    "attach_segment",
    "unlink_segment",
    "ensure_tracker_running",
]


def ensure_tracker_running() -> None:
    """Start the resource tracker in this process (before any fork), so
    forked children inherit it instead of spawning their own."""
    resource_tracker.ensure_running()


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh segment with a collision-proof name (min size 1 byte)."""
    name = f"repro-{secrets.token_hex(8)}"
    return shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        # 3.11/3.12 re-register on attach; with the shared tracker that
        # is an idempotent set-add, balanced by the owner's unlink.
        return shared_memory.SharedMemory(name=name)


def unlink_segment(seg: shared_memory.SharedMemory) -> None:
    """Close and unlink, tolerating a segment that is already gone."""
    try:
        seg.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - peer already unlinked
        pass
