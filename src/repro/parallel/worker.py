"""Worker-process entry point: a blocking job loop over one duplex pipe.

Each worker owns caches of *broadcast* state — compiled operator specs
and pinned join-build indexes — both materialised lazily so a worker
that never probes a given join never pays for its index.  Array data
always travels through shared memory (see :mod:`pagebuf`); the pipe
carries only control messages, layout metadata, and small params dicts.

Messages host -> worker::

    ("job", ticket, kind, seg_name | None, meta, params)
    ("spec", spec_id, payload)          # broadcast, compiled on first use
    ("pin", index_id, seg_name, meta)   # broadcast build-key segment
    ("release", index_id)
    ("stop",)

Replies worker -> host::

    ("ok", ticket, out_seg_name | None, out_meta, values, exec_ns)
    ("err", ticket, exc_type_name, message, traceback_text)
"""

from __future__ import annotations

import time
import traceback

from .jobs import build_index_from_arrays, build_spec, run_job
from .pagebuf import decode_arrays, encode_arrays, write_buffers
from .shm import attach_segment, create_segment

__all__ = ["worker_main", "WorkerContext"]


class WorkerContext:
    """Worker-resident caches handed to every job invocation."""

    def __init__(self):
        self._spec_payloads: dict[int, object] = {}
        self._specs: dict[int, object] = {}
        self._pins: dict[int, tuple[str, list]] = {}
        self._indexes: dict[int, object] = {}
        self._pin_segments: dict[int, object] = {}

    def add_spec(self, spec_id: int, payload) -> None:
        self._spec_payloads[spec_id] = payload
        # Ids are process-unique on the host side, but drop any compiled
        # form anyway: a re-broadcast must never serve a stale closure.
        self._specs.pop(spec_id, None)

    def get_spec(self, spec_id: int):
        spec = self._specs.get(spec_id)
        if spec is None:
            spec = self._specs[spec_id] = build_spec(self._spec_payloads[spec_id])
        return spec

    def add_index(self, index_id: int, seg_name: str, meta) -> None:
        self._pins[index_id] = (seg_name, meta)
        self._indexes.pop(index_id, None)

    def get_index(self, index_id: int):
        index = self._indexes.get(index_id)
        if index is None:
            seg_name, meta = self._pins[index_id]
            seg = attach_segment(seg_name)
            # Copy the key columns out so the index owns its arrays and
            # the segment can be released independently of index life.
            key_cols = decode_arrays(seg.buf, meta, copy=True)
            seg.close()
            index = self._indexes[index_id] = build_index_from_arrays(key_cols)
            del self._pins[index_id]
        return index

    def release_index(self, index_id: int) -> None:
        self._pins.pop(index_id, None)
        self._indexes.pop(index_id, None)


def _run_one(ctx: WorkerContext, kind: str, seg_name, meta, params):
    """Attach -> decode -> run -> encode; returns the reply payload."""
    seg = None
    arrays: list = []
    try:
        if seg_name is not None:
            seg = attach_segment(seg_name)
            arrays = decode_arrays(seg.buf, meta)
        out_arrays, values = run_job(kind, arrays, params, ctx)
        out_name = None
        out_meta: list = []
        if out_arrays:
            out_meta, buffers, total = encode_arrays(out_arrays)
            out_seg = create_segment(total)
            write_buffers(out_seg.buf, buffers)
            del buffers
            out_name = out_seg.name
            # Close our mapping; the host attaches by name and unlinks.
            out_seg.close()
        # Result arrays may be views into the input segment (e.g. a bare
        # column projection); drop them before the segment is closed.
        del out_arrays
        return out_name, out_meta, values
    finally:
        del arrays
        if seg is not None:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - job kept a view alive
                pass


def worker_main(conn, parent_conn=None) -> None:
    """Blocking worker loop; returns when told to stop or the pipe dies."""
    if parent_conn is not None:
        parent_conn.close()
    ctx = WorkerContext()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - host went away
            return
        tag = msg[0]
        if tag == "stop":
            return
        if tag == "spec":
            ctx.add_spec(msg[1], msg[2])
            continue
        if tag == "pin":
            ctx.add_index(msg[1], msg[2], msg[3])
            continue
        if tag == "release":
            ctx.release_index(msg[1])
            continue
        _, ticket, kind, seg_name, meta, params = msg
        started = time.perf_counter_ns()
        try:
            out_name, out_meta, values = _run_one(ctx, kind, seg_name, meta, params)
        except BaseException as exc:  # noqa: BLE001 - reported, not rethrown
            try:
                conn.send(
                    (
                        "err",
                        ticket,
                        type(exc).__name__,
                        str(exc),
                        traceback.format_exc(),
                    )
                )
            except (BrokenPipeError, OSError):  # pragma: no cover
                return
            continue
        exec_ns = time.perf_counter_ns() - started
        try:
            conn.send(("ok", ticket, out_name, out_meta, values, exec_ns))
        except (BrokenPipeError, OSError):  # pragma: no cover
            return
