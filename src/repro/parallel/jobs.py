"""The offload job registry: pure functions over buffer-described inputs.

Every job is ``f(arrays, params, ctx) -> (arrays_out, values_out)`` where
``arrays`` came out of the shared-memory codec, ``params`` is a small
picklable dict, and ``ctx`` gives access to worker-resident caches
(pinned join indexes, registered operator specs).  Jobs are **pure**
given their inputs plus the referenced immutable cache entries: the same
job always returns bit-identical arrays, which is what lets the host
apply results in deterministic submission order and retry after a worker
crash.  This module is the job-boundary API a future distributed or
multi-backend executor would implement against.

Job kinds
---------
``probe``           chunk of hash-join probe: key columns -> match pairs
                    (inner) or a keep mask (semi/anti) against a pinned
                    build index.
``grouped_reduce``  one page's aggregation partials: key columns + value
                    columns -> per-group unique keys and reduced fields.
``filter``          chunk of a compiled filter: referenced columns ->
                    boolean keep mask.
``project``         chunk of a compiled projection: referenced columns ->
                    output columns.
``radix``           chunk of spill partitioning: key columns -> partition
                    assignment per row.
"""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = ["run_job", "build_spec", "build_index_from_arrays"]


class _StubPage:
    """Just enough page surface for compiled expression closures
    (``page.columns[i]`` and ``page.num_rows``)."""

    __slots__ = ("columns", "num_rows")

    def __init__(self, columns, num_rows):
        self.columns = columns
        self.num_rows = num_rows


def _stub_page(arrays, params):
    positions = params["positions"]
    columns = [None] * (max(positions) + 1 if positions else 0)
    for pos, arr in zip(positions, arrays):
        columns[pos] = arr
    return _StubPage(columns, params["num_rows"])


def build_spec(payload: dict):
    """Compile a registered operator spec once per worker process."""
    from ..sql.compiler import compile_expression, compile_expressions

    kind = payload["kind"]
    if kind == "filter":
        return ("filter", compile_expression(payload["expr"]))
    if kind == "project":
        return ("project", compile_expressions(payload["exprs"]))
    raise ValueError(f"unknown spec kind {kind!r}")


def build_index_from_arrays(key_cols):
    """Reconstruct the CSR join index from pinned build key columns.

    ``_BuildIndex`` construction is deterministic given the key arrays,
    so every worker (and the host fallback) derives the same index.
    """
    from ..exec.operators.join import _BuildIndex

    return _BuildIndex.from_key_columns(key_cols)


def _job_probe(arrays, params, ctx):
    index = ctx.get_index(params["index"])
    join = params["join"]
    gids = index.probe_group_ids(list(arrays))
    if join in ("semi", "anti"):
        mask = (gids >= 0) == (join == "semi")
        return [mask], {}
    probe_rows, build_rows = index.expand_matches(gids)
    if params.get("need_mask"):
        return [probe_rows, build_rows, gids >= 0], {}
    return [probe_rows, build_rows], {}


def _job_grouped_reduce(arrays, params, ctx):
    from ..sql.functions import (
        group_codes,
        grouped_count,
        grouped_max,
        grouped_min,
        grouped_sum,
    )

    num_keys = params["num_keys"]
    num_rows = params["num_rows"]
    keys = list(arrays[:num_keys])
    if keys:
        codes, uniques = group_codes(keys)
        ngroups = len(uniques[0])
    else:
        codes = np.zeros(num_rows, dtype=np.int64)
        ngroups = 1
        uniques = []
    out: list[np.ndarray] = []
    for op, src in params["ops"]:
        if op == "count":
            out.append(grouped_count(codes, ngroups))
            continue
        values = arrays[src]
        if op == "sumf":
            out.append(
                grouped_sum(codes, values.astype(np.float64, copy=False), ngroups)
            )
        elif op == "sum":
            out.append(grouped_sum(codes, values, ngroups))
        elif op == "min":
            out.append(grouped_min(codes, values, ngroups))
        else:
            out.append(grouped_max(codes, values, ngroups))
    return list(uniques) + out, {"ngroups": ngroups, "nkeys": len(uniques)}


def _job_filter(arrays, params, ctx):
    _, evaluate = ctx.get_spec(params["spec"])
    mask = evaluate(_stub_page(arrays, params)).astype(bool, copy=False)
    return [mask], {}


def _job_project(arrays, params, ctx):
    _, evaluate = ctx.get_spec(params["spec"])
    return list(evaluate(_stub_page(arrays, params))), {}


def _job_radix(arrays, params, ctx):
    from ..exec.spill.partition import radix_assignments

    return [radix_assignments(list(arrays), params["fanout"], params["level"])], {}


# -- test-support jobs (exercised by the pool's own test suite) ------------
def _job_echo(arrays, params, ctx):
    return list(arrays), dict(params.get("values", {}))


def _job_crash(arrays, params, ctx):  # pragma: no cover - kills the process
    os._exit(17)


def _job_sleep(arrays, params, ctx):
    time.sleep(params.get("seconds", 0.05))
    return [], {}


def _job_raise(arrays, params, ctx):
    raise ValueError(params.get("message", "offload job failed"))


_JOBS = {
    "probe": _job_probe,
    "grouped_reduce": _job_grouped_reduce,
    "filter": _job_filter,
    "project": _job_project,
    "radix": _job_radix,
    "_test_echo": _job_echo,
    "_test_crash": _job_crash,
    "_test_sleep": _job_sleep,
    "_test_raise": _job_raise,
}


def run_job(kind: str, arrays, params, ctx):
    fn = _JOBS.get(kind)
    if fn is None:
        raise ValueError(f"unknown job kind {kind!r}")
    return fn(arrays, params, ctx)
