"""The worker-process pool: spawn, dispatch, death detection, respawn.

The pool is deliberately dumb about *what* jobs do — it moves control
messages over per-worker pipes and reports per-ticket outcomes as plain
status tuples (``("ok", ...)``, ``("err", ...)``, ``("crash",)``).
Policy — retries, structured exceptions, result decoding — lives in
:class:`repro.parallel.offload.OffloadClient`.

Determinism note: ticket ids increase in submission order and the host
waits for tickets in an order chosen by the (deterministic) simulation
control plane, so wall-clock completion order never leaks into results.

Crash handling: every in-flight ticket is tagged with the worker it was
sent to.  When a worker dies (pipe EOF / dead process / job-deadline
overrun, in which case it is killed), all of its in-flight tickets
resolve to ``("crash",)``, the worker is respawned, and broadcast state
(operator specs, pinned indexes) is replayed to the replacement — so a
crash can never strand a waiter or hang the engine.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import time
from multiprocessing import connection

from .shm import ensure_tracker_running
from .worker import worker_main

__all__ = ["WorkerPool", "get_pool", "shutdown_pools"]


class _Worker:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn


class WorkerPool:
    """A fixed-size pool of forked worker processes."""

    def __init__(self, workers: int, job_timeout_s: float = 120.0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.size = workers
        self.job_timeout_s = job_timeout_s
        # One tracker for host + workers: start it before the first fork.
        ensure_tracker_running()
        self._ctx = mp.get_context("fork")
        self._workers: list[_Worker | None] = [None] * workers
        self._next_ticket = 0
        self._rr = 0
        #: ticket -> worker slot it was dispatched to
        self._pending: dict[int, int] = {}
        #: ticket -> status tuple, drained by :meth:`wait`
        self._done: dict[int, tuple] = {}
        #: broadcast log replayed to respawned workers, keyed for removal
        self._broadcasts: dict[tuple, tuple] = {}
        self.respawns = 0
        self._closed = False
        for slot in range(workers):
            self._spawn(slot)

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, parent_conn),
            name=f"repro-worker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._workers[slot] = _Worker(proc, parent_conn)
        for msg in self._broadcasts.values():
            parent_conn.send(msg)

    def _bury(self, slot: int) -> None:
        """Resolve every in-flight ticket on a dead worker and respawn it."""
        worker = self._workers[slot]
        if worker is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            if worker.proc.is_alive():  # pragma: no cover - deadline kills
                worker.proc.terminate()
            worker.proc.join(timeout=5.0)
            self._workers[slot] = None
        for ticket, owner in list(self._pending.items()):
            if owner == slot:
                del self._pending[ticket]
                self._done[ticket] = ("crash",)
        if not self._closed:
            self.respawns += 1
            self._spawn(slot)

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            if worker is None:
                continue
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers = [None] * self.size
        for ticket in self._pending:
            self._done[ticket] = ("crash",)
        self._pending.clear()

    # -- dispatch ----------------------------------------------------------
    def broadcast(self, msg: tuple, replay_key: tuple | None = None) -> None:
        """Send ``msg`` to every worker; ``replay_key`` keeps it in the
        respawn log until :meth:`unbroadcast` removes it."""
        if replay_key is not None:
            self._broadcasts[replay_key] = msg
        for slot, worker in enumerate(self._workers):
            if worker is None:
                continue
            try:
                worker.conn.send(msg)
            except (BrokenPipeError, OSError):
                self._bury(slot)

    def unbroadcast(self, replay_key: tuple, msg: tuple | None = None) -> None:
        """Drop a replayed broadcast, optionally sending a tombstone."""
        self._broadcasts.pop(replay_key, None)
        if msg is not None:
            self.broadcast(msg)

    def submit(self, kind, seg_name, meta, params, worker: int | None = None) -> int:
        """Dispatch one job; returns its ticket id."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        ticket = self._next_ticket
        self._next_ticket += 1
        slot = self._rr if worker is None else worker % self.size
        if worker is None:
            self._rr = (self._rr + 1) % self.size
        target = self._workers[slot]
        try:
            target.conn.send(("job", ticket, kind, seg_name, meta, params))
        except (BrokenPipeError, OSError):
            self._bury(slot)
            self._done[ticket] = ("crash",)
            return ticket
        self._pending[ticket] = slot
        return ticket

    # -- completion --------------------------------------------------------
    def _drain_ready(self, timeout: float) -> None:
        conns = {
            worker.conn: slot
            for slot, worker in enumerate(self._workers)
            if worker is not None
        }
        if not conns:
            return
        for conn in connection.wait(list(conns), timeout):
            slot = conns[conn]
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                self._bury(slot)
                continue
            tag, ticket = reply[0], reply[1]
            self._pending.pop(ticket, None)
            if tag == "ok":
                self._done[ticket] = ("ok", reply[2], reply[3], reply[4], reply[5])
            else:
                self._done[ticket] = ("err", reply[2], reply[3], reply[4])

    def wait(self, ticket: int, timeout_s: float | None = None) -> tuple:
        """Block until ``ticket`` resolves; kills its worker on deadline.

        Returns ``("ok", seg_name, meta, values, exec_ns)``,
        ``("err", exc_type, message, traceback)`` or ``("crash",)``.
        """
        deadline = time.monotonic() + (
            self.job_timeout_s if timeout_s is None else timeout_s
        )
        while True:
            result = self._done.pop(ticket, None)
            if result is not None:
                return result
            if ticket not in self._pending:
                return ("crash",)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Deadline overrun: the assigned worker is presumed hung.
                slot = self._pending[ticket]
                worker = self._workers[slot]
                if worker is not None and worker.proc.is_alive():
                    worker.proc.terminate()
                self._bury(slot)
                return self._done.pop(ticket, ("crash",))
            self._drain_ready(min(remaining, 0.1))

    def poll(self) -> None:
        """Opportunistically drain finished replies without blocking."""
        self._drain_ready(0)


# -- process-wide pool registry -------------------------------------------
_POOLS: dict[int, WorkerPool] = {}


def get_pool(workers: int, job_timeout_s: float = 120.0) -> WorkerPool:
    """Process-wide pool singleton per worker count (engines are cheap and
    plentiful in the harness; forked workers are not)."""
    pool = _POOLS.get(workers)
    if pool is None or pool._closed:
        pool = _POOLS[workers] = WorkerPool(workers, job_timeout_s)
    return pool


def shutdown_pools() -> None:
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)
