"""Array <-> shared-memory codec for offload jobs (DESIGN.md §15).

Job inputs and outputs are plain lists of numpy arrays.  The codec packs
them into one contiguous byte region (a ``multiprocessing.shared_memory``
segment) and describes the layout with a small picklable *meta* list —
dtype strings, lengths, and offsets, never array data.  Fixed-width
arrays are written as their raw little-endian buffers and come back as
``np.frombuffer`` views (zero-copy on the worker side).  Object (string)
columns are not contiguous in memory, so they get an explicit packed
encoding — an ``int32`` length array followed by the concatenated UTF-8
payload — mirroring ``Page.column_buffers()`` so the two layouts stay
interchangeable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["encode_arrays", "write_buffers", "decode_arrays"]

#: Meta entry tags.
_FIXED = "a"
_OBJECT = "o"


def encode_arrays(arrays) -> tuple[list, list, int]:
    """Describe ``arrays`` as ``(meta, buffers, total_bytes)``.

    ``meta`` is picklable and contains no array data; ``buffers`` is a
    flat list of buffer-protocol objects whose concatenation (see
    :func:`write_buffers`) is the byte region ``meta`` describes.
    """
    meta: list = []
    buffers: list = []
    offset = 0
    for arr in arrays:
        arr = np.asarray(arr)
        if arr.dtype == object:
            encoded = [
                b"" if v is None else str(v).encode("utf-8")
                for v in arr.tolist()
            ]
            lengths = np.fromiter(
                (len(e) for e in encoded), dtype=np.int32, count=len(encoded)
            )
            payload = b"".join(encoded)
            lengths_buf = memoryview(lengths).cast("B")
            meta.append((_OBJECT, len(arr), offset, len(lengths_buf), len(payload)))
            buffers.append(lengths_buf)
            buffers.append(payload)
            offset += len(lengths_buf) + len(payload)
        else:
            contiguous = np.ascontiguousarray(arr)
            buf = memoryview(contiguous).cast("B")
            meta.append((_FIXED, contiguous.dtype.str, len(contiguous), offset, len(buf)))
            buffers.append(buf)
            offset += len(buf)
    return meta, buffers, offset


def write_buffers(dst, buffers) -> None:
    """Write the buffer list sequentially into ``dst`` (a memoryview)."""
    offset = 0
    for buf in buffers:
        n = len(buf)
        dst[offset : offset + n] = buf
        offset += n


def decode_arrays(buf, meta, copy: bool = False) -> list[np.ndarray]:
    """Rebuild the array list a peer encoded into ``buf``.

    With ``copy=False`` fixed-width arrays are read-only views into
    ``buf`` (the caller must keep the backing segment alive while they
    are in use); ``copy=True`` detaches them, which the host side uses
    before unlinking a result segment.  Object columns are always
    materialised (per-row decode).
    """
    out: list[np.ndarray] = []
    for entry in meta:
        if entry[0] == _OBJECT:
            _, count, offset, lengths_bytes, payload_bytes = entry
            lengths = np.frombuffer(buf, dtype=np.int32, count=count, offset=offset)
            payload = bytes(
                buf[offset + lengths_bytes : offset + lengths_bytes + payload_bytes]
            )
            values = np.empty(count, dtype=object)
            at = 0
            for i, n in enumerate(lengths.tolist()):
                values[i] = payload[at : at + n].decode("utf-8")
                at += n
            out.append(values)
        else:
            _, dtype, count, offset, _ = entry
            arr = np.frombuffer(buf, dtype=np.dtype(dtype), count=count, offset=offset)
            out.append(arr.copy() if copy else arr)
    return out
