"""``repro.parallel``: the shared-memory worker-pool offload backend.

Off by default; enabled with ``EngineConfig.with_parallelism(workers=N)``.
The deterministic SimKernel stays the single-threaded control plane —
workers only execute *pure kernel work* (join probe expansion,
aggregation partials, compiled filter/project batches, radix spill
partitioning) over arrays shipped through ``multiprocessing.shared_memory``
with zero data-array pickling.  See DESIGN.md §15 for the job API,
page layout, ordering, and crash semantics.
"""

from .offload import OffloadClient, OffloadStats
from .pool import WorkerPool, get_pool, shutdown_pools

__all__ = [
    "OffloadClient",
    "OffloadStats",
    "WorkerPool",
    "get_pool",
    "shutdown_pools",
]
