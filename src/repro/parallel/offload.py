"""Host-side offload client: the API operators program against.

The client turns operator-level requests ("probe this page against that
pinned index", "reduce this page's aggregation partials") into pool
jobs: arrays are packed into shared-memory segments (:mod:`pagebuf`),
dispatched (:mod:`pool`), and results decoded back into host-owned
arrays.  Two properties matter more than raw speed:

* **Determinism.**  Elementwise kernels (probe expansion, filter masks,
  projected columns, radix assignments) are chunked by row range and the
  chunk results concatenated in chunk order, which is bit-identical to
  the whole-page computation by construction.  Deferred jobs
  (aggregation partials) are waited in submission order at operator sync
  points.  Wall-clock completion order never influences any result.
* **Crash containment.**  Input segments are retained until a job
  succeeds, so a job that died with its worker is resubmitted as-is (all
  job kinds are pure) up to ``max_retries`` times, then surfaces as
  :class:`~repro.errors.WorkerCrashedError`.  Exceptions raised *inside*
  a job are deterministic and re-raised immediately as
  :class:`~repro.errors.WorkerJobError` with the remote traceback.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from ..errors import WorkerCrashedError, WorkerJobError
from .pagebuf import decode_arrays, encode_arrays, write_buffers
from .pool import get_pool
from .shm import attach_segment, create_segment, unlink_segment

__all__ = ["OffloadClient", "OffloadStats"]

#: Spec/index ids must be process-unique, not per-client: pools (and the
#: worker-side caches keyed by these ids) are process-wide singletons
#: shared by every engine, so a second engine reusing id 0 would collide
#: with the first engine's broadcast state.
_SPEC_IDS = itertools.count()
_INDEX_IDS = itertools.count()


class OffloadStats:
    """Side-band offload telemetry.

    Deliberately kept out of traces and :class:`WorkloadReport` content:
    wall-clock job timings vary run to run, and report bytes must stay
    identical between serial and parallel executions of the same seed.
    """

    __slots__ = (
        "jobs",
        "jobs_by_kind",
        "bytes_out",
        "bytes_in",
        "exec_ns",
        "wait_ns",
        "retries",
        "crashes",
        "job_errors",
    )

    def __init__(self):
        self.jobs = 0
        self.jobs_by_kind: dict[str, int] = {}
        self.bytes_out = 0
        self.bytes_in = 0
        self.exec_ns = 0
        self.wait_ns = 0
        self.retries = 0
        self.crashes = 0
        self.job_errors = 0

    def snapshot(self) -> dict:
        out = {
            "jobs": self.jobs,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "exec_ms": self.exec_ns / 1e6,
            "wait_ms": self.wait_ns / 1e6,
            # Host blocked time per job: the queue-wait cost of offloading.
            "wait_ms_per_job": (
                round(self.wait_ns / 1e6 / self.jobs, 3) if self.jobs else 0.0
            ),
            # Worker exec time per host blocked time: > 1 means the pool
            # delivered real overlap; < 1 means IPC overhead dominated.
            "utilization": (
                round(self.exec_ns / self.wait_ns, 3) if self.wait_ns else 0.0
            ),
            "retries": self.retries,
            "crashes": self.crashes,
            "job_errors": self.job_errors,
        }
        for kind, count in sorted(self.jobs_by_kind.items()):
            out[f"jobs.{kind}"] = count
        return out


class _Inflight:
    __slots__ = ("seg", "meta", "kind", "params", "worker", "retries", "ticket")

    def __init__(self, seg, meta, kind, params, worker, ticket):
        self.seg = seg
        self.meta = meta
        self.kind = kind
        self.params = params
        self.worker = worker
        self.retries = 0
        self.ticket = ticket


class OffloadClient:
    """One per engine with ``parallel.workers > 0``; owns no processes
    itself — pools are process-wide singletons shared across engines."""

    def __init__(self, config):
        self.config = config
        self.workers = config.workers
        self.pool = get_pool(config.workers, config.job_timeout_s)
        self.stats = OffloadStats()
        self._inflight: dict[int, _Inflight] = {}
        self._next_handle = 0
        self._pinned: dict[int, object] = {}

    # -- broadcast state ---------------------------------------------------
    def register_spec(self, payload: dict) -> int:
        """Broadcast a compiled-operator spec (filter/project expression
        payload); workers compile it lazily on first use."""
        spec_id = next(_SPEC_IDS)
        self.pool.broadcast(("spec", spec_id, payload), replay_key=("spec", spec_id))
        return spec_id

    def pin_index(self, key_cols) -> int:
        """Ship join-build key columns once; workers lazily derive the
        (deterministic) build index from them on first probe."""
        index_id = next(_INDEX_IDS)
        meta, buffers, total = encode_arrays(key_cols)
        seg = create_segment(total)
        write_buffers(seg.buf, buffers)
        del buffers
        self.stats.bytes_out += total
        self._pinned[index_id] = seg
        self.pool.broadcast(
            ("pin", index_id, seg.name, meta), replay_key=("pin", index_id)
        )
        return index_id

    def release_index(self, index_id: int) -> None:
        seg = self._pinned.pop(index_id, None)
        if seg is None:
            return
        self.pool.unbroadcast(("pin", index_id), ("release", index_id))
        unlink_segment(seg)

    # -- job lifecycle -----------------------------------------------------
    def submit(self, kind: str, arrays, params: dict, worker: int | None = None) -> int:
        """Dispatch one job; returns an opaque handle for :meth:`wait`."""
        seg = None
        meta: list = []
        if arrays:
            meta, buffers, total = encode_arrays(arrays)
            seg = create_segment(total)
            write_buffers(seg.buf, buffers)
            del buffers
            self.stats.bytes_out += total
        ticket = self.pool.submit(
            kind, None if seg is None else seg.name, meta, params, worker
        )
        handle = self._next_handle
        self._next_handle += 1
        self._inflight[handle] = _Inflight(seg, meta, kind, params, worker, ticket)
        self.stats.jobs += 1
        self.stats.jobs_by_kind[kind] = self.stats.jobs_by_kind.get(kind, 0) + 1
        return handle

    def wait(self, handle: int):
        """Block until the job resolves; returns ``(arrays, values)``.

        Retries crashed jobs (bounded), re-raises remote job exceptions,
        and always releases the input segment before returning/raising.
        """
        info = self._inflight.pop(handle)
        started = time.perf_counter_ns()
        try:
            while True:
                result = self.pool.wait(info.ticket)
                tag = result[0]
                if tag == "ok":
                    _, out_name, out_meta, values, exec_ns = result
                    self.stats.exec_ns += exec_ns
                    arrays: list = []
                    if out_name is not None:
                        out_seg = attach_segment(out_name)
                        arrays = decode_arrays(out_seg.buf, out_meta, copy=True)
                        self.stats.bytes_in += out_seg.size
                        unlink_segment(out_seg)
                    return arrays, values
                if tag == "err":
                    _, exc_type, message, remote_tb = result
                    self.stats.job_errors += 1
                    raise WorkerJobError(
                        f"offload job {info.kind!r} raised {exc_type}: {message}",
                        kind=info.kind,
                        remote_traceback=remote_tb,
                    )
                # crash: resubmit the retained input as-is (jobs are pure).
                self.stats.crashes += 1
                if info.retries >= self.config.max_retries:
                    raise WorkerCrashedError(
                        f"offload job {info.kind!r} lost to worker crashes "
                        f"after {info.retries} retries",
                        kind=info.kind,
                        retries=info.retries,
                    )
                info.retries += 1
                self.stats.retries += 1
                info.ticket = self.pool.submit(
                    info.kind,
                    None if info.seg is None else info.seg.name,
                    info.meta,
                    info.params,
                    info.worker,
                )
        finally:
            self.stats.wait_ns += time.perf_counter_ns() - started
            if info.seg is not None:
                unlink_segment(info.seg)
                info.seg = None

    # -- chunking ----------------------------------------------------------
    def want(self, enabled: bool, num_rows: int) -> bool:
        return enabled and num_rows >= self.config.min_offload_rows

    def chunk_bounds(self, num_rows: int) -> list[tuple[int, int]]:
        """Deterministic near-even row ranges, at most one per worker and
        never smaller than ``min_chunk_rows`` (except the only chunk)."""
        chunks = min(self.workers, max(1, num_rows // self.config.min_chunk_rows))
        step, extra = divmod(num_rows, chunks)
        bounds = []
        start = 0
        for i in range(chunks):
            end = start + step + (1 if i < extra else 0)
            bounds.append((start, end))
            start = end
        return bounds

    def _fanout(self, kind: str, columns, num_rows: int, params: dict):
        """Submit one chunked job per row range with worker affinity."""
        handles = []
        for i, (start, end) in enumerate(self.chunk_bounds(num_rows)):
            chunk_params = dict(params)
            chunk_params["num_rows"] = end - start
            handles.append(
                self.submit(
                    kind,
                    [col[start:end] for col in columns],
                    chunk_params,
                    worker=i,
                )
            )
        return handles

    # -- operator-level helpers -------------------------------------------
    def probe_mask(self, index_id: int, key_cols, join: str) -> np.ndarray:
        """Semi/anti probe: the keep mask for each probe row."""
        num_rows = len(key_cols[0])
        handles = self._fanout(
            "probe", key_cols, num_rows, {"index": index_id, "join": join}
        )
        parts = [self.wait(h)[0][0] for h in handles]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def probe_expand(self, index_id: int, key_cols, need_mask: bool):
        """Inner/left probe: ``(probe_rows, build_rows[, matched_mask])``
        in probe-row order, exactly as ``expand_matches`` would produce."""
        num_rows = len(key_cols[0])
        params = {"index": index_id, "join": "inner"}
        if need_mask:
            params["need_mask"] = True
        handles = self._fanout("probe", key_cols, num_rows, params)
        probe_parts, build_parts, mask_parts = [], [], []
        for h, (start, _end) in zip(handles, self.chunk_bounds(num_rows)):
            arrays, _ = self.wait(h)
            probe_parts.append(arrays[0] + start if start else arrays[0])
            build_parts.append(arrays[1])
            if need_mask:
                mask_parts.append(arrays[2])
        probe_rows = (
            probe_parts[0] if len(probe_parts) == 1 else np.concatenate(probe_parts)
        )
        build_rows = (
            build_parts[0] if len(build_parts) == 1 else np.concatenate(build_parts)
        )
        if not need_mask:
            return probe_rows, build_rows, None
        mask = mask_parts[0] if len(mask_parts) == 1 else np.concatenate(mask_parts)
        return probe_rows, build_rows, mask

    def filter_mask(self, spec_id: int, columns, positions, num_rows: int):
        """Evaluate a compiled filter over referenced columns, chunked."""
        handles = self._fanout(
            "filter", columns, num_rows, {"spec": spec_id, "positions": positions}
        )
        parts = [self.wait(h)[0][0] for h in handles]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def project_columns(self, spec_id: int, columns, positions, num_rows: int):
        """Evaluate compiled projections over referenced columns, chunked."""
        handles = self._fanout(
            "project", columns, num_rows, {"spec": spec_id, "positions": positions}
        )
        parts = [self.wait(h)[0] for h in handles]
        if len(parts) == 1:
            return parts[0]
        return [np.concatenate(cols) for cols in zip(*parts)]

    def radix_page(self, key_cols, fanout: int, level: int, num_rows: int):
        """Radix partition assignments for one page's key columns."""
        handles = self._fanout(
            "radix", key_cols, num_rows, {"fanout": fanout, "level": level}
        )
        parts = [self.wait(h)[0][0] for h in handles]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def submit_grouped(self, key_cols, value_arrays, ops, num_rows: int) -> int:
        """Fire-and-stash one page's aggregation partials.  ``ops`` index
        into ``key_cols + value_arrays``; the caller waits tickets in
        submission order via :meth:`wait_grouped`."""
        return self.submit(
            "grouped_reduce",
            list(key_cols) + list(value_arrays),
            {"num_keys": len(key_cols), "ops": ops, "num_rows": num_rows},
        )

    def wait_grouped(self, handle: int):
        """Resolve a :meth:`submit_grouped` ticket into
        ``(unique_key_cols, field_arrays, ngroups)``."""
        arrays, values = self.wait(handle)
        nkeys = values["nkeys"]
        return arrays[:nkeys], arrays[nkeys:], values["ngroups"]
