"""Simulated hardware resources: CPU core pools and NIC links.

Each simulated node owns a :class:`CpuPool` (drivers and shuffle executors
occupy cores for the virtual duration of their work) and a :class:`NicQueue`
(page transfers occupy link bandwidth).  Contention on these resources is
what makes DOP tuning behave like the paper: adding drivers helps until a
node's cores saturate; shuffling from too few nodes makes the NIC/CPU of
those nodes the bottleneck.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable

from .kernel import SimKernel


class CpuPool:
    """A fixed number of cores executing queued work items.

    Work is submitted as ``(cost_seconds, priority, fn)``; ``fn`` fires when
    the item has held a core for ``cost_seconds``.  Lower priority values run
    first (the task executor uses this for its multi-level feedback queue).
    Utilization is tracked as a cumulative busy-core-seconds integral so the
    auto-tuner can estimate spare CPU capacity (paper Section 5.3).
    """

    def __init__(self, kernel: SimKernel, cores: int, name: str = "cpu"):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.kernel = kernel
        self.cores = cores
        self.name = name
        self._queue: list[tuple[float, int, tuple]] = []
        self._seq = itertools.count()
        self.busy = 0
        self._busy_integral = 0.0
        self._last_change = 0.0
        #: Node death (fault injection): no new work is granted a core.
        self.halted = False

    # -- utilization accounting -----------------------------------------
    def _account(self) -> None:
        now = self.kernel.now
        self._busy_integral += self.busy * (now - self._last_change)
        self._last_change = now

    def busy_core_seconds(self) -> float:
        """Cumulative busy integral up to the current virtual time."""
        self._account()
        return self._busy_integral

    def utilization_between(self, mark: float, mark_time: float) -> float:
        """Average utilization in [0, 1] since a previous sample.

        ``mark`` is a prior ``busy_core_seconds()`` reading taken at virtual
        time ``mark_time``; the result is the mean fraction of cores busy
        from then to now.
        """
        elapsed = self.kernel.now - mark_time
        if elapsed <= 0:
            return self.busy / self.cores
        return (self.busy_core_seconds() - mark) / (elapsed * self.cores)

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def idle_cores(self) -> int:
        return self.cores - self.busy

    # -- execution ----------------------------------------------------------
    def submit(self, cost: float, fn: Callable[[], None], priority: float = 0.0) -> None:
        """Queue a work item of known cost; ``fn`` runs after holding a
        core for ``cost`` virtual seconds."""
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self._push(priority, ("submit", cost, fn))

    def acquire(
        self,
        run: Callable[[], tuple[float, Callable[[], None]]],
        priority: float = 0.0,
    ) -> None:
        """Grant a core, *then* determine the work.

        ``run`` executes once a core is granted and returns
        ``(cost, commit)``; the core is held for ``cost`` virtual seconds
        and ``commit`` fires when it is released.  Drivers use this so that
        input is consumed only when they are actually scheduled.
        """
        self._push(priority, ("acquire", 0.0, run))

    def _push(self, priority: float, item) -> None:
        if self.halted:
            kind, _, fn = item
            # Committed data movements ('submit', e.g. shuffle spool writes)
            # still land — task output is spooled to durable storage in the
            # fault model.  Deferred-decision work ('acquire', driver quanta)
            # dies with the node.
            if kind == "submit":
                fn()
            return
        heapq.heappush(self._queue, (priority, next(self._seq), item))
        self._dispatch()

    def halt(self) -> None:
        """Revoke all cores (node crash).  Crashes are quantum-atomic:
        in-flight grants still fire their completion, queued committed
        writes ('submit') flush to the durable spool immediately, and
        queued deferred-decision items ('acquire') are dropped."""
        if self.halted:
            return
        self.halted = True
        queue, self._queue = self._queue, []
        for _, _, (kind, _cost, fn) in sorted(queue):
            if kind == "submit":
                fn()

    def _dispatch(self) -> None:
        if self.halted:
            return
        while self.busy < self.cores and self._queue:
            _, _, (kind, cost, fn) = heapq.heappop(self._queue)
            if kind == "acquire":
                cost, fn = fn()
                if cost < 0:
                    raise ValueError("cost must be >= 0")
            self._account()
            self.busy += 1
            self.kernel.post(cost, self._complete, fn)

    def _complete(self, fn: Callable[[], None]) -> None:
        self._account()
        self.busy -= 1
        try:
            fn()
        finally:
            self._dispatch()


class NicQueue:
    """A full-duplex network link with finite bandwidth.

    Transfers occupy the link serially per direction: a transfer of ``n``
    bytes holds the queue for ``n / bytes_per_second`` virtual seconds.
    """

    def __init__(self, kernel: SimKernel, bytes_per_second: float, name: str = "nic"):
        if bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        self.kernel = kernel
        self.bytes_per_second = bytes_per_second
        self.name = name
        self._pending: deque[tuple[float, Callable[[], None]]] = deque()
        self._active = False
        self._current: Callable[[], None] | None = None
        self.bytes_transferred = 0.0
        self._busy_integral = 0.0

    def occupy(self, nbytes: float, fn: Callable[[], None]) -> None:
        """Hold the link for ``nbytes`` worth of time, then call ``fn``."""
        duration = nbytes / self.bytes_per_second
        self._pending.append((duration, fn))
        self.bytes_transferred += nbytes
        self._drain()

    def _drain(self) -> None:
        if self._active or not self._pending:
            return
        duration, fn = self._pending.popleft()
        self._active = True
        self._current = fn
        self._busy_integral += duration
        # The link is serial: at most one transfer is in flight, so its
        # completion can live in ``_current`` and the kernel calls the
        # bound method below — no per-transfer closure.
        self.kernel.post(duration, self._transfer_done)

    def _transfer_done(self) -> None:
        fn = self._current
        self._current = None
        self._active = False
        try:
            fn()
        finally:
            self._drain()

    def busy_seconds(self) -> float:
        """Cumulative link-busy virtual seconds granted so far."""
        return self._busy_integral

    @property
    def backlog(self) -> int:
        return len(self._pending) + (1 if self._active else 0)


def transfer(
    kernel: SimKernel,
    src: NicQueue | None,
    dst: NicQueue,
    nbytes: float,
    latency: float,
    fn: Callable[[], None],
) -> None:
    """Move ``nbytes`` from ``src`` to ``dst``: both NICs are occupied and
    ``fn`` fires after the slower of the two plus fixed ``latency``.

    Loopback transfers (``src is dst``) skip the NIC entirely — intra-node
    data movement does not consume network bandwidth.  ``src=None`` models
    a read from durable disaggregated storage (the source node is dead but
    its spooled data survives): only the destination NIC is occupied.
    """
    if src is None:
        dst.occupy(nbytes, lambda: kernel.schedule(latency, fn))
        return
    if src is dst:
        kernel.schedule(latency, fn)
        return

    remaining = 2

    def one_side_done() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            kernel.schedule(latency, fn)

    src.occupy(nbytes, one_side_done)
    dst.occupy(nbytes, one_side_done)
