"""Discrete-event simulation substrate (virtual clock, CPU, NIC)."""

from .kernel import Event, SimKernel
from .resources import CpuPool, NicQueue, transfer

__all__ = ["CpuPool", "Event", "NicQueue", "SimKernel", "transfer"]
