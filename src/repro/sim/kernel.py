"""Discrete-event simulation kernel with a virtual clock.

The engine substitutes the paper's 21-node AWS cluster with a simulated
cluster.  All engine components take their notion of time from a
:class:`SimKernel`: events are callbacks scheduled at virtual timestamps,
and ``run()`` advances the clock from event to event.  The simulation is
fully deterministic — ties are broken by an insertion sequence number.

Cancelled events are removed lazily on pop, but the kernel tracks the
live-event count and compacts the heap whenever more than half of its
entries are dead, so mass cancellation (e.g. tearing down a failed query)
never grows the heap unboundedly and ``pending`` stays O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationLivelockError
from ..obs.trace import NULL_TRACER


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "cancelled", "kernel", "in_heap")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 kernel: "SimKernel | None" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.kernel = kernel
        self.in_heap = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self.kernel is not None and self.in_heap:
                self.kernel._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


class SimKernel:
    """A priority-queue event loop over virtual time."""

    #: Compaction only kicks in past this many dead entries (tiny heaps are
    #: cheaper to drain lazily than to rebuild).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_heap = 0
        #: Observability hook (``repro.obs``).  Every component reaches its
        #: tracer through the kernel it already holds; the engine swaps in
        #: a real Tracer when ``EngineConfig.tracing`` asks for one.  The
        #: tracer is read-only w.r.t. simulation state — it never schedules
        #: events or consumes randomness.
        self.tracer = NULL_TRACER

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` virtual seconds (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute virtual ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time, next(self._seq), fn, kernel=self)
        event.in_heap = True
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at the current virtual time, after pending same-time
        events already queued (FIFO among equal timestamps)."""
        return self.schedule_at(self.now, fn)

    # -- cancellation bookkeeping ----------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (heap order is total, so
        the rebuilt heap pops in exactly the same order)."""
        for event in self._heap:
            if event.cancelled:
                event.in_heap = False
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def _pop(self) -> Event:
        event = heapq.heappop(self._heap)
        event.in_heap = False
        if event.cancelled:
            self._cancelled_in_heap -= 1
        return event

    # -- execution ----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events.  O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Physical heap length including dead entries (introspection)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = self._pop()
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        stop_when: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``stop_when()`` becomes true (checked between events).

        When ``until`` is given and the queue drains earlier, the clock is
        advanced to ``until`` so periodic wall-clock measurements stay
        consistent.  ``max_events`` guards against livelock: exceeding it
        raises :class:`SimulationLivelockError`.
        """
        processed = 0
        while True:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and processed >= max_events:
                raise SimulationLivelockError(
                    f"simulation exceeded {max_events} events (livelock?)",
                    now=self.now,
                    events_processed=self._events_processed,
                )
            next_event = self._peek()
            if next_event is None:
                if until is not None and self.now < until:
                    self.now = until
                return
            if until is not None and next_event.time > until:
                self.now = until
                return
            self.step()
            processed += 1

    def _peek(self) -> Event | None:
        while self._heap and self._heap[0].cancelled:
            self._pop()
        return self._heap[0] if self._heap else None
