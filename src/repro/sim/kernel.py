"""Discrete-event simulation kernel with a virtual clock.

The engine substitutes the paper's 21-node AWS cluster with a simulated
cluster.  All engine components take their notion of time from a
:class:`SimKernel`: events are callbacks scheduled at virtual timestamps,
and ``run()`` advances the clock from event to event.  The simulation is
fully deterministic — ties are broken by an insertion sequence number.

Two scheduling paths share one total order:

* :meth:`SimKernel.schedule` / :meth:`SimKernel.schedule_at` return an
  :class:`Event` handle supporting cancellation.
* :meth:`SimKernel.post` is the allocation-lean internal path used by hot
  components (core grants, NIC transfers): no handle is created and the
  callback may carry one positional argument, so completion paths can be
  bound methods instead of per-grant closures.

Internally the queue holds plain ``(time, seq, event, fn, arg)`` tuples —
``(time, seq)`` is unique, so tuple comparison never reaches the payload
and ordering is resolved entirely in C.  Entries scheduled *at the current
virtual time* bypass the heap into a FIFO deque (same-time events are FIFO
by construction), which turns the extremely common "run this next" pattern
from O(log n) heap traffic into O(1) deque ops.  ``step`` merges the two
structures by comparing their heads, preserving the exact global order.

Cancelled events are removed lazily on pop, but the kernel tracks the
live-event count and compacts the queue whenever more than half of its
entries are dead, so mass cancellation (e.g. tearing down a failed query)
never grows the heap unboundedly and ``pending`` stays O(1).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable

from ..errors import SimulationLivelockError
from ..obs.trace import NULL_TRACER

#: Sentinel distinguishing "no argument" from "argument is None" on the
#: allocation-lean :meth:`SimKernel.post` path.
_NO_ARG = object()


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "cancelled", "kernel", "in_heap")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 kernel: "SimKernel | None" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.kernel = kernel
        self.in_heap = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self.kernel is not None and self.in_heap:
                self.kernel._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


class SimKernel:
    """A priority-queue event loop over virtual time."""

    #: Compaction only kicks in past this many dead entries (tiny heaps are
    #: cheaper to drain lazily than to rebuild).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        self.now: float = 0.0
        #: Future events: a heap of (time, seq, event|None, fn, arg).
        self._heap: list[tuple] = []
        #: Events at the current virtual time, FIFO.  Always sorted by
        #: (time, seq): entries are appended with time == now and a fresh
        #: seq, and ``now`` never decreases.
        self._soon: deque[tuple] = deque()
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_heap = 0
        #: Observability hook (``repro.obs``).  Every component reaches its
        #: tracer through the kernel it already holds; the engine swaps in
        #: a real Tracer when ``EngineConfig.tracing`` asks for one.  The
        #: tracer is read-only w.r.t. simulation state — it never schedules
        #: events or consumes randomness.
        self.tracer = NULL_TRACER
        #: Offload client (repro.parallel) reachable from every component
        #: that holds the kernel, mirroring ``tracer``.  ``None`` keeps
        #: everything inline; the engine assigns a client when
        #: ``EngineConfig.parallel.workers > 0``.  Like the tracer it is
        #: read-only w.r.t. simulation state: offloaded work returns
        #: bit-identical arrays, so no event order or timing can change.
        self.offload = None

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` virtual seconds (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute virtual ``time`` (>= now)."""
        now = self.now
        if time < now:
            raise ValueError(f"cannot schedule in the past: {time} < {now}")
        event = Event(time, next(self._seq), fn, kernel=self)
        event.in_heap = True
        entry = (time, event.seq, event, fn, _NO_ARG)
        if time == now:
            self._soon.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return event

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at the current virtual time, after pending same-time
        events already queued (FIFO among equal timestamps)."""
        return self.schedule_at(self.now, fn)

    def post(self, delay: float, fn: Callable, arg=_NO_ARG) -> None:
        """Allocation-lean :meth:`schedule`: no :class:`Event` handle is
        created (the entry cannot be cancelled) and ``fn`` may take one
        positional ``arg``, so hot completion paths pass a bound method
        plus its argument instead of allocating a closure per event."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        now = self.now
        entry = (now + delay, next(self._seq), None, fn, arg)
        if delay == 0.0:
            self._soon.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    # -- cancellation bookkeeping ----------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap) + len(self._soon)
        ):
            self._compact()

    @staticmethod
    def _dead(entry: tuple) -> bool:
        event = entry[2]
        return event is not None and event.cancelled

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (heap order is total, so
        the rebuilt heap pops in exactly the same order)."""
        for entry in self._heap:
            if self._dead(entry):
                entry[2].in_heap = False
        self._heap = [e for e in self._heap if not self._dead(e)]
        heapq.heapify(self._heap)
        for entry in self._soon:
            if self._dead(entry):
                entry[2].in_heap = False
        self._soon = deque(e for e in self._soon if not self._dead(e))
        self._cancelled_in_heap = 0

    def _pop_next(self) -> tuple | None:
        """Remove and return the globally next entry (heap/deque merge)."""
        heap = self._heap
        soon = self._soon
        if heap:
            if soon and soon[0] < heap[0]:
                return soon.popleft()
            return heapq.heappop(heap)
        if soon:
            return soon.popleft()
        return None

    # -- execution ----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events.  O(1)."""
        return len(self._heap) + len(self._soon) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Physical queue length including dead entries (introspection)."""
        return len(self._heap) + len(self._soon)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty."""
        while True:
            entry = self._pop_next()
            if entry is None:
                return False
            time, _seq, event, fn, arg = entry
            if event is not None:
                event.in_heap = False
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
            self.now = time
            self._events_processed += 1
            if arg is _NO_ARG:
                fn()
            else:
                fn(arg)
            return True

    def run(
        self,
        until: float | None = None,
        stop_when: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``stop_when()`` becomes true (checked between events).

        When ``until`` is given and the queue drains earlier, the clock is
        advanced to ``until`` so periodic wall-clock measurements stay
        consistent.  ``max_events`` guards against livelock: exceeding it
        raises :class:`SimulationLivelockError`.
        """
        processed = 0
        while True:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and processed >= max_events:
                raise SimulationLivelockError(
                    f"simulation exceeded {max_events} events (livelock?)",
                    now=self.now,
                    events_processed=self._events_processed,
                )
            next_time = self._next_time()
            if next_time is None:
                if until is not None and self.now < until:
                    self.now = until
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            processed += 1

    def _next_time(self) -> float | None:
        """Virtual time of the next live event, discarding dead heads."""
        while True:
            heap = self._heap
            soon = self._soon
            if heap:
                entry = soon[0] if (soon and soon[0] < heap[0]) else heap[0]
            elif soon:
                entry = soon[0]
            else:
                return None
            event = entry[2]
            if event is not None and event.cancelled:
                self._pop_next()
                event.in_heap = False
                self._cancelled_in_heap -= 1
                continue
            return entry[0]
