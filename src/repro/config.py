"""Engine, cluster, and cost-model configuration.

The simulated cluster mirrors the paper's testbed (Section 6.1): a
coordinator, storage nodes holding table splits, and compute nodes running
tasks.  All timing in the engine is *virtual* and driven by
:class:`CostModel`; the defaults are calibrated so that the evaluation
benchmarks reproduce the paper's qualitative shapes (who wins, speedup
factors, crossovers) at reduced scale factors.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace


def config_fingerprint(obj) -> tuple:
    """Stable, hashable identity of a config object.

    Walks dataclass fields recursively, freezing containers (dicts become
    sorted item tuples, lists/sets become tuples) so the result is usable
    as a cache key.  Every config class in the ``EngineConfig`` hierarchy
    — and :class:`~repro.cluster.coordinator.QueryOptions` — exposes this
    via ``.fingerprint()``; the plan cache keys on it uniformly instead of
    special-casing individual classes.
    """
    return _freeze(obj)


def _freeze(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    return value


class _Fingerprinted:
    """Mixin giving every config dataclass a uniform ``fingerprint()``."""

    def fingerprint(self) -> tuple:
        return config_fingerprint(self)


@dataclass(frozen=True)
class CostModel(_Fingerprinted):
    """Virtual-time cost coefficients for the simulated engine.

    All times are in virtual seconds.  ``cpu_multiplier`` lets baseline
    engine modes (Presto's Java operators vs. Accordion/Prestissimo's C++
    vectorized operators) share one executor while exhibiting the paper's
    Figure 20 performance gap.
    """

    #: CPU seconds charged per row scanned from a CSV split (parse + copy).
    scan_row_cost: float = 2.0e-7
    #: CPU seconds per row for stateless row transforms (filter/project).
    filter_row_cost: float = 5.0e-8
    project_row_cost: float = 1.5e-7
    #: CPU seconds per row on the build side of a hash join.
    join_build_row_cost: float = 1.2e-6
    #: CPU seconds per probe-side row of a hash join.
    join_probe_row_cost: float = 1.6e-6
    #: CPU seconds per row for partial (pre-)aggregation.
    partial_agg_row_cost: float = 1.2e-6
    #: CPU seconds per row for final aggregation (merging partials).
    final_agg_row_cost: float = 8.0e-7
    #: CPU seconds per row pushed through sort / topN operators.
    sort_row_cost: float = 5.0e-7
    #: CPU seconds per row hashed + copied by a shuffle executor.
    shuffle_row_cost: float = 4.0e-7
    #: CPU seconds per row moved through local exchange sink/source.
    local_exchange_row_cost: float = 3.0e-8
    #: CPU seconds per row delivered by the task output operator.
    task_output_row_cost: float = 3.0e-8
    #: CPU seconds per row received by an exchange operator (deserialise).
    exchange_row_cost: float = 1.2e-7
    #: Virtual seconds per byte written to a local spill file (sequential
    #: NVMe-class write).  Charged only when an operator actually spills,
    #: so budget-free runs keep bit-identical virtual timings.
    spill_write_byte_cost: float = 5.0e-10
    #: Virtual seconds per byte read back from a spill file.
    spill_read_byte_cost: float = 2.5e-10
    #: Fixed CPU seconds charged per driver quantum (scheduling overhead).
    quantum_overhead: float = 1.0e-5
    #: One RESTful request between coordinator and workers (paper: 1-10 ms).
    rpc_request_cost: float = 4.8e-3
    #: Network seconds per byte over a node's NIC (10 Gbps default).
    nic_seconds_per_byte: float = 8.0e-10
    #: Fixed network latency per page transfer.
    network_latency: float = 2.0e-4
    #: Multiplier applied to all CPU costs (baselines override this).
    cpu_multiplier: float = 1.0

    def scaled(self, multiplier: float) -> "CostModel":
        """Return a copy with the CPU multiplier composed in.

        Multipliers stack: a Presto baseline (2.6x) built on an evaluation
        calibration (1000x) runs at 2600x.
        """
        return replace(self, cpu_multiplier=self.cpu_multiplier * multiplier)


@dataclass(frozen=True)
class BufferConfig(_Fingerprinted):
    """Output/exchange buffer behaviour.

    ``elastic=True`` enables the paper's runtime elastic buffer
    (Section 4.2.2): capacity starts at one page and is resized by the
    consumer side every ``resize_period`` virtual seconds to match the
    observed consumption rate.  ``elastic=False`` models Presto's fixed
    32 MB task output buffers (Section 2, challenge 3).
    """

    elastic: bool = True
    #: Virtual seconds between consumer-side resize decisions.
    resize_period: float = 0.5
    #: Initial capacity in pages (paper: the size of one page).
    initial_capacity_pages: int = 1
    #: Upper bound on elastic capacity, in pages, to keep memory bounded.
    max_capacity_pages: int = 4096
    #: Fixed capacity (bytes) used when ``elastic`` is False.
    fixed_capacity_bytes: int = 32 * 1024 * 1024


@dataclass(frozen=True)
class FaultConfig(_Fingerprinted):
    """Failure-recovery behaviour (fault injection, ``repro.faults``).

    All delays are virtual seconds.  Retries are bounded so an injected
    permanent fault surfaces as a structured :class:`QueryFailedError`
    instead of an unbounded retry loop.
    """

    #: Max retries for one failed control-plane request before the whole
    #: action (and the query it belongs to) is failed.
    rpc_max_retries: int = 3
    #: Virtual seconds before a lost RPC request is declared failed.
    rpc_timeout: float = 0.05
    #: First retry backoff; grows by ``rpc_backoff_multiplier`` per
    #: attempt, bounded by the cap.
    rpc_backoff_base: float = 0.01
    rpc_backoff_cap: float = 0.2
    #: Geometric growth factor of the retry backoff.
    rpc_backoff_multiplier: float = 2.0
    #: Seeded backoff jitter: each retry's backoff is stretched by up to
    #: this fraction, drawn from ``random.Random(rpc_jitter_seed)``.  0
    #: disables jitter (and consumes no randomness), keeping the retry
    #: timeline bit-identical to the unjittered one.
    rpc_backoff_jitter: float = 0.0
    rpc_jitter_seed: int = 0
    #: How many times the tasks of one stage may be respawned before a
    #: further crash is declared unrecoverable.
    task_retry_budget: int = 3
    #: Virtual seconds between a node/task death and the coordinator
    #: noticing it (heartbeat interval).
    detection_delay: float = 0.05

    def with_rpc_policy(
        self,
        *,
        max_retries: int | None = None,
        timeout: float | None = None,
        backoff_base: float | None = None,
        backoff_cap: float | None = None,
        backoff_multiplier: float | None = None,
        jitter: float | None = None,
        jitter_seed: int | None = None,
    ) -> "FaultConfig":
        """Copy with the RPC retry/timeout/backoff policy replaced.

        This is the uniform-config entry point for the knobs the
        :class:`~repro.cluster.rpc.RpcTracker` consumes; ``None`` keeps
        the current value.  The jitter is *seeded*: the tracker draws
        from ``random.Random(jitter_seed)`` in request order, so a
        jittered retry timeline is still bit-identical across runs.
        """
        fields = {
            "rpc_max_retries": max_retries,
            "rpc_timeout": timeout,
            "rpc_backoff_base": backoff_base,
            "rpc_backoff_cap": backoff_cap,
            "rpc_backoff_multiplier": backoff_multiplier,
            "rpc_backoff_jitter": jitter,
            "rpc_jitter_seed": jitter_seed,
        }
        return replace(
            self, **{k: v for k, v in fields.items() if v is not None}
        )


@dataclass(frozen=True)
class NodeSpec(_Fingerprinted):
    """Hardware description of one simulated node (default: c5.2xlarge)."""

    cores: int = 8
    memory_bytes: int = 16 * 1024**3
    nic_gbps: float = 10.0

    @property
    def nic_bytes_per_second(self) -> float:
        return self.nic_gbps * 1e9 / 8.0


@dataclass(frozen=True)
class ClusterConfig(_Fingerprinted):
    """Topology of the simulated cluster (paper Section 6.1).

    The paper uses 1 coordinator + 10 storage + 10 compute nodes.  Tests
    use smaller clusters; the engine takes the topology from here.  One
    ClusterConfig fully describes a deployment: split placement overrides
    and the combined storage/compute mode live here too, not as engine
    constructor arguments.
    """

    compute_nodes: int = 10
    storage_nodes: int = 10
    node: NodeSpec = field(default_factory=NodeSpec)
    #: Whether table-scan tasks must be colocated with their splits.
    colocate_scans: bool = True
    #: Run storage and compute on the same nodes (standalone deployments).
    combined: bool = False
    #: Optional per-table split counts, e.g. ``{"orders": 20}``.
    split_scheme: tuple[tuple[str, int], ...] | None = None
    #: Optional per-table placement, e.g. ``{"orders": [0, 1]}`` pinning a
    #: table's splits to specific storage nodes.
    node_overrides: tuple[tuple[str, tuple[int, ...]], ...] | None = None

    # -- membership / autoscaling (repro.cluster.membership) ----------------
    #: Enable the queue/deadline-driven autoscaler in the workload layer.
    autoscale: bool = False
    #: Autoscaler fleet bounds; ``None`` max means "no upper bound".
    autoscale_min_nodes: int | None = None
    autoscale_max_nodes: int | None = None
    #: Virtual seconds between autoscaler policy evaluations.
    autoscale_period: float = 0.5
    #: Scale out when the admission queue depth reaches this.
    autoscale_queue_high: int = 1
    #: Scale in when cluster usage / capacity stays below this fraction.
    autoscale_usage_low: float = 0.5
    #: Consecutive low-usage ticks required before a scale-in.
    autoscale_idle_ticks: int = 2
    #: Virtual seconds between two autoscaler actions (join or drain).
    autoscale_cooldown: float = 1.0
    #: Scale out when a queued query's deadline is closer than this.
    autoscale_deadline_slack: float = 5.0
    #: Max nodes joined per policy tick.
    autoscale_max_join_per_tick: int = 2
    #: Request spot (preemptible, cheaper) capacity when scaling out.
    autoscale_spot: bool = False

    # -- drain / provisioning timing ----------------------------------------
    #: Virtual seconds a graceful drain may take before it escalates to
    #: the crash/recovery path.
    drain_timeout: float = 10.0
    #: Virtual seconds between drain-completion checks.
    drain_poll: float = 0.05
    #: Virtual seconds between a join request and the node being usable.
    node_join_delay: float = 0.5

    # -- cost model (node-seconds = dollars) --------------------------------
    #: Dollars charged per node per virtual second of provisioned time.
    cost_per_node_second: float = 1.0
    #: Price factor for spot nodes (typically well below 1).
    spot_price_multiplier: float = 0.3

    def with_placement(
        self,
        split_scheme: dict | None = None,
        node_overrides: dict | None = None,
        combined: bool | None = None,
    ) -> "ClusterConfig":
        """Copy with placement settings, accepting plain dicts.

        The stored form is tuples (the dataclass is frozen/hashable); this
        helper does the dict -> tuple conversion so callers write
        ``cluster.with_placement(node_overrides={"orders": [0, 1]})``.
        """
        kwargs: dict = {}
        if split_scheme is not None:
            kwargs["split_scheme"] = tuple(sorted(split_scheme.items()))
        if node_overrides is not None:
            kwargs["node_overrides"] = tuple(
                (table, tuple(nodes)) for table, nodes in sorted(node_overrides.items())
            )
        if combined is not None:
            kwargs["combined"] = combined
        return replace(self, **kwargs)

    @property
    def split_scheme_dict(self) -> dict | None:
        return dict(self.split_scheme) if self.split_scheme is not None else None

    @property
    def node_overrides_dict(self) -> dict | None:
        if self.node_overrides is None:
            return None
        return {table: list(nodes) for table, nodes in self.node_overrides}

    def with_autoscaling(self, **kwargs) -> "ClusterConfig":
        """Copy with autoscaling enabled (plus any autoscaler fields).

        ``ClusterConfig(compute_nodes=2).with_autoscaling(
        autoscale_max_nodes=6)`` describes a fleet that starts at 2 nodes
        and may grow to 6 under queue or deadline pressure.  The min
        defaults to the configured ``compute_nodes``.
        """
        kwargs.setdefault("autoscale", True)
        if kwargs.get("autoscale_min_nodes") is None:
            kwargs.setdefault("autoscale_min_nodes", self.compute_nodes)
        return replace(self, **kwargs)


@dataclass(frozen=True)
class MemoryConfig(_Fingerprinted):
    """Per-query memory budget and out-of-core (spill) behaviour.

    Memory is the engine's second elastic dimension (DESIGN.md §13),
    alongside the paper's DOP: when a query's tracked operator bytes
    exceed ``query_budget_bytes``, hash joins and final aggregations
    switch to a radix-partitioned Grace-style spill path
    (``repro.exec.spill``) instead of failing with an OOM.  ``None``
    budget means unlimited — the seed behaviour, and bit-identical to it.

    The budget set here is the *default*; the workload layer's
    :class:`ResourceArbiter` overrides it per query with the memory it
    actually grants (a trimmed grant triggers spilling, an enlarged one
    stops further spilling).
    """

    #: Bytes of operator state one query may hold before spilling.
    query_budget_bytes: int | None = None
    #: When False, an over-budget operator raises a structured
    #: :class:`~repro.errors.MemoryBudgetExceededError` instead of
    #: spilling (strict-reservation deployments).
    spill_enabled: bool = True
    #: Radix fan-out per spill level (partition count).
    spill_fanout: int = 8
    #: Max recursive repartition depth; past it an oversized partition is
    #: processed in memory anyway (fallback guard against key skew).
    spill_max_depth: int = 4
    #: Directory for spill files.  ``None`` resolves to
    #: ``$REPRO_CACHE_DIR/spill`` when the cache dir env var is set, else
    #: a ``repro-spill`` directory under the system temp dir.  Each query
    #: gets its own subdirectory, removed when the query terminates
    #: (success, failure, or cancellation alike).
    spill_dir: str | None = None


@dataclass(frozen=True)
class SharingConfig(_Fingerprinted):
    """Concurrent-query folding + result cache (``repro.sharing``).

    Off by default: with ``enabled=False`` every submission runs its own
    physical execution, bit-identical to earlier releases.  With sharing
    on, submissions are fingerprinted on their *normalized* logical plan
    (DESIGN.md §14): repeats of a cached answer short-circuit execution
    entirely, and concurrent compatible queries fold onto one carrier
    execution with per-consumer residual operators — answers stay
    bit-identical to isolated runs by construction.
    """

    enabled: bool = False
    #: Graft compatible concurrent queries onto one shared execution.
    fold: bool = True
    #: Virtual seconds a *new* carrier waits before dispatching, so
    #: closely-spaced lookalike queries can pile onto it.  0 dispatches
    #: immediately (queries arriving at the same instant still fold).
    fold_window: float = 0.0
    #: Result-cache capacity in bytes (LRU eviction); 0 disables the
    #: cache while keeping folding.
    result_cache_bytes: int = 64 * 1024 * 1024
    #: Entry lifetime in virtual seconds; ``None`` means no TTL.  Entries
    #: are also invalidated whenever ``Catalog.register`` bumps the
    #: catalog version, TTL or not.
    cache_ttl: float | None = None


@dataclass(frozen=True)
class ParallelConfig(_Fingerprinted):
    """Shared-memory worker-pool offload (``repro.parallel``).

    Off by default (``workers=0``): everything executes inline on the
    host process, bit-identical to earlier releases.  With ``workers=N``
    the engine offloads CPU-heavy kernel work — join probe expansion,
    aggregation partials, compiled filter/project batches, radix spill
    partitioning — to a pool of N forked worker processes over
    ``multiprocessing.shared_memory``.  The deterministic SimKernel
    remains the control plane: offload results are applied in
    deterministic submission order, so answers, virtual-time accounting,
    traces, and same-seed reports stay bit-identical to ``workers=0``
    (DESIGN.md §15).
    """

    #: Number of worker processes; 0 disables offloading entirely.
    workers: int = 0
    #: Pages below this many rows are not worth a job round-trip and
    #: evaluate inline.
    min_offload_rows: int = 2048
    #: Smallest per-worker chunk when splitting one page's rows across
    #: workers; fewer chunks are used for smaller pages.
    min_chunk_rows: int = 2048
    #: Crashed (not erroring) jobs are retried this many times on a
    #: respawned worker before :class:`WorkerCrashedError` surfaces.
    max_retries: int = 2
    #: Wall-clock seconds before an unresponsive job's worker is killed
    #: (the hang backstop; generous because it is per job, not per page).
    job_timeout_s: float = 120.0
    #: Per-kind offload switches (all on; useful for bisecting).
    offload_join: bool = True
    offload_agg: bool = True
    offload_exprs: bool = True
    offload_radix: bool = True


@dataclass(frozen=True)
class PredictionConfig(_Fingerprinted):
    """Learned per-stage resource prediction (``repro.predict``).

    Off by default: the engine is purely reactive and bit-identical to
    earlier releases.  With ``enabled=True`` the engine keys every
    finished query's per-stage demand (CPU seconds, quanta, peak tracked
    memory, exchange bytes, stage time windows) under its query-*template*
    fingerprint (plan fingerprint with literals parameterized out —
    ``repro.sharing.normalize`` with ``literals=False``), and uses the
    accumulated history to (1) pre-grant stage DOPs and a memory budget
    at submission, (2) place tasks by dominant-remaining-resource
    scoring, and (3) estimate runtime with variance for SLO admission.
    Queries whose template has no history fall back to the reactive path
    unchanged (DESIGN.md §16).
    """

    enabled: bool = False
    #: Directory for persisted history (``history.json``); ``None`` keeps
    #: history in memory only (per engine).
    history_dir: str | None = None
    #: Relative runtime-prediction error tolerated before the
    #: reprovision trigger fires (0.5 = fire once the query has run 50%
    #: past its predicted runtime without finishing).
    error_bound: float = 0.5
    #: Minimum recorded runs of a template before predictions are served.
    min_samples: int = 1
    #: Reject at admission when P(deadline miss) from the runtime
    #: estimate + variance exceeds this; ``None`` disables SLO rejection.
    max_miss_probability: float | None = None
    #: Pre-grant stage DOPs / memory budget from predicted demand.
    pregrant: bool = True
    #: Pre-grant sizing target: each stage gets enough DOP to finish its
    #: predicted CPU work within this fraction of the predicted runtime
    #: (or of the deadline, when the deadline is tighter).
    pregrant_target_fraction: float = 0.25
    #: Score placement by dominant-remaining-resource under predictions.
    placement: bool = True
    #: Memory pre-grant = ``memory_headroom`` x predicted peak (with a
    #: 64 MB floor), used only when the session declares no budget.
    memory_headroom: float = 2.0
    #: Cap on any pre-granted per-stage DOP.
    max_stage_dop: int = 16


@dataclass(frozen=True)
class TraceConfig(_Fingerprinted):
    """Observability switches (``repro.obs``).

    Tracing is **inert**: turning it on changes no virtual timing, answer,
    or fault schedule — it only records.  ``enabled`` gates span
    recording; the sub-flags prune the most voluminous span kinds when a
    coarser trace is enough.  ``profiling`` independently turns on
    wall-clock attribution of real Python time to operators.
    """

    enabled: bool = False
    #: Record one span per driver quantum (the most voluminous kind).
    quantum_spans: bool = True
    #: Record per-operator sub-spans inside each quantum.
    operator_spans: bool = True
    #: Record buffer turn-up / resize instants.
    buffer_events: bool = True
    #: Attribute wall-clock (host) time to operators via perf_counter.
    profiling: bool = False
    #: Hard cap on recorded spans; past it the tracer counts drops.
    max_spans: int = 2_000_000


@dataclass(frozen=True)
class WorkloadConfig(_Fingerprinted):
    """Multi-tenant workload behaviour (``repro.workload``).

    Controls the admission controller sitting in front of
    ``Session.submit`` and the cluster-wide :class:`ResourceArbiter` that
    turns per-query tuning requests into bids.  All times are virtual
    seconds.  ``None`` limits mean "unlimited".
    """

    #: Maximum queries running concurrently; further submissions queue.
    max_concurrent_queries: int | None = None
    #: Cap on the summed *planned* task count of admitted queries.
    max_admitted_cores: int | None = None
    #: Cap on the summed declared memory of admitted queries.
    max_admitted_memory_bytes: int | None = None
    #: Queue discipline: ``"fifo"`` or ``"priority"`` (with aging).
    queue_policy: str = "fifo"
    #: Virtual seconds a submission may wait before it is rejected with a
    #: :class:`QueryRejectedError`; ``None`` waits forever.
    queue_timeout: float | None = None
    #: Priority points gained per queued virtual second (prevents
    #: starvation under the priority policy; 0 disables aging).
    priority_aging_rate: float = 0.0
    #: Arbitration policy for tuning bids: ``"none"`` (first come, first
    #: served against free cores), ``"fair_share"`` (per-tenant core
    #: budget), ``"strict_priority"``, or ``"deadline"`` (deadline-aware
    #: via the what-if service's T_remain, may revoke cores).
    arbitration: str = "fair_share"
    #: Virtual seconds between arbiter rebalance passes.
    arbiter_period: float = 1.0
    #: Allow the arbiter to revoke granted cores (end-signal task removal
    #: on the victim, Section 4.4) for deadline-endangered queries.
    revocation_enabled: bool = True
    #: Virtual seconds a revoked stage stays pinned against re-tuning.
    revocation_pin_seconds: float = 5.0
    #: Memory charged per query when the session does not declare one.
    default_query_memory_bytes: int = 1 * 1024**3
    #: Dynamic concurrency cap: at most ``ceil(this * schedulable compute
    #: nodes)`` queries run at once, so admission tracks the live cluster
    #: size under autoscaling.  ``None`` disables the dynamic cap.
    max_queries_per_node: float | None = None


@dataclass(frozen=True)
class EngineConfig(_Fingerprinted):
    """Top-level engine configuration and feature switches.

    ``EngineConfig`` is the root of the config hierarchy::

        EngineConfig
        ├── cluster:  ClusterConfig (topology, placement; NodeSpec)
        ├── cost:     CostModel     (virtual-time coefficients)
        ├── buffers:  BufferConfig  (elastic output buffers)
        ├── faults:   FaultConfig   (retry/recovery behaviour)
        ├── memory:   MemoryConfig  (per-query budget + spilling)
        ├── tracing:  TraceConfig   (observability switches)
        ├── workload: WorkloadConfig (admission + arbitration)
        ├── sharing:  SharingConfig (query folding + result cache)
        ├── parallel: ParallelConfig (worker-pool offload backend)
        └── prediction: PredictionConfig (learned demand profiles)

    Every node is a frozen dataclass with a stable ``fingerprint()`` and
    an immutable ``with_<section>(**fields)`` builder on this root class.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    cost: CostModel = field(default_factory=CostModel)
    buffers: BufferConfig = field(default_factory=BufferConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Rows per page produced by scans and operators.
    page_row_limit: int = 4096
    #: Default number of tasks per intermediate stage at query start.
    default_stage_dop: int = 1
    #: Default number of drivers per pipeline at task start.
    default_task_dop: int = 1
    #: Enable intra-query runtime elasticity (the paper's contribution).
    elasticity_enabled: bool = True
    #: Keep build-side intermediate results cached for DOP switching (4.5).
    intermediate_data_cache: bool = True
    #: Collector sampling period for runtime info (Section 5.1), seconds.
    collector_period: float = 0.5
    #: Partial aggregation flush threshold (distinct groups held per driver).
    partial_agg_group_limit: int = 100_000
    #: Host-performance switches (DESIGN.md §10).  Both caches are
    #: **bit-inert**: answers, virtual timings, and event counts are
    #: identical with them on or off — the flags exist for the identity
    #: tests and for debugging, not for tuning results.
    #: Lower expressions to cached vectorized closures (repro.sql.compiler)
    #: instead of interpreting the expression tree per page.
    compiled_expressions: bool = True
    #: Memoize parse -> analyze -> optimize -> physical plan per
    #: (catalog version, SQL, options) across queries and engines.
    plan_cache: bool = True
    #: Name used in reports.
    engine_name: str = "accordion"
    #: Per-query memory budget and out-of-core spilling (DESIGN.md §13).
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Observability (tracing/profiling) switches; off by default.
    tracing: TraceConfig = field(default_factory=TraceConfig)
    #: Multi-tenant admission control and resource arbitration.
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Concurrent-query folding + shared result cache; off by default.
    sharing: SharingConfig = field(default_factory=SharingConfig)
    #: Worker-pool offload backend (real multi-core); off by default.
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    #: Learned per-stage demand prediction; off by default.
    prediction: PredictionConfig = field(default_factory=PredictionConfig)

    def with_cluster(self, **kwargs) -> "EngineConfig":
        """Return a copy with cluster fields replaced (test convenience)."""
        return replace(self, cluster=replace(self.cluster, **kwargs))

    def with_tracing(self, **kwargs) -> "EngineConfig":
        """Return a copy with tracing enabled (plus any TraceConfig fields)."""
        kwargs.setdefault("enabled", True)
        return replace(self, tracing=replace(self.tracing, **kwargs))

    def with_cost(self, **kwargs) -> "EngineConfig":
        """Return a copy with cost-model fields replaced."""
        return replace(self, cost=replace(self.cost, **kwargs))

    def with_buffers(self, **kwargs) -> "EngineConfig":
        """Return a copy with buffer fields replaced."""
        return replace(self, buffers=replace(self.buffers, **kwargs))

    def with_faults(self, **kwargs) -> "EngineConfig":
        """Return a copy with fault/recovery fields replaced."""
        return replace(self, faults=replace(self.faults, **kwargs))

    def with_workload(self, **kwargs) -> "EngineConfig":
        """Return a copy with workload fields replaced."""
        return replace(self, workload=replace(self.workload, **kwargs))

    def with_sharing(self, **kwargs) -> "EngineConfig":
        """Return a copy with sharing enabled (plus any SharingConfig
        fields).

        ``EngineConfig().with_sharing(fold_window=0.05,
        result_cache_bytes=128 << 20, cache_ttl=60.0)`` folds compatible
        concurrent queries onto shared executions and answers repeats
        from a 128 MB result cache with a 60-virtual-second TTL.
        """
        kwargs.setdefault("enabled", True)
        return replace(self, sharing=replace(self.sharing, **kwargs))

    def with_parallelism(self, workers: int = 4, **kwargs) -> "EngineConfig":
        """Return a copy with the worker-pool offload backend enabled.

        ``EngineConfig().with_parallelism(workers=4)`` offloads kernel
        work to 4 forked worker processes over shared memory; results
        stay bit-identical to the serial engine (DESIGN.md §15).
        """
        kwargs["workers"] = workers
        return replace(self, parallel=replace(self.parallel, **kwargs))

    def with_prediction(self, **kwargs) -> "EngineConfig":
        """Return a copy with demand prediction enabled (plus any
        PredictionConfig fields).

        ``EngineConfig().with_prediction(error_bound=0.3)`` records
        per-stage demand history under query-template fingerprints and
        uses it to pre-grant DOP/memory, place tasks by dominant-
        remaining-resource, and estimate runtimes with variance; the
        reprovision trigger escalates to the reactive tuner once a query
        runs 30% past its prediction (DESIGN.md §16).
        """
        kwargs.setdefault("enabled", True)
        return replace(self, prediction=replace(self.prediction, **kwargs))

    def with_memory(self, **kwargs) -> "EngineConfig":
        """Return a copy with memory-budget fields replaced.

        ``EngineConfig().with_memory(query_budget_bytes=64 << 20)`` caps
        every query at 64 MB of tracked operator state; joins and final
        aggregations past the cap spill to disk and finish partition-at-
        a-time with bounded peak memory.
        """
        return replace(self, memory=replace(self.memory, **kwargs))


def presto_config(base: EngineConfig | None = None) -> EngineConfig:
    """Baseline mode modelling Presto (Java row-at-a-time interpretation).

    Elasticity is disabled, task output buffers are fixed at 32 MB, and CPU
    costs carry the Java-vs-C++ multiplier observed in the paper's
    Figure 20 (Presto noticeably slower than Accordion/Prestissimo).
    """
    base = base or EngineConfig()
    return replace(
        base,
        cost=base.cost.scaled(2.6),
        buffers=replace(base.buffers, elastic=False),
        elasticity_enabled=False,
        intermediate_data_cache=False,
        engine_name="presto",
    )


def prestissimo_config(base: EngineConfig | None = None) -> EngineConfig:
    """Baseline mode modelling Prestissimo (C++ Velox operators, no IQRE)."""
    base = base or EngineConfig()
    return replace(
        base,
        cost=base.cost.scaled(0.95),
        buffers=replace(base.buffers, elastic=False),
        elasticity_enabled=False,
        intermediate_data_cache=False,
        engine_name="prestissimo",
    )
