"""Runtime elastic buffer (paper Section 4.2.2).

A bounded page buffer whose *capacity is controlled by the consumer side*:

* capacities start at one page,
* every time the consumer finds the buffer empty it bumps the capacity
  (and increments the **turn-up counter** — the signal used for runtime
  bottleneck localization, Section 5.1: a stage whose buffers never turn
  up is a computational bottleneck),
* every ``resize_period`` virtual seconds the consumer re-sizes the buffer
  to match the number of pages it actually consumed in the last period, so
  the cached data volume tracks the consumption rate.

The same class backs exchange receive buffers and task output buffers.
When ``elastic`` is disabled (Presto baseline mode) the capacity is fixed
(default 32 MB worth of pages) and never adjusts.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..config import BufferConfig
from ..pages import Page
from ..sim import SimKernel


class WaiterList:
    """Callbacks to invoke once when a condition becomes true."""

    __slots__ = ("_waiters",)

    def __init__(self):
        self._waiters: list[Callable[[], None]] = []

    def add(self, fn: Callable[[], None]) -> None:
        self._waiters.append(fn)

    def notify_all(self) -> None:
        waiters, self._waiters = self._waiters, []
        for fn in waiters:
            fn()

    def __len__(self) -> int:
        return len(self._waiters)


class ElasticPageBuffer:
    """A page queue with consumer-driven capacity management."""

    #: Trace span this buffer's turn-up/resize instants report under (the
    #: owning task sets it when tracing is on; class default keeps the
    #: common untraced path allocation-free).
    trace_parent: int | None = None

    def __init__(
        self,
        kernel: SimKernel,
        config: BufferConfig,
        name: str = "buffer",
        avg_page_bytes: int = 256 * 1024,
    ):
        self.kernel = kernel
        self.config = config
        self.name = name
        self._queue: deque[Page] = deque()
        if config.elastic:
            self.capacity = max(1, config.initial_capacity_pages)
        else:
            self.capacity = max(1, config.fixed_capacity_bytes // avg_page_bytes)
        #: Paper Section 5.1: incremented on every consumer-side capacity
        #: increase; a stalled counter marks a computational bottleneck.
        self.turn_up_counter = 0
        self._consumed_this_period = 0
        self._period_started = kernel.now
        self.total_pages_in = 0
        self.total_pages_out = 0
        self.total_rows_out = 0
        self.not_full = WaiterList()
        self.not_empty = WaiterList()
        self.closed = False

    # -- state -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity - len(self._queue))

    # -- producer side ----------------------------------------------------
    def put(self, page: Page) -> None:
        """Enqueue unconditionally (producers check ``is_full`` and block
        themselves; the elastic protocol grows capacity on the consumer
        side rather than dropping data)."""
        self._queue.append(page)
        self.total_pages_in += 1
        self.not_empty.notify_all()

    # -- consumer side ----------------------------------------------------
    def poll(self) -> Page | None:
        """Dequeue one page; adjusts capacity per the elastic protocol."""
        self._maybe_resize()
        if not self._queue:
            if self.config.elastic and not self.closed:
                self._turn_up()
            return None
        page = self._queue.popleft()
        self.total_pages_out += 1
        if not page.is_end:
            self.total_rows_out += page.num_rows
            self._consumed_this_period += 1
        self.not_full.notify_all()
        return page

    def peek(self) -> Page | None:
        return self._queue[0] if self._queue else None

    def _turn_up(self) -> None:
        new_capacity = min(self.config.max_capacity_pages, self.capacity * 2)
        if new_capacity > self.capacity:
            self.capacity = new_capacity
            self.turn_up_counter += 1
            tracer = self.kernel.tracer
            if tracer.buffer_events:
                tracer.instant(
                    "buffer", "turn_up", parent=self.trace_parent,
                    buffer=self.name, capacity=new_capacity,
                )
            self.not_full.notify_all()

    def _maybe_resize(self) -> None:
        if not self.config.elastic:
            return
        now = self.kernel.now
        elapsed = now - self._period_started
        if elapsed < self.config.resize_period:
            return
        # Size the buffer to roughly what was consumed in the last period.
        target = max(
            self.config.initial_capacity_pages,
            min(self.config.max_capacity_pages, self._consumed_this_period),
        )
        grew = target > self.capacity
        changed = target != self.capacity
        self.capacity = target
        if changed:
            tracer = self.kernel.tracer
            if tracer.buffer_events:
                tracer.instant(
                    "buffer", "resize", parent=self.trace_parent,
                    buffer=self.name, capacity=target,
                )
        if grew:
            self.not_full.notify_all()
        self._period_started = now
        self._consumed_this_period = 0

    def close(self) -> None:
        self.closed = True
        self.not_empty.notify_all()
