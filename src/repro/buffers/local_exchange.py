"""Local exchange: the intra-task pipeline connector (paper Figures 6/7).

A local exchange decouples two pipelines inside one task: sink operators
(tail of the upstream pipeline) push pages in, source operators (head of
the downstream pipeline) pull pages out.  The structure tracks how many
sink drivers feed it so it can relay end pages exactly once to each source
driver when the upstream pipeline completes — and it accepts *end signals*
from the task to shut down individual source drivers at runtime
(intra-task DOP decrease, Section 4.3).
"""

from __future__ import annotations

from collections import deque

from ..pages import Page
from .elastic import WaiterList


class LocalExchange:
    """A shared in-task page queue with end-page accounting."""

    def __init__(self, name: str = "local_exchange"):
        self.name = name
        self._queue: deque[Page] = deque()
        self._producers = 0
        self._producers_finished = 0
        self._injected_ends = 0
        self.not_empty = WaiterList()
        self.rows_in = 0

    # -- producer side ------------------------------------------------------
    def register_producer(self) -> None:
        self._producers += 1

    def producer_finished(self) -> None:
        self._producers_finished += 1
        if self.upstream_done:
            self.not_empty.notify_all()

    @property
    def upstream_done(self) -> bool:
        return self._producers > 0 and self._producers_finished >= self._producers

    def put(self, page: Page) -> None:
        if page.is_end:
            self.producer_finished()
            return
        self._queue.append(page)
        self.rows_in += page.num_rows
        self.not_empty.notify_all()

    # -- elastic shutdown ----------------------------------------------------
    def inject_end_signal(self, count: int = 1) -> None:
        """Ask ``count`` source drivers to shut down (end-page relay game)."""
        self._injected_ends += count
        self.not_empty.notify_all()

    # -- consumer side ----------------------------------------------------
    def poll(self) -> Page | None:
        """Next page for a source operator.

        Returns an end page when (a) a shutdown signal is pending, or
        (b) all producers finished and the queue drained.  Returns ``None``
        when the consumer should block and wait.
        """
        if self._injected_ends > 0:
            self._injected_ends -= 1
            return Page.end(signal="shutdown")
        if self._queue:
            return self._queue.popleft()
        if self.upstream_done:
            return Page.end()
        return None

    @property
    def has_output(self) -> bool:
        return bool(self._queue) or self._injected_ends > 0 or self.upstream_done

    def __len__(self) -> int:
        return len(self._queue)
