"""Buffers: elastic page buffers, task output buffers, local exchanges."""

from .elastic import ElasticPageBuffer, WaiterList
from .local_exchange import LocalExchange
from .output import (
    ConsumerQueue,
    OutputMode,
    SharedOutputBuffer,
    ShuffleOutputBuffer,
    TaskOutputBuffer,
)

__all__ = [
    "ConsumerQueue",
    "ElasticPageBuffer",
    "LocalExchange",
    "OutputMode",
    "SharedOutputBuffer",
    "ShuffleOutputBuffer",
    "TaskOutputBuffer",
    "WaiterList",
]
