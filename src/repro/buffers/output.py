"""Task output buffers (paper Section 4.2.1).

The redesigned task output buffer owns data distribution, shuffling, and
parallelism-variation adaptation; the task output *operator* only delivers
pages.  Two kinds exist (Figure 10):

* :class:`SharedOutputBuffer` — a single page queue.  ``GATHER`` and
  ``ARBITRARY`` modes let any registered consumer pop the next page
  (work-sharing, used for probe inputs of broadcast joins and gather
  inputs of single-task stages); ``BROADCAST`` mode fans every page out to
  all consumers and keeps a page cache so late-joining consumers (tasks
  created by runtime DOP increases) receive the full stream.

* :class:`ShuffleOutputBuffer` — hash-partitions pages across a *buffer-ID
  group* using shuffle executors that charge CPU to the owning node (this
  is what makes under-provisioned shuffle stages a visible bottleneck,
  Section 6.4.2).  DOP switching (Section 4.5) installs a *new* buffer-ID
  group: cached pages are reshuffled to the new task group while the old
  group keeps draining, and the old group is closed once the new hash
  table is ready.

Buffer IDs equal downstream task sequence numbers, as in Presto.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..config import BufferConfig, CostModel
from ..errors import InvariantViolation, SchedulingError
from ..pages import Page
from ..sim import CpuPool, SimKernel
from ..sql.functions import partition_assignments
from .elastic import WaiterList

if TYPE_CHECKING:  # pragma: no cover
    pass


class OutputMode(enum.Enum):
    GATHER = "gather"        # single consumer (stage DOP fixed at 1)
    ARBITRARY = "arbitrary"  # any consumer takes the next page
    BROADCAST = "broadcast"  # every consumer receives every page
    HASH = "hash"            # hash-partitioned across a buffer-ID group


class ConsumerQueue:
    """Per-buffer-ID view handed to one downstream task."""

    __slots__ = ("buffer_id", "pages", "ended", "end_signal", "on_update")

    def __init__(self, buffer_id: int):
        self.buffer_id = buffer_id
        self.pages: deque[Page] = deque()
        self.ended = False
        self.end_signal: str | None = None
        #: Callbacks fired when pages arrive or the queue ends (exchange
        #: clients register here to start fetches).
        self.on_update = WaiterList()

    def push(self, page: Page) -> None:
        if self.ended:
            raise InvariantViolation(f"page pushed to ended buffer id {self.buffer_id}")
        self.pages.append(page)
        self.on_update.notify_all()

    def end(self, signal: str | None = None) -> None:
        if not self.ended:
            self.ended = True
            self.end_signal = signal
            self.pages.append(Page.end(signal=signal))
            self.on_update.notify_all()


class _Capacity:
    """Elastic/fixed capacity bookkeeping shared by output buffers."""

    def __init__(self, kernel: SimKernel, config: BufferConfig, avg_page_bytes: int = 256 * 1024):
        self.kernel = kernel
        self.config = config
        if config.elastic:
            self.capacity = max(1, config.initial_capacity_pages)
        else:
            self.capacity = max(1, config.fixed_capacity_bytes // avg_page_bytes)
        self.turn_up_counter = 0
        self._consumed = 0
        self._period_started = kernel.now

    def turn_up(self) -> bool:
        if not self.config.elastic:
            return False
        new_capacity = min(self.config.max_capacity_pages, self.capacity * 2)
        if new_capacity > self.capacity:
            self.capacity = new_capacity
            self.turn_up_counter += 1
            return True
        return False

    def consumed(self, pages: int = 1) -> None:
        self._consumed += pages
        if not self.config.elastic:
            return
        now = self.kernel.now
        if now - self._period_started >= self.config.resize_period:
            target = max(
                self.config.initial_capacity_pages,
                min(self.config.max_capacity_pages, self._consumed),
            )
            self.capacity = max(target, 1)
            self._period_started = now
            self._consumed = 0


class TaskOutputBuffer:
    """Common machinery: consumer registry, accounting, producer gating."""

    #: Trace span (the owning task's) that turn-up/resize instants report
    #: under; set by the task when tracing is on.
    trace_parent: int | None = None

    def __init__(
        self,
        kernel: SimKernel,
        config: BufferConfig,
        mode: OutputMode,
        cache_pages: bool = False,
        name: str = "out",
    ):
        self.kernel = kernel
        self.config = config
        self.mode = mode
        self.name = name
        self.consumers: dict[int, ConsumerQueue] = {}
        self.cache_enabled = cache_pages
        self.page_cache: list[Page] = []
        self.finished = False
        self.not_full = WaiterList()
        #: Fired whenever a consumer queue is created (exchange clients
        #: whose buffer id does not exist yet wait here).
        self.on_consumer_added = WaiterList()
        self.capacity = _Capacity(kernel, config)
        self.rows_out = 0
        self.pages_out = 0
        self.bytes_out = 0
        #: True once any consumer has taken a data page.  Failure recovery
        #: uses this to decide whether a crashed task may be restarted from
        #: scratch (output never externalized) or not.
        self.ever_fetched = False
        #: Set by ``abort()`` when a crashed task's output is discarded.
        self.aborted = False

    # -- consumer management ----------------------------------------------
    def add_consumer(self, buffer_id: int) -> ConsumerQueue:
        if buffer_id in self.consumers:
            return self.consumers[buffer_id]
        queue = ConsumerQueue(buffer_id)
        self.consumers[buffer_id] = queue
        self._on_consumer_added(queue)
        if self.finished and not self._defer_end_on_add():
            queue.end()
        self.on_consumer_added.notify_all()
        return queue

    def _defer_end_on_add(self) -> bool:
        """Hook: shuffle buffers defer ends for consumers added during a
        group switch until the cache replay drains."""
        return False

    def _on_consumer_added(self, queue: ConsumerQueue) -> None:
        """Hook: broadcast replays the page cache to late joiners."""

    def end_consumer(self, buffer_id: int, signal: str | None = "shutdown") -> None:
        """Elastic shutdown: close one downstream view (paper Section 4.4)."""
        queue = self.consumers.get(buffer_id)
        if queue is not None:
            queue.end(signal)

    def retire_consumer(self, buffer_id: int) -> None:
        """Forget one downstream view entirely (failure recovery: the
        consumer task died and a replacement will register under a new id).
        Unlike :meth:`end_consumer` no end page is delivered."""
        self.consumers.pop(buffer_id, None)

    def consumer(self, buffer_id: int) -> ConsumerQueue:
        try:
            return self.consumers[buffer_id]
        except KeyError:
            raise SchedulingError(f"{self.name}: unknown buffer id {buffer_id}") from None

    # -- producer side ----------------------------------------------------
    @property
    def is_full(self) -> bool:
        return self._queued_pages() >= self.capacity.capacity

    def _queued_pages(self) -> int:
        if not self.consumers:
            return 0
        return max(len(q.pages) for q in self.consumers.values())

    def put(self, page: Page) -> None:
        raise NotImplementedError

    def task_finished(self) -> None:
        """All drivers of the owning task are done: end every consumer."""
        self.finished = True
        self._flush_before_finish()
        for queue in self.consumers.values():
            queue.end()

    def _flush_before_finish(self) -> None:
        """Hook for buffers with internal pending work (shuffle)."""

    def abort(self) -> None:
        """Discard this buffer (crashed task being restarted, Section 4.4
        analog): all queued and cached pages are dropped and every consumer
        view is closed with an ``aborted`` end signal, so downstream
        exchange clients retire the dead split cleanly.  Only legal while
        ``ever_fetched`` is False — otherwise data already left the buffer
        and a from-scratch restart would duplicate it."""
        if self.aborted:
            return
        if self.ever_fetched:
            raise InvariantViolation(
                f"{self.name}: abort after pages were externalized"
            )
        self.aborted = True
        self.finished = True
        self.page_cache.clear()
        self._discard_internal()
        for queue in self.consumers.values():
            # Drop undelivered data; deliver (or redeliver, for queues that
            # were already closed) a single aborted-end marker so the
            # downstream split retires.  Consumers that already drained an
            # earlier end never fetch again, so no duplicate end is seen.
            queue.pages.clear()
            queue.ended = True
            queue.end_signal = "aborted"
            queue.pages.append(Page.end(signal="aborted"))
            queue.on_update.notify_all()

    def _discard_internal(self) -> None:
        """Hook: drop mode-specific internal queues on abort."""

    # -- consumer side ------------------------------------------------------
    def take(self, buffer_id: int, max_pages: int) -> list[Page]:
        """Pop up to ``max_pages`` pages for one downstream task.

        End pages are delivered in-line.  Applies the elastic capacity
        protocol (turn-up on empty, periodic resize) from the consumer side.
        """
        queue = self.consumer(buffer_id)
        taken: list[Page] = []
        source = self._source_queue(queue)
        while source and len(taken) < max_pages:
            taken.append(source.popleft())
        if not taken and not queue.ended:
            if self._capacity_turn_up():
                self.not_full.notify_all()
        if taken:
            if any(not p.is_end for p in taken):
                self.ever_fetched = True
            self._capacity_consumed(sum(1 for p in taken if not p.is_end))
            self.not_full.notify_all()
        return taken

    def _source_queue(self, queue: ConsumerQueue) -> deque[Page]:
        return queue.pages

    # -- elastic capacity with trace instants ------------------------------
    def _capacity_turn_up(self) -> bool:
        if not self.capacity.turn_up():
            return False
        tracer = self.kernel.tracer
        if tracer.buffer_events:
            tracer.instant(
                "buffer", "turn_up", parent=self.trace_parent,
                buffer=self.name, capacity=self.capacity.capacity,
            )
        return True

    def _capacity_consumed(self, pages: int) -> None:
        before = self.capacity.capacity
        self.capacity.consumed(pages)
        if self.capacity.capacity != before:
            tracer = self.kernel.tracer
            if tracer.buffer_events:
                tracer.instant(
                    "buffer", "resize", parent=self.trace_parent,
                    buffer=self.name, capacity=self.capacity.capacity,
                )

    def _account(self, page: Page) -> None:
        self.rows_out += page.num_rows
        self.pages_out += 1
        self.bytes_out += page.size_bytes


class SharedOutputBuffer(TaskOutputBuffer):
    """GATHER / ARBITRARY / BROADCAST output buffer (one page queue)."""

    def __init__(self, kernel, config, mode: OutputMode, cache_pages=False, name="out"):
        if mode is OutputMode.HASH:
            raise ValueError("use ShuffleOutputBuffer for hash distribution")
        super().__init__(kernel, config, mode, cache_pages, name)
        self._shared: deque[Page] = deque()
        #: Failure-recovery lineage: data pages already taken by each
        #: consumer, so a dead consumer's share can be requeued for its
        #: replacement (exactly-once under ARBITRARY/GATHER work sharing).
        self._taken_log: dict[int, list[Page]] = {}

    def _on_consumer_added(self, queue: ConsumerQueue) -> None:
        if self.mode is OutputMode.BROADCAST:
            for page in self.page_cache:
                queue.push(page)
        if self.mode is OutputMode.GATHER and len(self.consumers) > 1:
            raise SchedulingError("gather buffer supports exactly one consumer")

    def put(self, page: Page) -> None:
        if self.aborted:
            return
        self._account(page)
        if self.cache_enabled or self.mode is OutputMode.BROADCAST:
            # Broadcast always caches so that consumers added later (tasks
            # spawned by runtime DOP increases) can replay the full stream.
            self.page_cache.append(page)
        if self.mode is OutputMode.BROADCAST:
            for queue in self.consumers.values():
                if not queue.ended:  # consumer departed via elastic shutdown
                    queue.push(page)
        else:
            self._shared.append(page)
            for queue in self.consumers.values():
                queue.on_update.notify_all()

    def _queued_pages(self) -> int:
        if self.mode is OutputMode.BROADCAST:
            return super()._queued_pages()
        return len(self._shared)

    def _source_queue(self, queue: ConsumerQueue) -> deque[Page]:
        if self.mode is OutputMode.BROADCAST:
            return queue.pages
        return self._shared

    def take(self, buffer_id: int, max_pages: int) -> list[Page]:
        queue = self.consumer(buffer_id)
        if self.mode is OutputMode.BROADCAST:
            return super().take(buffer_id, max_pages)
        taken: list[Page] = []
        # An elastic shutdown of this consumer takes effect immediately —
        # the remaining shared pages belong to the surviving consumers.
        if queue.ended and queue.end_signal == "shutdown":
            while queue.pages:
                taken.append(queue.pages.popleft())
            return taken
        while self._shared and len(taken) < max_pages:
            taken.append(self._shared.popleft())
        # A natural end (task finished) is delivered once the shared queue
        # has been drained.
        if queue.ended and queue.pages:
            if not taken or not self._shared:
                while queue.pages:
                    taken.append(queue.pages.popleft())
        if not taken and not queue.ended:
            if self._capacity_turn_up():
                self.not_full.notify_all()
        if taken:
            data = [p for p in taken if not p.is_end]
            if data:
                self.ever_fetched = True
                self._taken_log.setdefault(buffer_id, []).extend(data)
            self._capacity_consumed(len(data))
            self.not_full.notify_all()
        return taken

    def has_data(self, buffer_id: int) -> bool:
        queue = self.consumers.get(buffer_id)
        if queue is None:
            return False
        if self.mode is OutputMode.BROADCAST:
            return bool(queue.pages)
        return bool(self._shared) or bool(queue.pages)

    def _discard_internal(self) -> None:
        self._shared.clear()
        self._taken_log.clear()

    # -- failure recovery (Section "Fault model & recovery") ---------------
    def requeue_for_retry(self, old_id: int, new_id: int) -> None:
        """Replace a dead consumer with its respawned task's buffer id.

        ``ARBITRARY``/``GATHER``: pages the dead consumer already took are
        requeued at the *front* of the shared queue (any consumer may
        process any page, so exactly-once is preserved).  ``BROADCAST``
        needs no requeue — the page cache replays the full stream to the
        replacement on registration."""
        if self.mode is not OutputMode.BROADCAST:
            lost = self._taken_log.pop(old_id, [])
            if lost:
                self._shared.extendleft(reversed(lost))
        self.retire_consumer(old_id)
        self.add_consumer(new_id)
        for queue in self.consumers.values():
            queue.on_update.notify_all()
        self.not_full.notify_all()


class ShuffleOutputBuffer(TaskOutputBuffer):
    """Hash-partitioning output buffer with shuffle executors (Figure 10).

    Incoming pages are queued for shuffling; shuffle *executors* (CPU work
    items on the owning node) split each page by ``hash(keys) mod n`` and
    append the sub-pages to the per-buffer-ID queues of the active group.
    """

    def __init__(
        self,
        kernel: SimKernel,
        config: BufferConfig,
        key_positions: list[int],
        cpu: CpuPool,
        cost: CostModel,
        cache_pages: bool = False,
        name: str = "shuffle",
    ):
        super().__init__(kernel, config, OutputMode.HASH, cache_pages, name)
        self.key_positions = list(key_positions)
        self.cpu = cpu
        self.cost = cost
        #: The active buffer-ID group: partition index -> buffer id.
        self.group: list[int] = []
        self._pending_shuffles = 0
        self.shuffled_rows = 0
        self.on_drained = WaiterList()
        self._switching = False
        self._restoring = False
        #: Failure-recovery lineage: every sub-page delivered to each
        #: buffer id, replayed when that consumer dies and is respawned.
        self._pushed_log: dict[int, list[Page]] = {}
        #: Dead buffer id -> replacement id; consulted at shuffle commit
        #: time so partitioning work in flight across a retry still lands.
        self._redirects: dict[int, int] = {}

    # -- group management (DOP switching, Section 4.5) ----------------------
    def set_group(self, buffer_ids: list[int]) -> None:
        """Install the initial buffer-ID group."""
        self.group = list(buffer_ids)
        for buffer_id in buffer_ids:
            self.add_consumer(buffer_id)

    def switch_group(self, buffer_ids: list[int], replay_cache: bool = True) -> None:
        """Install a *new* buffer-ID group (DOP switching, Section 4.5).

        Future pages are partitioned across the new group.  When
        ``replay_cache`` is set, all cached pages are reshuffled to the new
        group (hash-table rebuild from the intermediate data cache).  The
        old group's queues are *not* ended here — the dynamic scheduler
        closes them once the new task group is ready (probe-side switch).
        """
        self._switching = True
        try:
            self.group = list(buffer_ids)
            for buffer_id in buffer_ids:
                self.add_consumer(buffer_id)
            if replay_cache:
                for page in self.page_cache:
                    self._schedule_shuffle(page, account=False)
        finally:
            self._switching = False
        if self.finished and self._pending_shuffles == 0:
            self._finish_consumers()

    def end_group(self, buffer_ids: list[int], signal: str | None = "shutdown") -> None:
        """Close a (former) buffer-ID group.

        Ends are deferred until in-flight shuffle work has drained, so
        pages partitioned for the old group before the switch are never
        dropped.
        """
        if self._pending_shuffles > 0:
            self.on_drained.add(lambda: self.end_group(buffer_ids, signal))
            return
        for buffer_id in buffer_ids:
            self.end_consumer(buffer_id, signal)

    # -- producer ----------------------------------------------------------
    def put(self, page: Page) -> None:
        if self.aborted:
            return
        self._account(page)
        if self.cache_enabled:
            self.page_cache.append(page)
        self._schedule_shuffle(page)

    def _schedule_shuffle(self, page: Page, account: bool = True) -> None:
        if not self.group:
            raise InvariantViolation(f"{self.name}: no buffer-ID group installed")
        group = list(self.group)  # bind the group at submission time
        self._pending_shuffles += 1
        cost = (
            page.num_rows * self.cost.shuffle_row_cost * self.cost.cpu_multiplier
            + self.cost.quantum_overhead
        )

        def commit() -> None:
            self._commit_shuffle(page, group)

        self.cpu.submit(cost, commit)

    def _commit_shuffle(self, page: Page, group: list[int]) -> None:
        n = len(group)
        self.shuffled_rows += page.num_rows
        if n == 1:
            parts: list[Page | None] = [page]
        else:
            assignments = partition_assignments(
                [page.columns[k] for k in self.key_positions], n
            )
            parts = []
            for i in range(n):
                mask = assignments == i
                parts.append(page.mask(mask) if mask.any() else None)
        for buffer_id, part in zip(group, parts):
            if part is None or part.num_rows == 0:
                continue
            # Follow retry redirects to a fixed point: work submitted for a
            # buffer-ID group before a consumer crash must land at the
            # replacement consumer's queue.
            while buffer_id in self._redirects:
                buffer_id = self._redirects[buffer_id]
            queue = self.consumers.get(buffer_id)
            if queue is not None and not queue.ended:
                queue.push(part)
                self._pushed_log.setdefault(buffer_id, []).append(part)
        self._pending_shuffles -= 1
        # Pending shuffles count toward fullness, so draining one may
        # unblock producers.
        self.not_full.notify_all()
        if self._pending_shuffles == 0:
            self.on_drained.notify_all()
            if self.finished:
                self._finish_consumers()

    def _queued_pages(self) -> int:
        base = super()._queued_pages()
        return base + self._pending_shuffles

    def _flush_before_finish(self) -> None:
        # Ends are delivered after in-flight shuffle work drains.
        pass

    def _defer_end_on_add(self) -> bool:
        return self._switching or self._restoring

    def task_finished(self) -> None:
        self.finished = True
        if self._pending_shuffles == 0:
            self._finish_consumers()

    def _finish_consumers(self) -> None:
        for queue in self.consumers.values():
            queue.end()

    def has_data(self, buffer_id: int) -> bool:
        queue = self.consumers.get(buffer_id)
        return bool(queue and queue.pages)

    def _discard_internal(self) -> None:
        self._pushed_log.clear()

    # -- failure recovery ---------------------------------------------------
    def requeue_for_retry(self, old_id: int, new_id: int) -> None:
        """Replace a dead consumer at its exact partition position.

        The replacement keeps the dead task's hash-partition slot (same
        ``hash mod n`` index), its delivered sub-pages are replayed from
        the lineage log, and shuffle work still in flight for the old id
        is redirected at commit time."""
        self._redirects[old_id] = new_id
        lost = self._pushed_log.pop(old_id, [])
        self.retire_consumer(old_id)
        self._restoring = True
        try:
            queue = self.add_consumer(new_id)
            for page in lost:
                queue.push(page)
            if lost:
                self._pushed_log[new_id] = list(lost)
        finally:
            self._restoring = False
        self.group = [new_id if g == old_id else g for g in self.group]
        if self.finished and self._pending_shuffles == 0 and not queue.ended:
            queue.end()
