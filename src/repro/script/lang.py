"""The built-in experiment scripting language (paper Section 6.1).

Accordion ships a small script language for controlling query initiation
and parallelism adjustments at specified virtual times; the evaluation
uses it to drive every throughput experiment.  Line-oriented grammar::

    # comments and blank lines are ignored
    submit q3 Q3 stage_dop=1 task_dop=1
    submit qj "select count(*) from lineitem" join=partitioned
    at 10s ac q3 S3 2          # add task DOP of stage 3 to 2
    at 40s ap q3 S1 4          # add stage DOP of stage 1 to 4
    at 60s rp q3 S1 2          # reduce stage DOP of stage 1 to 2
    at 5s  constraint q3 S1 30s
    at 5s  tune_once q3 S1 20s
    monitor q3 period=2s
    run until q3 done max=5000s
    run for 10s

``submit`` options: ``stage_dop``, ``task_dop``, ``scan_dop``,
``join`` (auto|broadcast|partitioned), ``shuffle`` (comma-separated table
names), and ``sN`` per-stage DOP overrides (e.g. ``s1=10``).
The query argument is either a named TPC-H query (Q1..Q19, Q2J, QSHUFFLE)
or a quoted SQL string.
"""

from __future__ import annotations

import re
import shlex
from dataclasses import dataclass, field

from ..errors import ScriptError

_TIME_RE = re.compile(r"^(\d+(?:\.\d+)?)(s|ms)?$")
_STAGE_RE = re.compile(r"^[sS](\d+)$")


def parse_time(text: str) -> float:
    match = _TIME_RE.match(text)
    if not match:
        raise ScriptError(f"bad time value: {text!r}")
    value = float(match.group(1))
    if match.group(2) == "ms":
        value /= 1000.0
    return value


def parse_stage(text: str) -> int:
    match = _STAGE_RE.match(text)
    if not match:
        raise ScriptError(f"bad stage reference: {text!r} (expected S<number>)")
    return int(match.group(1))


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SubmitCommand:
    name: str
    query: str  # named query or raw SQL
    options: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class TuneCommand:
    time: float
    verb: str  # ac | ap | rp
    query: str
    stage: int
    target: int


@dataclass(frozen=True)
class ConstraintCommand:
    time: float
    query: str
    stage: int
    seconds: float


@dataclass(frozen=True)
class TuneOnceCommand:
    time: float
    query: str
    stage: int
    seconds: float


@dataclass(frozen=True)
class MonitorCommand:
    query: str
    period: float = 2.0


@dataclass(frozen=True)
class RunForCommand:
    seconds: float


@dataclass(frozen=True)
class RunUntilDoneCommand:
    query: str
    max_seconds: float = 1e6


Command = (
    SubmitCommand
    | TuneCommand
    | ConstraintCommand
    | TuneOnceCommand
    | MonitorCommand
    | RunForCommand
    | RunUntilDoneCommand
)


def parse_script(text: str) -> list[Command]:
    commands: list[Command] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tokens = shlex.split(line, comments=True)
            if not tokens:
                continue
            commands.append(_parse_line(tokens))
        except ScriptError as exc:
            raise ScriptError(f"line {lineno}: {exc}") from None
        except ValueError as exc:
            raise ScriptError(f"line {lineno}: {exc}") from None
    return commands


def _parse_line(tokens: list[str]) -> Command:
    head = tokens[0].lower()
    if head == "submit":
        if len(tokens) < 3:
            raise ScriptError("submit needs a name and a query")
        options = {}
        for item in tokens[3:]:
            if "=" not in item:
                raise ScriptError(f"bad submit option {item!r} (expected key=value)")
            key, value = item.split("=", 1)
            options[key.lower()] = value
        return SubmitCommand(tokens[1], tokens[2], options)
    if head == "at":
        if len(tokens) < 3:
            raise ScriptError("at needs a time and an action")
        time = parse_time(tokens[1])
        verb = tokens[2].lower()
        if verb in ("ac", "ap", "rp"):
            if len(tokens) != 6:
                raise ScriptError(f"{verb} needs: {verb} <query> S<stage> <target>")
            return TuneCommand(time, verb, tokens[3], parse_stage(tokens[4]), int(tokens[5]))
        if verb == "constraint":
            if len(tokens) != 6:
                raise ScriptError("constraint needs: constraint <query> S<stage> <seconds>")
            return ConstraintCommand(time, tokens[3], parse_stage(tokens[4]), parse_time(tokens[5]))
        if verb == "tune_once":
            if len(tokens) != 6:
                raise ScriptError("tune_once needs: tune_once <query> S<stage> <seconds>")
            return TuneOnceCommand(time, tokens[3], parse_stage(tokens[4]), parse_time(tokens[5]))
        raise ScriptError(f"unknown action {verb!r}")
    if head == "monitor":
        if len(tokens) < 2:
            raise ScriptError("monitor needs a query name")
        period = 2.0
        for item in tokens[2:]:
            if item.startswith("period="):
                period = parse_time(item.split("=", 1)[1])
            else:
                raise ScriptError(f"unknown monitor option {item!r}")
        return MonitorCommand(tokens[1], period)
    if head == "run":
        if len(tokens) >= 3 and tokens[1] == "for":
            return RunForCommand(parse_time(tokens[2]))
        if len(tokens) >= 4 and tokens[1] == "until" and tokens[3] == "done":
            max_seconds = 1e6
            for item in tokens[4:]:
                if item.startswith("max="):
                    max_seconds = parse_time(item.split("=", 1)[1])
                else:
                    raise ScriptError(f"unknown run option {item!r}")
            return RunUntilDoneCommand(tokens[2], max_seconds)
        raise ScriptError("run needs 'for <time>' or 'until <query> done'")
    raise ScriptError(f"unknown command {head!r}")
