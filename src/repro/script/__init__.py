"""Experiment scripting language and executor (paper Section 6.1)."""

from .executor import ActionLog, ScriptExecutor, ScriptResult, run_script
from .lang import parse_script, parse_stage, parse_time

__all__ = [
    "ActionLog",
    "ScriptExecutor",
    "ScriptResult",
    "parse_script",
    "parse_stage",
    "parse_time",
    "run_script",
]
