"""Script executor: runs experiment scripts against an engine.

Tuning actions are scheduled at their virtual times; rejected requests are
recorded (with the filter's reason) rather than raised, matching the
paper's experiments where the coordinator declines late adjustments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import QueryExecution, QueryOptions
from ..autotune import ElasticQuery
from ..data.tpch.queries import QUERIES
from ..engine import AccordionEngine
from ..errors import ScriptError, TuningRejected
from .lang import (
    Command,
    ConstraintCommand,
    MonitorCommand,
    RunForCommand,
    RunUntilDoneCommand,
    SubmitCommand,
    TuneCommand,
    TuneOnceCommand,
    parse_script,
)


@dataclass
class ActionLog:
    time: float
    description: str
    accepted: bool
    reason: str = ""


@dataclass
class ScriptResult:
    queries: dict[str, QueryExecution] = field(default_factory=dict)
    elastics: dict[str, ElasticQuery] = field(default_factory=dict)
    actions: list[ActionLog] = field(default_factory=list)

    def query(self, name: str) -> QueryExecution:
        return self.queries[name]

    def accepted_actions(self) -> list[ActionLog]:
        return [a for a in self.actions if a.accepted]

    def rejected_actions(self) -> list[ActionLog]:
        return [a for a in self.actions if not a.accepted]


class ScriptExecutor:
    def __init__(self, engine: AccordionEngine):
        self.engine = engine
        self.result = ScriptResult()

    # ------------------------------------------------------------------
    def run(self, script: str) -> ScriptResult:
        for command in parse_script(script):
            self._execute(command)
        return self.result

    # ------------------------------------------------------------------
    def _execute(self, command: Command) -> None:
        if isinstance(command, SubmitCommand):
            self._submit(command)
        elif isinstance(command, TuneCommand):
            self._schedule_tuning(command)
        elif isinstance(command, ConstraintCommand):
            elastic = self._elastic(command.query)
            self.engine.kernel.schedule_at(
                max(command.time, self.engine.now),
                lambda: elastic.set_constraint(command.stage, command.seconds),
            )
        elif isinstance(command, TuneOnceCommand):
            elastic = self._elastic(command.query)
            self.engine.kernel.schedule_at(
                max(command.time, self.engine.now),
                lambda: elastic.tune_once(command.stage, command.seconds),
            )
        elif isinstance(command, MonitorCommand):
            self._elastic(command.query).start_monitor(command.period)
        elif isinstance(command, RunForCommand):
            self.engine.run_for(command.seconds)
        elif isinstance(command, RunUntilDoneCommand):
            query = self._query(command.query)
            self.engine.run_until_done(query, command.max_seconds)
        else:  # pragma: no cover - parser produces only the above
            raise ScriptError(f"unhandled command {command!r}")

    # ------------------------------------------------------------------
    def _submit(self, command: SubmitCommand) -> None:
        if command.name in self.result.queries:
            raise ScriptError(f"duplicate query name {command.name!r}")
        sql = QUERIES.get(command.query.upper(), command.query)
        options = self._build_options(command.options)
        query = self.engine.submit(sql, options)
        self.result.queries[command.name] = query
        self.result.elastics[command.name] = query.tuning

    def _build_options(self, raw: dict[str, str]) -> QueryOptions:
        options = QueryOptions()
        stage_dops: dict[int, int] = {}
        for key, value in raw.items():
            if key == "stage_dop":
                options.initial_stage_dop = int(value)
            elif key == "task_dop":
                options.initial_task_dop = int(value)
            elif key == "scan_dop":
                options.scan_stage_dop = int(value)
            elif key == "join":
                if value not in ("auto", "broadcast", "partitioned"):
                    raise ScriptError(f"bad join distribution {value!r}")
                options.join_distribution = value
            elif key == "shuffle":
                options.shuffle_stage_tables = frozenset(
                    t.strip().lower() for t in value.split(",") if t.strip()
                )
            elif key.startswith("s") and key[1:].isdigit():
                stage_dops[int(key[1:])] = int(value)
            else:
                raise ScriptError(f"unknown submit option {key!r}")
        options.stage_dops = stage_dops
        return options

    # ------------------------------------------------------------------
    def _schedule_tuning(self, command: TuneCommand) -> None:
        elastic = self._elastic(command.query)

        def fire() -> None:
            description = f"{command.verb.upper()} S{command.stage} -> {command.target}"
            try:
                if command.verb == "ac":
                    elastic.ac(command.stage, command.target)
                elif command.verb == "ap":
                    elastic.ap(command.stage, command.target)
                else:
                    elastic.rp(command.stage, command.target)
                self.result.actions.append(
                    ActionLog(self.engine.now, description, accepted=True)
                )
            except TuningRejected as exc:
                self.result.actions.append(
                    ActionLog(self.engine.now, description, accepted=False, reason=exc.reason)
                )

        self.engine.kernel.schedule_at(max(command.time, self.engine.now), fire)

    # ------------------------------------------------------------------
    def _query(self, name: str) -> QueryExecution:
        try:
            return self.result.queries[name]
        except KeyError:
            raise ScriptError(f"unknown query {name!r}") from None

    def _elastic(self, name: str) -> ElasticQuery:
        self._query(name)
        return self.result.elastics[name]


def run_script(engine: AccordionEngine, script: str) -> ScriptResult:
    """Parse and execute ``script`` against ``engine``."""
    return ScriptExecutor(engine).run(script)
