"""repro.predict: learned per-stage demand profiles (DESIGN.md §16).

Accumulates per-stage resource traces from finished queries under
query-*template* fingerprints (plan fingerprints with literals
parameterized out) and serves time-varying demand predictions back to
the engine: pre-granted DOP/memory at admission, dominant-remaining-
resource placement, P(deadline miss) for SLO admission, and a
reprovision trigger that escalates to the reactive tuner when a
prediction under-shoots by more than the configured error bound.

Enable with ``EngineConfig().with_prediction()``; the user surface is
``engine.predict(sql)`` -> :class:`Prediction` and
``QueryHandle.prediction`` / ``QueryHandle.prediction_error``.
"""

from .fingerprint import options_template, template_fingerprint
from .history import HistoryStore
from .profile import Prediction, StageDemand
from .service import DemandPredictor

__all__ = [
    "DemandPredictor",
    "HistoryStore",
    "Prediction",
    "StageDemand",
    "options_template",
    "template_fingerprint",
]
