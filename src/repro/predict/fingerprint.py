"""Query-template fingerprints for demand history (DESIGN.md §16).

A *template* groups query instances that differ only in literal values:
``price > 10`` and ``price > 20`` run the same operators over the same
tables with near-identical per-stage resource shapes, so their traces
belong in one history bucket.  The fingerprint reuses the sharing
layer's canonical plan form (:mod:`repro.sharing.normalize`) with
``literals=False`` — constants are parameterized out while every
structural element (tables, column sets, join shape, aggregates, output
schema) still participates, and the catalog version plus the
plan-shaping ``QueryOptions`` fields guard against schema or option
changes colliding into one bucket.  DOP hints are deliberately *not*
part of the identity: a pre-granted re-run must record into the same
template its prediction came from.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from ..sharing.normalize import NORMALIZE_VERSION, plan_key

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryOptions
    from ..data import Catalog

__all__ = ["options_template", "template_fingerprint"]


def options_template(options: "QueryOptions") -> tuple:
    """The plan-shaping option fields, excluding DOP hints.

    ``initial_stage_dop`` / ``scan_stage_dop`` / ``stage_dops`` /
    ``initial_task_dop`` change how wide a query runs, not what work it
    does — and the predictor itself rewrites them at pre-grant time, so
    including them would fork every template into a warmup bucket and a
    pre-granted bucket that never share history.
    """
    return (
        options.join_distribution,
        options.broadcast_threshold_rows,
        tuple(sorted(options.shuffle_stage_tables)),
        options.partial_pushdown,
    )


def template_fingerprint(
    catalog: "Catalog", sql: str, options: "QueryOptions"
) -> str:
    """Stable hex template id for ``sql`` under ``options``."""
    from ..plan.logical_planner import LogicalPlanner
    from ..plan.optimizer import prune_columns
    from ..sql.parser import parse

    logical = prune_columns(LogicalPlanner(catalog).plan(parse(sql)))
    identity = (
        catalog.version,
        NORMALIZE_VERSION,
        plan_key(logical, literals=False),
        options_template(options),
    )
    return hashlib.sha256(repr(identity).encode()).hexdigest()[:16]
