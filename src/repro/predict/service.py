"""DemandPredictor: the engine-side prediction service (DESIGN.md §16).

Sits on three hook points, all inert when prediction is off or the
template has no history:

1. **Submission** (``Coordinator.on_created``): attach the template's
   :class:`Prediction` to the new ``QueryExecution`` *before* initial
   placement, register the completion observer that records the run into
   the history store, and arm the reprovision trigger.
2. **Placement** (``Scheduler.predictor``): score schedulable compute
   nodes by dominant-remaining-resource (max of core and memory fraction
   after placement) under the predicted per-task demand, minimizing
   fragmentation; memory reservations live in a predictor-owned ledger
   and are released when the query finishes.
3. **Admission** (``AdmissionController.submit``): rewrite the query's
   options with pre-granted per-stage DOPs sized so predicted CPU work
   finishes within half the deadline (or half the predicted runtime),
   pre-size the memory budget from predicted peak, and reject queries
   whose P(deadline miss) exceeds the configured bound.

The reprovision trigger is one cancellable event per predicted query at
``submitted_at + runtime * (1 + error_bound)``: if the query is still
running then, the prediction under-shot by more than the bound and the
predictor escalates to the *reactive* path — a what-if-guarded DOP bump
through the standard tuner, arbiter included.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING

from ..errors import ExecutionError, TuningRejected
from .fingerprint import options_template, template_fingerprint
from .history import HistoryStore
from .profile import Prediction

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution, QueryOptions
    from ..cluster.stage import StageExecution
    from ..engine import AccordionEngine

__all__ = ["DemandPredictor"]

#: Memory pre-grants never go below this (tiny queries still need room
#: for pages in flight and accounting slack).
MIN_MEMORY_PREGRANT = 64 * 1024 * 1024


class DemandPredictor:
    def __init__(self, engine: "AccordionEngine"):
        self.engine = engine
        self.kernel = engine.kernel
        self.config = engine.config.prediction
        self.store = HistoryStore(self.config.history_dir)
        #: (catalog version, sql, options template) -> fingerprint.
        self._templates: dict[tuple, str] = {}
        #: node id -> predicted bytes reserved by placed tasks.
        self._node_reserved: dict[int, int] = {}
        #: query id -> [(node id, bytes)] to release on completion.
        self._query_reservations: dict[int, list[tuple[int, int]]] = {}
        self.recorded = 0
        self.predictions_served = 0
        self.pregrants = 0
        self.drr_placements = 0
        self.reprovisions = 0
        self.slo_rejections = 0

    # -- templates ----------------------------------------------------------
    def template_for(self, sql: str, options: "QueryOptions") -> str:
        catalog = self.engine.catalog
        key = (catalog.version, sql, options_template(options))
        template = self._templates.get(key)
        if template is None:
            template = template_fingerprint(catalog, sql, options)
            self._templates[key] = template
        return template

    def predict_sql(
        self, sql: str, options: "QueryOptions | None" = None
    ) -> Prediction | None:
        """Prediction for ``sql`` from accumulated history, or None."""
        from ..cluster.coordinator import QueryOptions

        options = options or QueryOptions()
        prediction = self.store.predict(
            self.template_for(sql, options), self.config.min_samples
        )
        if prediction is not None:
            self.predictions_served += 1
        return prediction

    # -- submission hook ----------------------------------------------------
    def on_query_created(self, query: "QueryExecution") -> None:
        """Coordinator hook: runs before the query's initial placement."""
        template = self.template_for(query.sql, query.options)
        query.prediction_template = template
        prediction = self.store.predict(template, self.config.min_samples)
        if prediction is not None:
            query.prediction = prediction
            self._arm_reprovision(query, prediction)
        query.on_done(self._observe)

    def _observe(self, query: "QueryExecution") -> None:
        for node_id, nbytes in self._query_reservations.pop(query.id, ()):
            self._node_reserved[node_id] = max(
                0, self._node_reserved.get(node_id, 0) - nbytes
            )
        if not query.succeeded:
            return
        runtime = query.finished_at - query.submitted_at
        prediction = query.prediction
        if prediction is not None and prediction.runtime > 0:
            query.prediction_error = (
                abs(runtime - prediction.runtime) / prediction.runtime
            )
        stages = []
        for sid in sorted(query.stages):
            stage = query.stages[sid]
            window = stage.time_window() or (0.0, runtime)
            stages.append({
                "stage": sid,
                "cpu_seconds": stage.cpu_seconds(),
                "quanta": stage.quanta(),
                "peak_memory_bytes": stage.peak_tracked_bytes(),
                "exchange_bytes": stage.bytes_out(),
                "rows_out": stage.rows_out(),
                "tasks": len(stage.tasks),
                "start": window[0],
                "end": window[1],
            })
        self.store.record(query.prediction_template, {
            "runtime": runtime,
            "peak_query_bytes": query.memory.peak_bytes,
            "stages": stages,
        })
        self.recorded += 1

    # -- reprovision trigger ------------------------------------------------
    def _arm_reprovision(
        self, query: "QueryExecution", prediction: Prediction
    ) -> None:
        fire_in = prediction.runtime * (1.0 + self.config.error_bound)
        if fire_in <= 0:
            return
        event = self.kernel.schedule(
            fire_in, lambda: self._check_reprovision(query)
        )
        query.on_done(lambda _q, e=event: e.cancel())

    def _check_reprovision(self, query: "QueryExecution") -> None:
        """The query outran its prediction by more than the error bound:
        hand control back to the reactive tuner with a DOP escalation."""
        if query.finished:
            return
        self.reprovisions += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "predict", "reprovision", parent=query.trace_span,
                node="coordinator", query_id=query.id,
            )
        try:
            elastic = self.engine._elastic_for(query)
        except ExecutionError:
            return
        for unit in elastic.units():
            stage = query.stages[unit.knob_stage]
            if stage.finished:
                continue
            target = min(
                elastic.tuner.max_stage_dop,
                max(stage.stage_dop + 1, stage.stage_dop * 2),
            )
            if target <= stage.stage_dop:
                continue
            try:
                elastic.ap(unit.knob_stage, target)
            except TuningRejected:
                continue

    # -- admission hooks ----------------------------------------------------
    def admission_plan(
        self,
        sql: str,
        options: "QueryOptions",
        deadline: float | None,
    ) -> tuple["QueryOptions", Prediction | None, float | None]:
        """Admission-time decision: returns ``(options', prediction,
        miss)`` where a non-None ``miss`` means "reject: P(deadline
        miss) exceeds the configured bound" and ``options'`` carries any
        pre-granted per-stage DOPs."""
        prediction = self.predict_sql(sql, options)
        if prediction is None:
            return options, None, None
        cfg = self.config
        if deadline is not None and cfg.max_miss_probability is not None:
            miss = prediction.miss_probability(deadline)
            if miss > cfg.max_miss_probability:
                self.slo_rejections += 1
                return options, prediction, miss
        if cfg.pregrant:
            options = self.pregrant_options(options, prediction, deadline)
        return options, prediction, None

    def pregrant_options(
        self,
        options: "QueryOptions",
        prediction: Prediction,
        deadline: float | None,
    ) -> "QueryOptions":
        """Pre-granted per-stage DOPs: each stage wide enough to finish
        its predicted CPU work within ``pregrant_target_fraction`` of the
        predicted runtime (or of the deadline, when that is tighter),
        clamped to the fleet's free cores by a deterministic widest-first
        decrement."""
        base = prediction.runtime
        if deadline is not None and 0 < deadline < base:
            base = deadline
        target = max(base * self.config.pregrant_target_fraction, 1e-6)
        dops: dict[int, int] = {}
        for demand in prediction.stages:
            want = (
                math.ceil(demand.cpu_seconds / target)
                if demand.cpu_seconds > 0 else 1
            )
            dops[demand.stage] = max(1, min(self.config.max_stage_dop, want))
        cap = max(1, self.engine.cluster.schedulable_cores())
        while sum(dops.values()) > cap and any(d > 1 for d in dops.values()):
            widest = min(
                (sid for sid, d in dops.items() if d > 1),
                key=lambda sid: (-dops[sid], sid),
            )
            dops[widest] -= 1
        if all(d <= 1 for d in dops.values()):
            # Nothing beyond the reactive defaults: leave options alone
            # so admission's planned-cores accounting is unchanged.
            return options
        self.pregrants += 1
        merged = dict(options.stage_dops)
        merged.update(dops)
        return replace(options, stage_dops=merged)

    def pregrant_memory(self, prediction: Prediction) -> int | None:
        """Predicted memory budget, or None when pre-granting is off."""
        if not self.config.pregrant:
            return None
        return max(
            MIN_MEMORY_PREGRANT,
            int(prediction.peak_memory_bytes * self.config.memory_headroom),
        )

    # -- placement hook -----------------------------------------------------
    def place(self, stage: "StageExecution"):
        """Dominant-remaining-resource placement for a predicted stage.

        Returns the chosen node and reserves its predicted per-task
        memory in the ledger, or None to fall back to least-loaded."""
        if not self.config.placement:
            return None
        prediction = stage.query.prediction
        if prediction is None:
            return None
        demand = prediction.demand(stage.id)
        if demand is None:
            return None
        per_task_bytes = demand.peak_memory_bytes // max(1, demand.tasks)
        best = None
        best_score = None
        for node in sorted(
            self.engine.cluster.schedulable_compute, key=lambda n: n.id
        ):
            reserved = self._node_reserved.get(node.id, 0)
            cpu_frac = (node.task_count + 1) / max(1, node.spec.cores)
            mem_frac = (
                (reserved + per_task_bytes) / max(1, node.spec.memory_bytes)
            )
            if mem_frac > 1.0:
                continue
            score = max(cpu_frac, mem_frac)
            if best_score is None or score < best_score:
                best, best_score = node, score
        if best is None:
            return None
        self.drr_placements += 1
        self._node_reserved[best.id] = (
            self._node_reserved.get(best.id, 0) + per_task_bytes
        )
        self._query_reservations.setdefault(stage.query.id, []).append(
            (best.id, per_task_bytes)
        )
        return best

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        out = self.store.stats()
        out.update({
            "recorded": self.recorded,
            "predictions": self.predictions_served,
            "pregrants": self.pregrants,
            "drr_placements": self.drr_placements,
            "reprovisions": self.reprovisions,
            "slo_rejections": self.slo_rejections,
        })
        return out
