"""Demand-profile dataclasses: what a prediction *is* (DESIGN.md §16).

A :class:`StageDemand` is the time-varying resource demand of one stage
— CPU seconds and quanta burnt, peak tracked operator memory, exchange
bytes produced, and the stage's [start, end) window relative to query
submission.  A :class:`Prediction` bundles the per-stage demand series
with a runtime point estimate and variance over the template's recorded
runs; :meth:`Prediction.miss_probability` turns estimate + variance into
P(deadline miss) for SLO admission.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Prediction", "StageDemand"]


@dataclass(frozen=True)
class StageDemand:
    """Mean observed demand of one stage across a template's runs."""

    stage: int
    #: Virtual CPU seconds burnt by the stage (all tasks, all drivers).
    cpu_seconds: float
    #: Driver quanta executed.
    quanta: int
    #: Peak tracked operator-state bytes, summed over the stage's tasks.
    peak_memory_bytes: int
    #: Bytes the stage pushed into its output exchange.
    exchange_bytes: int
    rows_out: int
    #: Tasks the stage ran with when the demand was recorded.
    tasks: int
    #: Stage activity window, virtual seconds relative to submission.
    start: float
    end: float

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def cpu_rate(self) -> float:
        """Mean cores the stage keeps busy while active (CPU-quanta/s)."""
        duration = self.duration
        return self.cpu_seconds / duration if duration > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "cpu_seconds": self.cpu_seconds,
            "quanta": self.quanta,
            "peak_memory_bytes": self.peak_memory_bytes,
            "exchange_bytes": self.exchange_bytes,
            "rows_out": self.rows_out,
            "tasks": self.tasks,
            "start": self.start,
            "end": self.end,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageDemand":
        return cls(**data)


@dataclass(frozen=True)
class Prediction:
    """Predicted demand + runtime for one query template.

    Frozen and self-contained: handles, rejection errors, and reports
    can carry it around without exposing predictor internals.
    """

    #: Template fingerprint the history was keyed under.
    template: str
    #: Recorded runs backing this prediction (the confidence signal).
    samples: int
    #: Runtime point estimate (mean over runs), virtual seconds.
    runtime: float
    #: Population variance of the recorded runtimes.
    variance: float
    #: Mean peak tracked bytes of the whole query.
    peak_memory_bytes: int
    #: Per-stage mean demand series, ordered by stage id.
    stages: tuple[StageDemand, ...] = field(default_factory=tuple)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total_cpu_seconds(self) -> float:
        return sum(d.cpu_seconds for d in self.stages)

    def demand(self, stage: int) -> StageDemand | None:
        for d in self.stages:
            if d.stage == stage:
                return d
        return None

    def miss_probability(self, deadline: float) -> float:
        """P(runtime > deadline) under Normal(runtime, variance).

        With zero variance (a single sample, or perfectly repeatable
        runs) this degenerates to a step function at the point estimate.
        """
        if deadline <= 0:
            return 1.0
        if self.variance <= 0.0:
            return 1.0 if self.runtime > deadline else 0.0
        z = (deadline - self.runtime) / (self.std * math.sqrt(2.0))
        return 0.5 * (1.0 - math.erf(z))

    def describe(self) -> str:
        lines = [
            f"template {self.template}: runtime {self.runtime:.3f}s "
            f"(std {self.std:.3f}s, {self.samples} samples), "
            f"peak memory {self.peak_memory_bytes} bytes"
        ]
        for d in self.stages:
            lines.append(
                f"  S{d.stage}: cpu {d.cpu_seconds:.3f}s over "
                f"[{d.start:.3f}, {d.end:.3f}]s ({d.cpu_rate:.2f} cores), "
                f"peak {d.peak_memory_bytes} B, "
                f"exchange {d.exchange_bytes} B, {d.tasks} tasks"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "template": self.template,
            "samples": self.samples,
            "runtime": self.runtime,
            "variance": self.variance,
            "peak_memory_bytes": self.peak_memory_bytes,
            "stages": [d.to_dict() for d in self.stages],
        }
