"""Trace-history store: recorded runs -> demand profiles (DESIGN.md §16).

One store per engine, keyed by template fingerprint.  Each recorded run
is a plain dict (runtime, query peak bytes, per-stage metrics); the
aggregate prediction is the per-metric mean over runs with population
variance on the runtime.  Serialization is canonical JSON
(``sort_keys=True``) so same-seed accumulation is byte-identical across
runs — the history file can itself be diffed in CI.  ``history_dir``
persists the store to ``history.json`` after every record; ``None``
keeps it in memory only.
"""

from __future__ import annotations

import json
import os

from .profile import Prediction, StageDemand

__all__ = ["HistoryStore"]

#: Bump when the run schema changes; old files are discarded, not migrated.
HISTORY_VERSION = 1


class HistoryStore:
    def __init__(self, history_dir: str | None = None):
        self.history_dir = history_dir
        #: template fingerprint -> list of recorded runs (dicts).
        self._runs: dict[str, list[dict]] = {}
        if history_dir is not None:
            self._load()

    # -- recording ----------------------------------------------------------
    def record(self, template: str, run: dict) -> None:
        self._runs.setdefault(template, []).append(run)
        if self.history_dir is not None:
            self.save()

    def runs(self, template: str) -> list[dict]:
        return list(self._runs.get(template, ()))

    # -- prediction ---------------------------------------------------------
    def predict(self, template: str, min_samples: int = 1) -> Prediction | None:
        runs = self._runs.get(template)
        if not runs or len(runs) < max(1, min_samples):
            return None
        n = len(runs)
        runtimes = [r["runtime"] for r in runs]
        mean = sum(runtimes) / n
        variance = sum((t - mean) ** 2 for t in runtimes) / n
        peak = int(round(sum(r.get("peak_query_bytes", 0) for r in runs) / n))
        # Per-stage mean over the runs that observed the stage (plans are
        # identical within a template, so normally all of them).
        by_stage: dict[int, list[dict]] = {}
        for run in runs:
            for stage in run.get("stages", ()):
                by_stage.setdefault(stage["stage"], []).append(stage)
        stages = []
        for sid in sorted(by_stage):
            obs = by_stage[sid]
            k = len(obs)

            def mean_of(fld: str) -> float:
                return sum(o[fld] for o in obs) / k

            stages.append(StageDemand(
                stage=sid,
                cpu_seconds=mean_of("cpu_seconds"),
                quanta=int(round(mean_of("quanta"))),
                peak_memory_bytes=int(round(mean_of("peak_memory_bytes"))),
                exchange_bytes=int(round(mean_of("exchange_bytes"))),
                rows_out=int(round(mean_of("rows_out"))),
                tasks=int(round(mean_of("tasks"))),
                start=mean_of("start"),
                end=mean_of("end"),
            ))
        return Prediction(
            template=template,
            samples=n,
            runtime=mean,
            variance=variance,
            peak_memory_bytes=peak,
            stages=tuple(stages),
        )

    # -- persistence --------------------------------------------------------
    def to_json(self) -> str:
        """Canonical serialization: byte-identical for identical history."""
        return json.dumps(
            {"version": HISTORY_VERSION, "templates": self._runs},
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def _path(self) -> str:
        return os.path.join(self.history_dir, "history.json")

    def save(self) -> None:
        os.makedirs(self.history_dir, exist_ok=True)
        with open(self._path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def _load(self) -> None:
        try:
            with open(self._path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if data.get("version") != HISTORY_VERSION:
            return
        templates = data.get("templates")
        if isinstance(templates, dict):
            self._runs = {str(k): list(v) for k, v in templates.items()}

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        return {
            "templates": len(self._runs),
            "runs": sum(len(v) for v in self._runs.values()),
        }
