"""Pure policy functions for the workload layer.

The admission controller and resource arbiter delegate their *decisions*
to the stateless helpers here, so the policies can be property-tested
without spinning up a simulated cluster: no-starvation under priority +
aging, FIFO order preservation, and fair-share convergence are all
provable against these functions alone.
"""

from __future__ import annotations

QUEUE_POLICIES = ("fifo", "priority")
ARBITRATION_POLICIES = ("none", "fair_share", "strict_priority", "deadline")


def effective_priority(
    priority: float, submitted_at: float, now: float, aging_rate: float
) -> float:
    """Priority after aging: waiting entries gain ``aging_rate`` points
    per queued virtual second, so any positive rate eventually lifts an
    old low-priority submission above fresh high-priority ones
    (no starvation)."""
    return priority + aging_rate * max(0.0, now - submitted_at)


def queue_key(entry, policy: str, aging_rate: float, now: float) -> tuple:
    """Sort key for one pending entry; the queue head is the minimum.

    ``entry`` needs ``priority``, ``submitted_at``, and ``seq`` (a unique
    monotonically increasing submission counter breaking all ties, which
    keeps the order total and the system deterministic).
    """
    if policy == "priority":
        return (
            -effective_priority(entry.priority, entry.submitted_at, now, aging_rate),
            entry.seq,
        )
    return (entry.seq,)


def pick_next(pending: list, policy: str, aging_rate: float, now: float):
    """Head of the admission queue under ``policy`` (``None`` if empty).

    Admission is head-of-line: only the head may be admitted, and if it
    does not fit the limits nothing behind it may jump the queue.  This
    costs some utilization but makes the no-starvation property hold for
    *resources* too — a wide query cannot be overtaken forever by narrow
    ones."""
    if not pending:
        return None
    return min(pending, key=lambda e: queue_key(e, policy, aging_rate, now))


def fair_share_budget(capacity: int, tenant_count: int) -> int:
    """Per-tenant core budget under fair-share arbitration."""
    return max(1, capacity // max(1, tenant_count))


def grantable_units(
    requested_units: int,
    per_unit_cores: int,
    free_cores: int,
    tenant_headroom_cores: int | None,
) -> int:
    """How many of ``requested_units`` (tasks/drivers) a bid may receive.

    Bounded by free cluster cores and, under fair share, by the bidding
    tenant's remaining budget (``None`` = unlimited headroom)."""
    per_unit = max(1, per_unit_cores)
    allowed = max(0, free_cores) // per_unit
    if tenant_headroom_cores is not None:
        allowed = min(allowed, max(0, tenant_headroom_cores) // per_unit)
    return max(0, min(requested_units, allowed))


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index over per-tenant allocations, in (0, 1].

    1.0 means perfectly equal shares; 1/n means one tenant got
    everything.  Empty/zero inputs return 1.0 (vacuously fair)."""
    xs = [v for v in values if v > 0]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(v * v for v in xs)
    return (total * total) / (len(xs) * squares)
