"""repro.workload: multi-tenant concurrent-query layer.

Sessions + admission control (``engine.session(...).submit(...)``),
cluster-wide resource arbitration of tuning bids (grant / trim / defer /
revoke), and workload drivers with per-tenant metrics.  See DESIGN.md
§11 for the policies and the determinism contract.
"""

from .admission import AdmissionController, PendingQuery, planned_cores
from .arbiter import ANONYMOUS, ArbiterEntry, Bid, ResourceArbiter
from .autoscaler import Autoscaler
from .policies import (
    ARBITRATION_POLICIES,
    QUEUE_POLICIES,
    effective_priority,
    fair_share_budget,
    grantable_units,
    jain_fairness,
    pick_next,
    queue_key,
)
from .runner import (
    ClosedLoop,
    PoissonArrivals,
    TenantSpec,
    TenantStats,
    TraceArrivals,
    Workload,
    WorkloadReport,
)
from .session import QueryRecord, Session, WorkloadManager

__all__ = [
    "ANONYMOUS",
    "ARBITRATION_POLICIES",
    "AdmissionController",
    "ArbiterEntry",
    "Autoscaler",
    "Bid",
    "ClosedLoop",
    "PendingQuery",
    "PoissonArrivals",
    "QUEUE_POLICIES",
    "QueryRecord",
    "ResourceArbiter",
    "Session",
    "TenantSpec",
    "TenantStats",
    "TraceArrivals",
    "Workload",
    "WorkloadManager",
    "WorkloadReport",
    "effective_priority",
    "fair_share_budget",
    "grantable_units",
    "jain_fairness",
    "pick_next",
    "planned_cores",
    "queue_key",
]
