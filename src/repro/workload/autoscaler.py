"""Autoscaler: queue-depth and deadline-pressure driven fleet sizing.

Sits between the admission controller and :mod:`repro.cluster.membership`.
Policy, evaluated every ``autoscale_period`` virtual seconds:

* **Scale out** when the admission queue is at least
  ``autoscale_queue_high`` deep, or any queued query's deadline is closer
  than ``autoscale_deadline_slack`` — joining up to
  ``autoscale_max_join_per_tick`` nodes (spot when ``autoscale_spot``),
  bounded by ``autoscale_max_nodes`` counting pending joins.

* **Scale in** after ``autoscale_idle_ticks`` consecutive ticks with an
  empty queue and cluster usage below ``autoscale_usage_low`` of
  capacity — gracefully draining the most recently *joined* node (base
  capacity is never drained), down to ``autoscale_min_nodes``.

A cooldown separates consecutive actions so the policy cannot flap.  The
tick self-terminates when there is nothing to do (idle at minimum size)
and is re-armed by submissions and membership changes, so a drained
workload never keeps the event loop alive.  Decisions depend only on
virtual time and engine state — runs are bit-identical per seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .session import WorkloadManager


class Autoscaler:
    def __init__(self, manager: "WorkloadManager"):
        self.manager = manager
        self.engine = manager.engine
        self.kernel = manager.engine.kernel
        self.config = manager.engine.config.cluster
        self.membership = manager.engine.membership
        self.cluster = manager.engine.cluster
        #: Node ids this autoscaler joined; only these are drain victims.
        self.owned: set[int] = set()
        self.scale_outs = 0
        self.scale_ins = 0
        self._idle_ticks = 0
        self._last_action = -1e18
        self._tick_running = False
        self.membership.on_change.append(self._on_membership_change)

    # ------------------------------------------------------------------
    @property
    def min_nodes(self) -> int:
        if self.config.autoscale_min_nodes is not None:
            return self.config.autoscale_min_nodes
        return self.config.compute_nodes

    @property
    def max_nodes(self) -> int | None:
        return self.config.autoscale_max_nodes

    def ensure_tick(self) -> None:
        if not self._tick_running:
            self._tick_running = True
            self.kernel.schedule(self.config.autoscale_period, self._tick)

    def _on_membership_change(self) -> None:
        # New capacity (or a finished drain) may unblock queued work.
        self.manager.admission._schedule_pump()
        self.ensure_tick()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        admission = self.manager.admission
        arbiter = self.manager.arbiter
        queue_depth = len(admission.queue)
        running = len(admission.running)
        live = (
            len([n for n in self.cluster.compute if n.state == "active"])
            + self.membership.pending_joins
        )
        draining = any(
            n.state == "draining" for n in self.cluster.compute
        )
        # Owned surplus: nodes this autoscaler joined that it could still
        # drain away.  Externally joined nodes are not ours to reclaim, so
        # they must not keep the tick alive forever.
        owned_active = [
            n
            for n in self.cluster.compute
            if n.state == "active" and n.id in self.owned
        ]
        surplus = bool(owned_active) and (
            len(self.cluster.schedulable_compute) > self.min_nodes
        )
        if (
            queue_depth == 0
            and running == 0
            and not draining
            and self.membership.pending_joins == 0
            and not surplus
        ):
            # Idle with nothing left to reclaim: stop ticking (re-armed
            # on submission and membership changes).
            self._tick_running = False
            return

        cooled = (
            self.kernel.now - self._last_action
            >= self.config.autoscale_cooldown
        )
        if cooled and self._wants_out(admission, live):
            join = min(
                self.config.autoscale_max_join_per_tick,
                (self.max_nodes - live) if self.max_nodes is not None else
                self.config.autoscale_max_join_per_tick,
            )
            if join > 0:
                self._scale_out(join)
        elif cooled and self._wants_in(queue_depth, arbiter):
            self._idle_ticks += 1
            if self._idle_ticks >= self.config.autoscale_idle_ticks:
                self._scale_in()
        else:
            self._idle_ticks = 0
        self.kernel.schedule(self.config.autoscale_period, self._tick)

    # -- policy --------------------------------------------------------
    def _wants_out(self, admission, live: int) -> bool:
        if self.max_nodes is not None and live >= self.max_nodes:
            return False
        if len(admission.queue) >= self.config.autoscale_queue_high:
            return True
        slack = self.config.autoscale_deadline_slack
        for pending in admission.queue:
            deadline_at = pending.record.deadline_at
            if deadline_at is not None and deadline_at - self.kernel.now < slack:
                return True
        return False

    def _wants_in(self, queue_depth: int, arbiter) -> bool:
        if queue_depth > 0:
            return False
        candidates = [
            n
            for n in self.cluster.schedulable_compute
            # Only idle owned nodes are drain candidates: a busy node's
            # drain could escalate into a crash of a root-stage task,
            # which is not a price a *policy* decision may pay.
            if n.id in self.owned and n.task_count == 0
        ]
        if len(self.cluster.schedulable_compute) - len(candidates) < self.min_nodes:
            candidates = candidates[: max(
                0, len(self.cluster.schedulable_compute) - self.min_nodes
            )]
        if not candidates:
            return False
        capacity = arbiter.capacity
        if capacity <= 0:
            return False
        return arbiter.cluster_usage() / capacity < self.config.autoscale_usage_low

    # -- actions -------------------------------------------------------
    def _scale_out(self, count: int) -> None:
        self.membership.join(
            count,
            spot=self.config.autoscale_spot,
            on_active=lambda node: self.owned.add(node.id),
        )
        self.scale_outs += 1
        self._last_action = self.kernel.now
        self._idle_ticks = 0
        self.membership._record("autoscale_out", f"+{count}")

    def _scale_in(self) -> None:
        victims = [
            n
            for n in self.cluster.schedulable_compute
            if n.id in self.owned and n.task_count == 0
        ]
        if not victims or len(self.cluster.schedulable_compute) <= max(
            1, self.min_nodes
        ):
            self._idle_ticks = 0
            return
        victim = max(victims, key=lambda n: (n.provisioned_at, n.id))
        self.membership.drain(victim)
        self.scale_ins += 1
        self._last_action = self.kernel.now
        self._idle_ticks = 0
        self.membership._record("autoscale_in", victim.name)

    # ------------------------------------------------------------------
    @property
    def settled(self) -> bool:
        """True once the policy tick has self-terminated: queue empty,
        nothing running or draining, fleet back at the minimum size."""
        return not self._tick_running

    def stats(self) -> dict:
        return {
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "owned_nodes": len(self.owned),
        }
