"""Sessions and the per-engine WorkloadManager.

``engine.session(tenant, priority, deadline)`` opens a :class:`Session`;
its ``submit()`` goes through the admission controller instead of
straight to the coordinator, and the queries it admits are registered
with the cluster-wide resource arbiter.  The manager also keeps one
:class:`QueryRecord` per submission — the raw material for the workload
report and the per-tenant metrics gauges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .admission import AdmissionController
from .arbiter import ResourceArbiter

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution, QueryOptions
    from ..engine import AccordionEngine
    from ..handle import QueryHandle, QueryResult
    from .autoscaler import Autoscaler


@dataclass
class QueryRecord:
    """Lifecycle of one session submission, in virtual time."""

    tenant: str
    sql: str
    submitted_at: float
    deadline_at: float | None = None
    admitted_at: float | None = None
    finished_at: float | None = None
    #: queued | rejected | cancelled | running | finished | failed
    state: str = "queued"
    query_id: int | None = None
    rows: int | None = None

    @property
    def queue_seconds(self) -> float | None:
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def latency(self) -> float | None:
        """Submission-to-completion, including queueing (None until done)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def deadline_met(self) -> bool | None:
        if self.deadline_at is None:
            return None
        if self.finished_at is None or self.state != "finished":
            return False
        return self.finished_at <= self.deadline_at


class Session:
    """One tenant's submission channel (cheap; open as many as needed)."""

    def __init__(
        self,
        manager: "WorkloadManager",
        tenant: str,
        priority: float = 0.0,
        deadline: float | None = None,
    ):
        self.manager = manager
        self.tenant = tenant
        self.priority = priority
        #: Default per-query deadline, virtual seconds from submission.
        self.deadline = deadline

    def submit(
        self,
        sql: str,
        options: "QueryOptions | None" = None,
        deadline: float | None = None,
        memory_bytes: int | None = None,
    ) -> "QueryHandle":
        """Queue a query for admission; returns immediately.

        The handle starts in the ``"queued"`` state (possibly admitted
        synchronously if capacity allows); ``deadline`` overrides the
        session default for this query."""
        effective_deadline = deadline if deadline is not None else self.deadline
        return self.manager.admission.submit(
            self, sql, options=options, deadline=effective_deadline,
            memory_bytes=memory_bytes,
        )

    def execute(
        self,
        sql: str,
        options: "QueryOptions | None" = None,
        max_virtual_seconds: float = 1e7,
    ) -> "QueryResult":
        """Submit through admission and run to completion."""
        return self.submit(sql, options).result(max_virtual_seconds)

    @property
    def queue_depth(self) -> int:
        return len(self.manager.admission.queue)

    def __repr__(self) -> str:
        return f"Session(tenant={self.tenant!r}, priority={self.priority})"


class WorkloadManager:
    """Per-engine workload layer: admission + arbitration + records."""

    def __init__(self, engine: "AccordionEngine"):
        self.engine = engine
        self.kernel = engine.kernel
        self.config = engine.config.workload
        self.arbiter = ResourceArbiter(self)
        self.admission = AdmissionController(self)
        self.records: list[QueryRecord] = []
        #: Queue/deadline-driven fleet sizing (ClusterConfig.autoscale).
        self.autoscaler: "Autoscaler | None" = None
        if engine.config.cluster.autoscale:
            from .autoscaler import Autoscaler

            self.autoscaler = Autoscaler(self)
            engine.metrics.gauge("autoscaler", self.autoscaler.stats)
        else:
            # Capacity changes (manual joins/drains) still unblock queued
            # admissions even without the autoscaler.
            engine.membership.on_change.append(self.admission._schedule_pump)
        engine.metrics.gauge("workload", self.admission.stats)
        engine.metrics.gauge("arbiter", self.arbiter.stats)

    def session(
        self, tenant: str, priority: float = 0.0, deadline: float | None = None
    ) -> Session:
        return Session(self, tenant, priority=priority, deadline=deadline)

    # -- admission callbacks ------------------------------------------------
    def new_record(
        self, tenant: str, sql: str, deadline: float | None
    ) -> QueryRecord:
        record = QueryRecord(
            tenant=tenant,
            sql=sql,
            submitted_at=self.kernel.now,
            deadline_at=(
                self.kernel.now + deadline if deadline is not None else None
            ),
        )
        self.records.append(record)
        return record

    def on_admitted(self, pending, execution: "QueryExecution") -> None:
        record = pending.record
        record.admitted_at = self.kernel.now
        record.state = "running"
        record.query_id = execution.id
        role = getattr(execution, "role", None)
        if role == "cached":
            # Served synchronously from the result cache: there is no
            # physical execution for the arbiter to manage.
            return
        if role in ("carrier", "folded"):
            self._register_shared(pending, execution, record)
            return
        self.arbiter.register(
            execution,
            tenant=pending.session.tenant,
            priority=pending.priority,
            deadline_at=record.deadline_at,
            memory_bytes=pending.memory_bytes,
        )
        self._maybe_eager_elastic(record, execution)

    def _register_shared(self, pending, consumer, record: QueryRecord) -> None:
        """Arbiter accounting for a consumer riding a shared execution.

        Registration is deferred until the group's carrier execution is
        dispatched (it may be sitting in a fold window).  The carrier is
        registered once; every consumer then folds its own priority /
        deadline onto the entry, so the shared execution is arbitrated at
        the effective values of its *most important* live consumer and a
        consumer's detach drops only its own claim."""
        tenant = pending.session.tenant

        def _on_dispatch(group) -> None:
            if consumer.finished:  # detached inside the fold window
                return
            carrier = group.carrier
            if carrier.id not in self.arbiter.entries:
                self.arbiter.register(
                    carrier,
                    tenant=tenant,
                    priority=pending.priority,
                    deadline_at=record.deadline_at,
                    memory_bytes=pending.memory_bytes,
                )
            self.arbiter.fold_consumer(
                carrier.id, consumer.id,
                priority=pending.priority, deadline_at=record.deadline_at,
            )
            self._maybe_eager_elastic(record, carrier)

        consumer.group.when_dispatched(_on_dispatch)

    def _maybe_eager_elastic(self, record: QueryRecord, execution) -> None:
        # Deadline-constrained queries need a collector/what-if service
        # from the start so the arbiter's rebalance pass can estimate
        # T_remain; create the elastic handle eagerly.
        if (
            record.deadline_at is not None
            and self.engine.config.elasticity_enabled
            and self.config.arbitration == "deadline"
        ):
            self.engine._elastic_for(execution)

    def on_finished(self, pending, execution: "QueryExecution") -> None:
        record = pending.record
        record.finished_at = self.kernel.now
        record.state = execution.state.value
        if execution.succeeded:
            record.rows = execution.result_rows

    # -- aggregation --------------------------------------------------------
    def tenant_records(self) -> dict[str, list[QueryRecord]]:
        out: dict[str, list[QueryRecord]] = {}
        for record in self.records:
            out.setdefault(record.tenant, []).append(record)
        return out
