"""Admission controller: the gate between ``Session.submit`` and the
coordinator.

Submissions join a queue; the controller admits the head whenever the
configured limits (concurrent queries, summed planned cores, summed
declared memory) allow it.  Queue order is FIFO or aged priority
(:mod:`repro.workload.policies`); a queue timeout rejects the submission
with a structured :class:`~repro.errors.QueryRejectedError` instead of
holding it forever.  Every decision happens at a deterministic point in
virtual time, so a workload replays identically from (seed, trace).
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING

from ..errors import QueryCancelledError, QueryRejectedError
from ..handle import QueryHandle
from .policies import pick_next

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryOptions
    from ..plan.physical import PhysicalPlan
    from .session import Session, WorkloadManager


def planned_cores(plan: "PhysicalPlan", options: "QueryOptions", config) -> int:
    """Cores a query will occupy at its *initial* DOPs.

    Mirrors :meth:`Scheduler._initial_dop` over the plan's fragments —
    one core per initial task.  Runtime tuning beyond this goes through
    the resource arbiter, not admission."""
    total = 0
    for fragment in plan.bottom_up():
        if fragment.dop_fixed:
            total += 1
        elif fragment.id in options.stage_dops:
            total += max(1, options.stage_dops[fragment.id])
        elif fragment.is_source and options.scan_stage_dop is not None:
            total += max(1, options.scan_stage_dop)
        elif options.initial_stage_dop is not None:
            total += max(1, options.initial_stage_dop)
        else:
            total += max(1, config.default_stage_dop)
    return total


class PendingQuery:
    """One queued submission, from ``Session.submit`` until admission,
    rejection, or queued-cancellation."""

    __slots__ = (
        "handle", "session", "sql", "options", "seq", "priority",
        "submitted_at", "deadline", "cores", "memory_bytes",
        "timeout_event", "record", "billed",
    )

    def __init__(self, handle, session, sql, options, seq, priority,
                 submitted_at, deadline, cores, memory_bytes, record):
        self.handle = handle
        self.session = session
        self.sql = sql
        self.options = options
        self.seq = seq
        self.priority = priority
        self.submitted_at = submitted_at
        self.deadline = deadline
        self.cores = cores
        self.memory_bytes = memory_bytes
        self.timeout_event = None
        self.record = record
        #: False for submissions served by the sharing layer without a
        #: new physical execution (fold/cache): they count against no
        #: admission cap — a grafted consumer must not double-bill its
        #: tenant for cores/memory the carrier already pays for.
        self.billed = True


class AdmissionController:
    def __init__(self, manager: "WorkloadManager"):
        self.manager = manager
        self.engine = manager.engine
        self.kernel = manager.engine.kernel
        self.config = manager.config
        self.queue: list[PendingQuery] = []
        #: query id -> PendingQuery, for every admitted, still-running query.
        self.running: dict[int, PendingQuery] = {}
        self.admitted_cores = 0
        self.admitted_memory = 0
        #: Policy-violation log: must stay empty; every entry is a bug.
        self.violations: list[str] = []
        self._seq = itertools.count(1)
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.timeouts = 0
        self.cancelled_queued = 0
        self.max_queue_depth = 0
        self._pump_scheduled = False

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        session: "Session",
        sql: str,
        options: "QueryOptions | None" = None,
        deadline: float | None = None,
        memory_bytes: int | None = None,
    ) -> QueryHandle:
        from ..cluster.coordinator import QueryOptions

        options = options or QueryOptions()
        predictor = self.engine.predict_service
        prediction = None
        if predictor is not None:
            # Demand prediction at the admission gate (DESIGN.md §16):
            # possibly rewrite the options with pre-granted stage DOPs,
            # pre-size the memory budget, or reject on P(deadline miss).
            options, prediction, miss = predictor.admission_plan(
                sql, options, deadline
            )
            if miss is not None:
                return self._reject_predicted_miss(
                    session, sql, deadline, prediction, miss
                )
            if prediction is not None and memory_bytes is None:
                memory_bytes = predictor.pregrant_memory(prediction)
        plan = self.engine.coordinator.plan_sql(sql, options)
        cores = planned_cores(plan, options, self.engine.config)
        memory = (
            memory_bytes
            if memory_bytes is not None
            else self.config.default_query_memory_bytes
        )
        handle = QueryHandle(self.engine, sql=sql)
        record = self.manager.new_record(session.tenant, sql, deadline)
        pending = PendingQuery(
            handle, session, sql, options, next(self._seq), session.priority,
            self.kernel.now, deadline, cores, memory, record,
        )
        handle._on_cancel_queued = self._cancel_queued
        self.submitted += 1
        self.queue.append(pending)
        self.max_queue_depth = max(self.max_queue_depth, len(self.queue))
        if self.config.queue_timeout is not None:
            pending.timeout_event = self.kernel.schedule(
                self.config.queue_timeout, lambda p=pending: self._timeout(p)
            )
        self._trace("queued", pending)
        self._pump()
        if self.manager.autoscaler is not None:
            self.manager.autoscaler.ensure_tick()
        return handle

    def _reject_predicted_miss(
        self, session, sql, deadline, prediction, miss
    ) -> QueryHandle:
        """SLO rejection before queueing: the runtime estimate + variance
        says this query cannot plausibly meet its deadline.  The handle
        is terminal immediately; the structured error carries the
        prediction so the caller can renegotiate (retry with a looser
        deadline or after warming more history)."""
        handle = QueryHandle(self.engine, sql=sql)
        record = self.manager.new_record(session.tenant, sql, deadline)
        record.state = "rejected"
        record.finished_at = self.kernel.now
        self.submitted += 1
        self.rejected += 1
        error = QueryRejectedError(
            f"tenant {session.tenant!r}: predicted deadline-miss "
            f"probability {miss:.3f} exceeds "
            f"{self.engine.config.prediction.max_miss_probability} "
            f"(predicted runtime {prediction.runtime:.2f}s +- "
            f"{prediction.std:.2f}s vs deadline {deadline:.2f}s)",
            tenant=session.tenant,
            reason="predicted-miss",
            prediction=prediction,
        )
        handle._reject(error)
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "workload", "admission:rejected", node="coordinator",
                tenant=session.tenant, reason="predicted-miss",
            )
        return handle

    # -- queue dynamics -----------------------------------------------------
    def _pump(self) -> None:
        """Admit head-of-line submissions while they fit the limits."""
        self._pump_scheduled = False
        while self.queue:
            head = pick_next(
                self.queue,
                self.config.queue_policy,
                self.config.priority_aging_rate,
                self.kernel.now,
            )
            if head is None or not (self._fits(head) or self._share_bypass(head)):
                break
            self.queue.remove(head)
            self._admit(head)
        self._check_invariants()

    def _schedule_pump(self) -> None:
        """Re-pump on the next zero-delay event (after a completion)."""
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.kernel.call_soon(self._pump)

    def _billed_running(self) -> int:
        """Physical executions currently admitted.  Folded/cached
        submissions ride along unbilled and never count against caps."""
        return sum(1 for p in self.running.values() if p.billed)

    def _share_bypass(self, pending: PendingQuery) -> bool:
        """True when the sharing layer would serve this submission without
        a new physical execution (fold onto a live carrier, or a result
        cache hit) — such submissions are admitted past the caps because
        they consume no new cores or memory.  Side-effect-free probe."""
        sharing = self.engine.sharing
        if sharing is None:
            return False
        return sharing.probe(pending.sql, pending.options) is not None

    def _fits(self, pending: PendingQuery) -> bool:
        cfg = self.config
        if (
            cfg.max_concurrent_queries is not None
            and self._billed_running() >= cfg.max_concurrent_queries
        ):
            return False
        if cfg.max_queries_per_node is not None:
            # Dynamic cap tracking the live fleet: under autoscaling the
            # concurrency limit grows with joins and shrinks with drains.
            # Enforced at admission only — a scale-down never cancels
            # already-running queries, so a transient excess is legal
            # (and deliberately not an invariant violation).
            nodes = len(self.engine.cluster.schedulable_compute)
            limit = max(1, math.ceil(cfg.max_queries_per_node * nodes))
            if self._billed_running() >= limit:
                return False
        if (
            cfg.max_admitted_cores is not None
            and self.admitted_cores + pending.cores > cfg.max_admitted_cores
            # A query wider than the whole budget could never run at all;
            # admit it alone rather than deadlocking the queue.
            and self.admitted_cores > 0
        ):
            return False
        if (
            cfg.max_admitted_memory_bytes is not None
            and self.admitted_memory + pending.memory_bytes
            > cfg.max_admitted_memory_bytes
            and self.admitted_memory > 0
        ):
            return False
        return True

    def _admit(self, pending: PendingQuery) -> None:
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
            pending.timeout_event = None
        execution = self.engine._dispatch(pending.sql, pending.options)
        execution.tenant = pending.session.tenant
        pending.billed = getattr(execution, "role", None) not in (
            "folded", "cached",
        )
        # A carrier's physical execution may already exist (dispatched
        # synchronously, before this assignment); tag it for per-tenant
        # accounting too.
        carrier = getattr(execution, "carrier", None)
        if carrier is not None and carrier.tenant is None:
            carrier.tenant = pending.session.tenant
        pending.handle._bind(execution)
        self.running[execution.id] = pending
        if pending.billed:
            self.admitted_cores += pending.cores
            self.admitted_memory += pending.memory_bytes
        self.admitted += 1
        self.manager.on_admitted(pending, execution)
        execution.on_done(lambda _exec, p=pending: self._released(p, _exec))
        self._trace("admitted", pending, query_id=execution.id)

    def _released(self, pending: PendingQuery, execution) -> None:
        if self.running.pop(execution.id, None) is None:
            return
        if pending.billed:
            self.admitted_cores -= pending.cores
            self.admitted_memory -= pending.memory_bytes
        self.manager.on_finished(pending, execution)
        if self.queue:
            self._schedule_pump()

    def _timeout(self, pending: PendingQuery) -> None:
        if pending not in self.queue:
            return
        self.queue.remove(pending)
        self.timeouts += 1
        queued = self.kernel.now - pending.submitted_at
        self._finish_queued(
            pending,
            QueryRejectedError(
                f"tenant {pending.session.tenant!r}: queue timeout after "
                f"{queued:.2f} virtual seconds",
                tenant=pending.session.tenant,
                reason="queue-timeout",
                queued_seconds=queued,
            ),
            "rejected",
        )
        self.rejected += 1
        self._trace("rejected", pending, reason="queue-timeout")
        self._check_invariants()

    def _cancel_queued(self, handle: QueryHandle, reason: str) -> None:
        for pending in self.queue:
            if pending.handle is handle:
                break
        else:
            return
        self.queue.remove(pending)
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
            pending.timeout_event = None
        self.cancelled_queued += 1
        self._finish_queued(
            pending,
            QueryCancelledError(f"cancelled while queued: {reason}",
                                reason=reason),
            "cancelled",
        )
        self._trace("cancelled_queued", pending, reason=reason)

    def _finish_queued(self, pending: PendingQuery, error, state: str) -> None:
        pending.record.state = state
        pending.record.finished_at = self.kernel.now
        pending.handle._reject(error)

    # -- policy invariants --------------------------------------------------
    def _check_invariants(self) -> None:
        cfg = self.config
        now = self.kernel.now
        billed = self._billed_running()
        if (
            cfg.max_concurrent_queries is not None
            and billed > cfg.max_concurrent_queries
        ):
            self.violations.append(
                f"t={now:.4f}: {billed} running > "
                f"max_concurrent_queries={cfg.max_concurrent_queries}"
            )
        if (
            cfg.max_admitted_cores is not None
            and self.admitted_cores > cfg.max_admitted_cores
            and len(self.running) > 1
        ):
            self.violations.append(
                f"t={now:.4f}: admitted_cores={self.admitted_cores} > "
                f"max_admitted_cores={cfg.max_admitted_cores}"
            )
        if (
            cfg.max_admitted_memory_bytes is not None
            and self.admitted_memory > cfg.max_admitted_memory_bytes
            and len(self.running) > 1
        ):
            self.violations.append(
                f"t={now:.4f}: admitted_memory={self.admitted_memory} > "
                f"max_admitted_memory_bytes={cfg.max_admitted_memory_bytes}"
            )

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        return {
            "queue_depth": len(self.queue),
            "max_queue_depth": self.max_queue_depth,
            "running": len(self.running),
            "running_billed": self._billed_running(),
            "admitted_cores": self.admitted_cores,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "cancelled_queued": self.cancelled_queued,
            "violations": len(self.violations),
        }

    def _trace(self, event: str, pending: PendingQuery, **meta) -> None:
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "workload", f"admission:{event}", node="coordinator",
                tenant=pending.session.tenant, seq=pending.seq, **meta,
            )
