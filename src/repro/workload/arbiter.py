"""ResourceArbiter: cluster-wide owner of the core inventory.

The per-query auto-tuner (Section 5) assumes the cluster is its own; with
many tenants that assumption breaks.  Every tuning request that passes
the request filter therefore becomes a *bid* — (query, stage, requested
DOP, predicted benefit from the what-if service) — which the arbiter
grants, trims to the cores actually available, or defers
(:class:`~repro.errors.TuningRejected` with reason ``arbiter-deferred``).

Under the ``"deadline"`` policy the arbiter also runs a periodic
rebalance pass: queries whose what-if ``T_remain`` exceeds their
remaining slack get cores *granted*, and if the cluster is full the
arbiter *revokes* cores from the least-important over-baseline query —
the revocation is a Section 4.4 end-signal task removal on the victim,
whose stage is then pinned against immediate re-tuning.

Determinism: decisions depend only on virtual time, registered entries
(iterated in query-id order), and counters — never on wall clock or
unseeded randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..elastic.tuning import TuningKind, TuningRequest
from ..errors import TuningRejected
from .policies import fair_share_budget, grantable_units

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution
    from .session import WorkloadManager

#: Tenant label for queries submitted outside any session.
ANONYMOUS = "(anonymous)"


@dataclass
class Bid:
    """One arbitrated tuning request (kept in ``ResourceArbiter.log``)."""

    time: float
    query_id: int
    tenant: str
    stage: int
    kind: str
    current: int
    requested: int
    granted: int
    decision: str  # "grant" | "trim" | "defer" | "release"
    free_cores: int
    predicted_seconds: float | None = None


@dataclass
class ArbiterEntry:
    """Arbiter-side metadata for one registered (session) query."""

    execution: "QueryExecution"
    tenant: str
    priority: float
    deadline_at: float | None
    #: Stage id -> stage DOP at registration; anything above this is
    #: revocable ("extra") under rebalancing.
    baseline: dict[int, int] = field(default_factory=dict)
    revoked: int = 0
    #: Memory grant at registration (None -> engine-config budget).
    memory_bytes: int | None = None
    #: Registration-time values, restored when the last folded consumer
    #: detaches (DESIGN.md §14: shared executions are arbitrated at the
    #: effective priority/deadline of their live consumers).
    base_priority: float = 0.0
    base_deadline_at: float | None = None
    #: consumer query id -> (priority, deadline_at) for every live
    #: consumer folded onto this (shared) execution.
    folds: dict[int, tuple] = field(default_factory=dict)


class ResourceArbiter:
    def __init__(self, manager: "WorkloadManager"):
        self.manager = manager
        self.engine = manager.engine
        self.kernel = manager.engine.kernel
        self.config = manager.config
        self.cluster = manager.engine.cluster
        self.entries: dict[int, ArbiterEntry] = {}
        self._elastic: dict[int, object] = {}
        self.grants = 0
        self.trims = 0
        self.deferrals = 0
        self.revocations = 0
        self.log: list[Bid] = []
        #: Re-entrancy flag: the arbiter's own grant/revoke applications
        #: must not be re-arbitrated.
        self._bypass = False
        self._tick_running = False

    @property
    def capacity(self) -> int:
        """Core inventory of the *schedulable* fleet — tracks membership
        (a draining or departed node's cores stop being grantable; a
        joined node's cores become grantable immediately)."""
        return self.cluster.schedulable_cores()

    # -- registration -------------------------------------------------------
    def register(
        self,
        execution: "QueryExecution",
        tenant: str,
        priority: float = 0.0,
        deadline_at: float | None = None,
        memory_bytes: int | None = None,
    ) -> None:
        entry = ArbiterEntry(
            execution=execution,
            tenant=tenant,
            priority=priority,
            deadline_at=deadline_at,
            baseline={
                sid: stage.stage_dop
                for sid, stage in execution.stages.items()
            },
            memory_bytes=memory_bytes,
            base_priority=priority,
            base_deadline_at=deadline_at,
        )
        if memory_bytes is not None:
            # The grant is the budget: operators that outgrow it spill
            # (or fail, with MemoryConfig.spill_enabled=False).
            execution.memory.set_budget(memory_bytes)
        self.entries[execution.id] = entry
        execution.on_done(lambda _exec: self._unregister(_exec.id))
        if self.config.arbitration == "deadline":
            self._ensure_tick()

    def _unregister(self, query_id: int) -> None:
        self.entries.pop(query_id, None)
        self._elastic.pop(query_id, None)

    # -- shared-execution adoption (DESIGN.md §14) --------------------------
    def fold_consumer(
        self,
        query_id: int,
        consumer_id: int,
        priority: float = 0.0,
        deadline_at: float | None = None,
    ) -> None:
        """Account one folded consumer against the shared execution
        ``query_id``: the entry adopts the *highest* priority and the
        *tightest* deadline across its live consumers, so revocation
        victim selection and deadline rebalancing treat the shared run
        as its most important rider demands."""
        entry = self.entries.get(query_id)
        if entry is None:
            return
        entry.folds[consumer_id] = (priority, deadline_at)
        self._recompute_shared(entry)

    def unfold_consumer(self, query_id: int, consumer_id: int) -> None:
        """A consumer detached (cancelled): drop its priority/deadline
        claim and recompute the shared execution's effective values."""
        entry = self.entries.get(query_id)
        if entry is None:
            return
        entry.folds.pop(consumer_id, None)
        self._recompute_shared(entry)

    def _recompute_shared(self, entry: ArbiterEntry) -> None:
        if entry.folds:
            entry.priority = max(p for p, _d in entry.folds.values())
            deadlines = [d for _p, d in entry.folds.values() if d is not None]
            entry.deadline_at = min(deadlines) if deadlines else None
        else:
            entry.priority = entry.base_priority
            entry.deadline_at = entry.base_deadline_at
        if entry.deadline_at is not None and self.config.arbitration == "deadline":
            self._ensure_tick()

    def attach_elastic(self, query_id: int, elastic) -> None:
        """Called by :class:`ElasticQuery` so rebalancing can reach the
        query's what-if service, filter, and tuner."""
        self._elastic[query_id] = elastic

    # -- usage accounting (dynamic, from live structures) -------------------
    def query_cores(self, execution: "QueryExecution") -> int:
        """Cores a query currently occupies: one per active driver slot."""
        if execution.finished:
            return 0
        total = 0
        for sid in sorted(execution.stages):
            stage = execution.stages[sid]
            if stage.finished:
                continue
            for task in stage.active_tasks:
                total += max(1, task.driver_count())
        return total

    def cluster_usage(self) -> int:
        coordinator = self.engine.coordinator
        return sum(
            self.query_cores(q)
            for qid, q in sorted(coordinator.queries.items())
            if not q.finished
        )

    def tenant_of(self, query_id: int) -> str:
        entry = self.entries.get(query_id)
        return entry.tenant if entry is not None else ANONYMOUS

    def tenant_usage(self, tenant: str) -> int:
        coordinator = self.engine.coordinator
        return sum(
            self.query_cores(q)
            for qid, q in sorted(coordinator.queries.items())
            if not q.finished and self.tenant_of(qid) == tenant
        )

    def active_tenants(self) -> list[str]:
        coordinator = self.engine.coordinator
        names = {
            self.tenant_of(qid)
            for qid, q in coordinator.queries.items()
            if not q.finished
        }
        return sorted(names)

    # -- bidding ------------------------------------------------------------
    def arbitrate(
        self, query: "QueryExecution", request: TuningRequest, whatif
    ) -> TuningRequest:
        """Grant, trim, or defer one filtered tuning request.

        Returns the (possibly trimmed) request to apply; raises
        :class:`TuningRejected` (reason ``arbiter-deferred``) when no
        cores can be granted now."""
        if self._bypass:
            return request
        stage = query.stage(request.stage)
        if request.kind is TuningKind.TASK_DOP:
            current = stage.task_dop
            per_unit = max(1, len(stage.active_tasks))
        else:
            current = stage.stage_dop
            per_unit = max(1, stage.task_dop)
        delta_units = request.target - current
        if delta_units <= 0:
            # Releases always pass; the freed cores show up in usage.
            self._record(query, request, current, request.target, "release", 0)
            return request

        free = self.capacity - self.cluster_usage()
        tenant = self.tenant_of(query.id)
        headroom: int | None = None
        if self.config.arbitration == "fair_share":
            budget = fair_share_budget(self.capacity, len(self.active_tenants()))
            headroom = budget - self.tenant_usage(tenant)
        elif self.config.arbitration == "strict_priority":
            # Cores already held by strictly higher-priority tenants are
            # untouchable; lower-priority usage is (only) reclaimable via
            # rebalance revocation, not at bid time.
            free = min(free, self.capacity - self._usage_at_or_above(query.id))
        granted_units = grantable_units(delta_units, per_unit, free, headroom)
        prediction = None
        if granted_units > 0 and request.kind is not TuningKind.TASK_DOP:
            prediction = whatif.predict(request.stage, current + granted_units)

        if granted_units <= 0:
            self.deferrals += 1
            self._record(query, request, current, current, "defer", free)
            raise TuningRejected(
                f"arbiter deferred: {delta_units * per_unit} cores requested, "
                f"{max(0, free)} free"
                + (f", tenant headroom {headroom}" if headroom is not None else ""),
                reason="arbiter-deferred",
            )
        target = current + granted_units
        if target >= request.target:
            self.grants += 1
            self._record(
                query, request, current, request.target, "grant", free, prediction
            )
            return request
        self.trims += 1
        self._record(query, request, current, target, "trim", free, prediction)
        return TuningRequest(request.stage, request.kind, target)

    def resize_memory(self, query_id: int, memory_bytes: int | None) -> None:
        """Runtime memory re-grant — the budget's second elastic knob.

        A trimmed grant makes the query's operators spill on their next
        growth; an enlarged one stops further spilling (state already on
        disk stays there and is merged partition-at-a-time — correctness
        over un-spilling).  ``None`` lifts the budget entirely.
        """
        entry = self.entries.get(query_id)
        if entry is None or entry.execution.finished:
            raise TuningRejected(
                f"resize_memory: query {query_id} is not registered or "
                f"already finished",
                reason="filtered",
            )
        memory = entry.execution.memory
        old = memory.budget_bytes
        memory.set_budget(memory_bytes)
        shrinking = (
            memory_bytes is not None and (old is None or memory_bytes < old)
        )
        if shrinking:
            self.trims += 1
        else:
            self.grants += 1
        self.log.append(
            Bid(
                time=self.kernel.now,
                query_id=query_id,
                tenant=entry.tenant,
                stage=-1,
                kind="memory",
                current=old if old is not None else -1,
                requested=memory_bytes if memory_bytes is not None else -1,
                granted=memory_bytes if memory_bytes is not None else -1,
                decision="trim" if shrinking else "grant",
                free_cores=max(0, self.capacity - self.cluster_usage()),
            )
        )
        entry.memory_bytes = memory_bytes

    def _usage_at_or_above(self, query_id: int) -> int:
        """Cores held by queries with strictly higher priority than
        ``query_id`` (anonymous queries have priority 0)."""
        mine = self.entries[query_id].priority if query_id in self.entries else 0.0
        coordinator = self.engine.coordinator
        total = 0
        for qid, q in sorted(coordinator.queries.items()):
            if q.finished or qid == query_id:
                continue
            theirs = self.entries[qid].priority if qid in self.entries else 0.0
            if theirs > mine:
                total += self.query_cores(q)
        return total

    def _record(
        self, query, request, current, granted, decision, free, prediction=None
    ) -> None:
        bid = Bid(
            time=self.kernel.now,
            query_id=query.id,
            tenant=self.tenant_of(query.id),
            stage=request.stage,
            kind=request.kind.name.lower(),
            current=current,
            requested=request.target,
            granted=granted,
            decision=decision,
            free_cores=max(0, free),
            predicted_seconds=(
                prediction.t_predicted if prediction is not None else None
            ),
        )
        self.log.append(bid)
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "workload", f"bid:{decision}",
                parent=tracer.root_for_query(query.id), node="coordinator",
                query_id=query.id, stage=request.stage, tenant=bid.tenant,
                requested=request.target, granted=granted,
            )

    # -- deadline-aware rebalancing -----------------------------------------
    def _ensure_tick(self) -> None:
        if not self._tick_running:
            self._tick_running = True
            self.kernel.schedule(self.config.arbiter_period, self._tick)

    def _tick(self) -> None:
        live = [e for e in self._sorted_entries() if not e.execution.finished]
        if not live:
            # Self-terminate so drained workloads do not keep the event
            # loop alive; registration restarts the tick.
            self._tick_running = False
            return
        self._rebalance(live)
        self.kernel.schedule(self.config.arbiter_period, self._tick)

    def _sorted_entries(self) -> list[ArbiterEntry]:
        return [self.entries[qid] for qid in sorted(self.entries)]

    def _rebalance(self, live: list[ArbiterEntry]) -> None:
        for entry in live:
            if entry.deadline_at is None:
                continue
            elastic = self._elastic.get(entry.execution.id)
            if elastic is None:
                continue
            plan = self._endangered_plan(entry, elastic)
            if plan is None:
                continue
            stage_id, current, target = plan
            per_unit = max(1, entry.execution.stage(stage_id).task_dop)
            need = (target - current) * per_unit
            free = self.capacity - self.cluster_usage()
            if free < need and self.config.revocation_enabled:
                self._revoke(need - free, exempt=entry.execution.id)
                free = self.capacity - self.cluster_usage()
            granted_units = grantable_units(target - current, per_unit, free, None)
            if granted_units <= 0:
                continue
            self._apply_grant(entry, elastic, stage_id, current + granted_units)

    def _endangered_plan(self, entry, elastic):
        """Returns (stage, current_dop, desired_dop) when the query's
        predicted remaining time exceeds its remaining slack."""
        query = entry.execution
        slack = entry.deadline_at - self.kernel.now
        for unit in elastic.units():
            stage = query.stages.get(unit.knob_stage)
            if stage is None or stage.finished:
                continue
            t_remain = elastic.whatif.remaining_time(unit.knob_stage)
            if t_remain is None:
                continue
            if slack <= 0:
                # Deadline already blown: push as hard as the tuner allows.
                ratio = 2.0
            else:
                ratio = t_remain / slack
                if ratio <= 1.05:  # on track (5% guard band)
                    continue
            current = max(1, stage.stage_dop)
            desired = min(
                elastic.tuner.max_stage_dop, math.ceil(current * ratio)
            )
            if desired > current:
                return (unit.knob_stage, current, desired)
        return None

    def _revoke(self, cores_needed: int, exempt: int) -> None:
        """Claw back up to ``cores_needed`` cores from over-baseline
        queries (lowest priority first, most-inflated first), via
        Section 4.4 end-signal task removal."""
        victims = []
        for qid in sorted(self.entries):
            entry = self.entries[qid]
            if qid == exempt or entry.execution.finished:
                continue
            if entry.deadline_at is not None and qid != exempt:
                endangered = False
                elastic = self._elastic.get(qid)
                if elastic is not None:
                    endangered = self._endangered_plan(entry, elastic) is not None
                if endangered:
                    continue
            for sid in sorted(entry.execution.stages):
                stage = entry.execution.stages[sid]
                base = entry.baseline.get(sid, 1)
                if not stage.finished and stage.stage_dop > base:
                    extra = (stage.stage_dop - base) * max(1, stage.task_dop)
                    victims.append((entry.priority, -extra, qid, sid, base))
        victims.sort()
        reclaimed = 0
        for _prio, _neg_extra, qid, sid, base in victims:
            if reclaimed >= cores_needed:
                break
            entry = self.entries[qid]
            elastic = self._elastic.get(qid)
            if elastic is None:
                continue
            if elastic.filter.pins.get(sid, 0.0) > self.kernel.now:
                # Already revoked within the pin window; the end-signal
                # removal is still draining, so the stage DOP has not
                # caught up yet — do not double-revoke.
                continue
            stage = entry.execution.stages[sid]
            take_units = min(
                stage.stage_dop - base,
                max(1, math.ceil((cores_needed - reclaimed)
                                 / max(1, stage.task_dop))),
            )
            target = stage.stage_dop - take_units
            self._bypass = True
            try:
                elastic.rp(sid, target)
            except TuningRejected:
                continue
            finally:
                self._bypass = False
            self.revocations += 1
            reclaimed += take_units * max(1, stage.task_dop)
            entry.revoked += take_units
            elastic.filter.pin(
                sid, self.kernel.now + self.config.revocation_pin_seconds
            )
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.instant(
                    "workload", f"revoke S{sid} -{take_units}",
                    parent=tracer.root_for_query(qid), node="coordinator",
                    query_id=qid, stage=sid, tenant=entry.tenant,
                    cores=take_units * max(1, stage.task_dop),
                )

    def _apply_grant(self, entry, elastic, stage_id: int, target: int) -> None:
        self._bypass = True
        try:
            elastic.ap(stage_id, target)
        except TuningRejected:
            return
        finally:
            self._bypass = False
        self.grants += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "workload", f"deadline-grant S{stage_id} ->{target}",
                parent=tracer.root_for_query(entry.execution.id),
                node="coordinator", query_id=entry.execution.id,
                stage=stage_id, tenant=entry.tenant, target=target,
            )

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        live = [e for e in self._sorted_entries() if not e.execution.finished]
        return {
            "capacity_cores": self.capacity,
            "usage_cores": self.cluster_usage(),
            "grants": self.grants,
            "trims": self.trims,
            "deferrals": self.deferrals,
            "revocations": self.revocations,
            "memory_granted_bytes": sum(
                e.memory_bytes for e in live if e.memory_bytes is not None
            ),
            "memory_tracked_bytes": sum(
                e.execution.memory.total_bytes for e in live
            ),
            "memory_spilled_bytes": sum(
                e.execution.memory.spilled_bytes for e in live
            ),
        }
