"""Workload drivers: arrival processes, the multi-tenant runner, and the
per-tenant report.

A :class:`Workload` binds tenants (each with a query mix, an arrival
process, a priority, and optionally a deadline) to one engine and runs
them genuinely interleaved in virtual time.  Arrivals are deterministic
given (seed, trace): the Poisson process draws every inter-arrival gap
up front from a per-tenant ``random.Random`` stream, so two runs with
the same seed produce byte-identical reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .policies import jain_fairness
from .session import QueryRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryOptions
    from ..engine import AccordionEngine
    from ..handle import QueryHandle


# -- arrival processes ------------------------------------------------------
@dataclass(frozen=True)
class ClosedLoop:
    """Closed loop: each completion triggers the next submission after
    ``think_time`` virtual seconds; ``count`` queries total."""

    count: int
    think_time: float = 0.0
    start: float = 0.0


@dataclass(frozen=True)
class PoissonArrivals:
    """Open arrivals: ``count`` submissions with Exp(rate) gaps."""

    rate: float  # arrivals per virtual second
    count: int
    start: float = 0.0


@dataclass(frozen=True)
class TraceArrivals:
    """Scripted arrivals at explicit virtual times."""

    times: tuple[float, ...]


@dataclass
class TenantSpec:
    name: str
    queries: list
    arrival: object
    priority: float = 0.0
    deadline: float | None = None
    options: "QueryOptions | None" = None


# -- report -----------------------------------------------------------------
def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile on pre-sorted data (deterministic)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


@dataclass
class TenantStats:
    tenant: str
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    failed: int = 0
    deadline_total: int = 0
    deadline_met: int = 0
    latencies: list[float] = field(default_factory=list)
    queue_waits: list[float] = field(default_factory=list)
    service_seconds: float = 0.0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def p50_latency(self) -> float:
        return _percentile(sorted(self.latencies), 0.50)

    @property
    def p95_latency(self) -> float:
        return _percentile(sorted(self.latencies), 0.95)

    @property
    def p99_latency(self) -> float:
        return _percentile(sorted(self.latencies), 0.99)

    @property
    def mean_queue_wait(self) -> float:
        if not self.queue_waits:
            return 0.0
        return sum(self.queue_waits) / len(self.queue_waits)


@dataclass
class WorkloadReport:
    """Per-tenant latency/throughput/queue/fairness summary of one run."""

    horizon: float
    tenants: dict[str, TenantStats]
    fairness: float
    admission: dict
    arbiter: dict
    violations: list[str]
    #: Fleet/cost summary for the run window: membership churn counters,
    #: node-seconds billed, and dollars (node-seconds x rate, with the
    #: spot discount).  Empty dict for engines without membership churn
    #: history is still rendered — byte-identical per seed either way.
    cluster: dict = field(default_factory=dict)
    #: Sharing-layer deltas for the run window (folds, cache hits/misses,
    #: pages saved, carriers, unshared) — empty when sharing is disabled.
    sharing: dict = field(default_factory=dict)
    #: Prediction-layer deltas for the run window (runs recorded,
    #: predictions served, pre-grants, DRR placements, reprovisions,
    #: SLO rejections) — empty when prediction is disabled.
    predict: dict = field(default_factory=dict)

    def throughput(self, tenant: str) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.tenants[tenant].completed / self.horizon

    @property
    def effective_qps(self) -> float:
        """Completed queries per virtual second across all tenants —
        the headline number query folding and the result cache raise."""
        if self.horizon <= 0:
            return 0.0
        return sum(s.completed for s in self.tenants.values()) / self.horizon

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "effective_qps": self.effective_qps,
            "fairness": self.fairness,
            "admission": dict(self.admission),
            "arbiter": dict(self.arbiter),
            "cluster": dict(self.cluster),
            "sharing": dict(self.sharing),
            "predict": dict(self.predict),
            "violations": list(self.violations),
            "tenants": {
                name: {
                    "submitted": s.submitted,
                    "completed": s.completed,
                    "rejected": s.rejected,
                    "cancelled": s.cancelled,
                    "failed": s.failed,
                    "mean_latency": s.mean_latency,
                    "p50_latency": s.p50_latency,
                    "p95_latency": s.p95_latency,
                    "p99_latency": s.p99_latency,
                    "mean_queue_wait": s.mean_queue_wait,
                    "throughput": self.throughput(name),
                    "deadline_met": s.deadline_met,
                    "deadline_total": s.deadline_total,
                    "service_seconds": s.service_seconds,
                }
                for name, s in sorted(self.tenants.items())
            },
        }

    def render(self) -> str:
        from ..metrics.report import render_table

        rows = []
        for name in sorted(self.tenants):
            s = self.tenants[name]
            deadline = (
                f"{s.deadline_met}/{s.deadline_total}"
                if s.deadline_total else "-"
            )
            rows.append((
                name, s.submitted, s.completed, s.rejected + s.cancelled,
                f"{s.mean_queue_wait:.3f}", f"{s.mean_latency:.3f}",
                f"{s.p95_latency:.3f}", f"{self.throughput(name):.4f}",
                deadline,
            ))
        table = render_table(
            ["tenant", "sub", "done", "rej", "queue_s", "lat_s",
             "p95_s", "qps", "deadline"],
            rows,
        )
        lines = [
            table,
            f"horizon: {self.horizon:.3f} virtual seconds",
            f"fairness (Jain, service time): {self.fairness:.4f}",
            f"admission: admitted={self.admission.get('admitted', 0)} "
            f"rejected={self.admission.get('rejected', 0)} "
            f"max_queue_depth={self.admission.get('max_queue_depth', 0)} "
            f"violations={len(self.violations)}",
            f"arbiter: grants={self.arbiter.get('grants', 0)} "
            f"trims={self.arbiter.get('trims', 0)} "
            f"deferrals={self.arbiter.get('deferrals', 0)} "
            f"revocations={self.arbiter.get('revocations', 0)}",
        ]
        if self.cluster:
            c = self.cluster
            lines.append(
                f"cluster: nodes={c.get('nodes_final', 0)} "
                f"(peak {c.get('nodes_peak', 0)}) "
                f"joins={c.get('joins', 0)} "
                f"drains={c.get('drains_clean', 0)}+"
                f"{c.get('drains_escalated', 0)}esc "
                f"preemptions={c.get('preemptions', 0)} "
                f"node_seconds={c.get('node_seconds', 0.0):.3f} "
                f"cost=${c.get('cost_dollars', 0.0):.3f}"
            )
        if self.sharing:
            s = self.sharing
            lines.append(
                f"sharing: folds={s.get('folds', 0)} "
                f"cache_hits={s.get('cache_hits', 0)} "
                f"cache_misses={s.get('cache_misses', 0)} "
                f"pages_saved={s.get('pages_saved', 0)} "
                f"carriers={s.get('carriers', 0)} "
                f"effective_qps={self.effective_qps:.4f}"
            )
        if self.predict:
            d = self.predict
            lines.append(
                f"predict: recorded={d.get('recorded', 0)} "
                f"served={d.get('predictions', 0)} "
                f"pregrants={d.get('pregrants', 0)} "
                f"drr={d.get('drr_placements', 0)} "
                f"reprovisions={d.get('reprovisions', 0)} "
                f"slo_rejections={d.get('slo_rejections', 0)}"
            )
        return "\n".join(lines)


# -- the runner -------------------------------------------------------------
class Workload:
    """Drive a multi-tenant query mix against one engine.

    >>> workload = Workload(engine, seed=7)
    >>> workload.add_tenant("etl", [q1], PoissonArrivals(rate=0.5, count=10))
    >>> workload.add_tenant("bi", [q3, q5], ClosedLoop(count=5), priority=1)
    >>> report = workload.run()
    """

    def __init__(self, engine: "AccordionEngine", seed: int = 0):
        self.engine = engine
        self.kernel = engine.kernel
        self.seed = seed
        self.specs: list[TenantSpec] = []
        self.handles: list["QueryHandle"] = []
        self._expected = 0
        self._submitted = 0
        self._done = 0

    def add_tenant(
        self,
        name: str,
        queries: list,
        arrival,
        priority: float = 0.0,
        deadline: float | None = None,
        options: "QueryOptions | None" = None,
    ) -> None:
        """Register a tenant: a query mix (cycled round-robin), an arrival
        process, and admission/arbitration attributes."""
        self.specs.append(
            TenantSpec(name, list(queries), arrival, priority, deadline, options)
        )

    # ------------------------------------------------------------------
    def run(self, max_virtual_seconds: float = 1e6) -> WorkloadReport:
        """Run every tenant to completion (or the horizon) and report.

        Deterministic: with the same engine config, seed, and tenant
        specs, two runs produce byte-identical ``render()`` output."""
        start = self.kernel.now
        manager = self.engine.workload
        baseline_records = len(manager.records)
        sharing_baseline = (
            self.engine.sharing.snapshot()
            if self.engine.sharing is not None else None
        )
        predict_baseline = (
            self.engine.predict_service.stats()
            if self.engine.predict_service is not None else None
        )
        for index, spec in enumerate(self.specs):
            session = manager.session(
                spec.name, priority=spec.priority, deadline=spec.deadline
            )
            self._launch(spec, session, index)
        deadline = start + max_virtual_seconds
        self.kernel.run(
            until=deadline,
            stop_when=lambda: (
                self._submitted >= self._expected and self._done >= self._expected
            ),
        )
        horizon = self.kernel.now - start
        if manager.autoscaler is not None:
            # Let the fleet settle (idle elastic capacity drains away) so
            # the report's node-seconds/cost cover the whole provisioned
            # window, not a snapshot taken mid-drain.  The makespan above
            # deliberately excludes this billing tail: queries are done.
            self.kernel.run(
                until=deadline, stop_when=lambda: manager.autoscaler.settled
            )
        sharing = {}
        if sharing_baseline is not None:
            current = self.engine.sharing.snapshot()
            sharing = {
                k: current[k] - sharing_baseline[k] for k in sorted(current)
            }
        predict = {}
        if predict_baseline is not None:
            current = self.engine.predict_service.stats()
            predict = {
                k: current[k] - predict_baseline[k] for k in sorted(current)
            }
        return self._report(
            manager.records[baseline_records:], horizon, manager, start,
            sharing=sharing, predict=predict,
        )

    # ------------------------------------------------------------------
    def _launch(self, spec: TenantSpec, session, index: int) -> None:
        arrival = spec.arrival
        if isinstance(arrival, ClosedLoop):
            self._expected += arrival.count
            if arrival.count > 0:
                self.kernel.schedule_at(
                    self.kernel.now + max(0.0, arrival.start),
                    lambda: self._closed_loop_next(spec, session, 0),
                )
        elif isinstance(arrival, PoissonArrivals):
            self._expected += arrival.count
            rng = random.Random(self.seed * 1_000_003 + index)
            t = self.kernel.now + arrival.start
            for i in range(arrival.count):
                t += rng.expovariate(arrival.rate)
                self.kernel.schedule_at(
                    t, lambda s=spec, sess=session, i=i: self._submit(s, sess, i)
                )
        elif isinstance(arrival, TraceArrivals):
            self._expected += len(arrival.times)
            for i, t in enumerate(arrival.times):
                self.kernel.schedule_at(
                    self.kernel.now + t,
                    lambda s=spec, sess=session, i=i: self._submit(s, sess, i),
                )
        else:
            raise TypeError(f"unknown arrival process: {arrival!r}")

    def _closed_loop_next(self, spec: TenantSpec, session, issued: int) -> None:
        arrival: ClosedLoop = spec.arrival
        if issued >= arrival.count:
            return
        handle = self._submit(spec, session, issued)
        if issued + 1 < arrival.count:
            handle.on_done(
                lambda _h: self.kernel.schedule(
                    arrival.think_time,
                    lambda: self._closed_loop_next(spec, session, issued + 1),
                )
            )

    def _submit(self, spec: TenantSpec, session, index: int) -> "QueryHandle":
        item = spec.queries[index % len(spec.queries)]
        if isinstance(item, tuple):
            sql, options = item
        else:
            sql, options = item, spec.options
        handle = session.submit(sql, options=options)
        self._submitted += 1
        self.handles.append(handle)
        handle.on_done(self._one_done)
        return handle

    def _one_done(self, _handle) -> None:
        self._done += 1

    # ------------------------------------------------------------------
    def _report(
        self, records: list[QueryRecord], horizon: float, manager,
        start: float = 0.0, sharing: dict | None = None,
        predict: dict | None = None,
    ) -> WorkloadReport:
        tenants: dict[str, TenantStats] = {}
        for spec in self.specs:
            tenants.setdefault(spec.name, TenantStats(tenant=spec.name))
        for record in records:
            stats = tenants.setdefault(
                record.tenant, TenantStats(tenant=record.tenant)
            )
            stats.submitted += 1
            if record.state == "finished":
                stats.completed += 1
                stats.latencies.append(record.latency)
                if record.queue_seconds is not None:
                    stats.queue_waits.append(record.queue_seconds)
                if record.admitted_at is not None:
                    stats.service_seconds += record.finished_at - record.admitted_at
            elif record.state == "rejected":
                stats.rejected += 1
            elif record.state == "cancelled":
                stats.cancelled += 1
            elif record.state == "failed":
                stats.failed += 1
            if record.deadline_at is not None:
                stats.deadline_total += 1
                if record.deadline_met:
                    stats.deadline_met += 1
        fairness = jain_fairness(
            [tenants[name].service_seconds for name in sorted(tenants)]
        )
        membership = self.engine.membership
        stats = membership.stats()
        cluster = {
            "joins": stats["joins"],
            "drains_clean": stats["drains_clean"],
            "drains_escalated": stats["drains_escalated"],
            "preemptions": stats["preemptions"],
            "nodes_final": stats["nodes_schedulable"],
            "nodes_peak": stats["nodes_peak"],
            "node_seconds": membership.node_seconds(),
            "cost_dollars": membership.cost_between(start),
        }
        return WorkloadReport(
            horizon=horizon,
            tenants=tenants,
            fairness=fairness,
            admission=manager.admission.stats(),
            arbiter=manager.arbiter.stats(),
            violations=list(manager.admission.violations),
            cluster=cluster,
            sharing=dict(sharing) if sharing else {},
            predict=dict(predict) if predict else {},
        )
