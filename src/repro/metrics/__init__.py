"""Metrics: time series, throughput tracking, report rendering."""

from .report import (
    render_curve_points,
    render_fault_report,
    render_series,
    render_table,
)
from .throughput import Marker, StageSeries, ThroughputTracker
from .timeseries import TimeSeries

__all__ = [
    "Marker",
    "StageSeries",
    "ThroughputTracker",
    "TimeSeries",
    "render_curve_points",
    "render_fault_report",
    "render_series",
    "render_table",
]
