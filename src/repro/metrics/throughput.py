"""Per-stage throughput tracking (the curves of Figures 23-30).

Samples each stage's cumulative output rows on a fixed virtual-time period
while the query runs, and records event markers:

* ``tuning`` markers — the red dashed lines (a DOP adjustment request),
* ``build_ready`` markers — the yellow dashed lines (hash table rebuilt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..sim import SimKernel
from .timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.coordinator import QueryExecution


@dataclass
class Marker:
    time: float
    kind: str  # "tuning" | "build_ready" | "rejected" | "constraint"
    stage: int
    label: str = ""


@dataclass
class StageSeries:
    rows: TimeSeries
    received: TimeSeries
    dop: TimeSeries
    task_dop: TimeSeries


class ThroughputTracker:
    def __init__(self, kernel: SimKernel, query: "QueryExecution", period: float = 1.0):
        self.kernel = kernel
        self.query = query
        self.period = period
        self.stages: dict[int, StageSeries] = {}
        self.markers: list[Marker] = []
        self._stopped = False
        for stage_id in query.stages:
            self.stages[stage_id] = StageSeries(
                rows=TimeSeries(f"stage{stage_id}.rows"),
                received=TimeSeries(f"stage{stage_id}.received"),
                dop=TimeSeries(f"stage{stage_id}.dop"),
                task_dop=TimeSeries(f"stage{stage_id}.task_dop"),
            )
        self._sample()

    def _sample(self) -> None:
        if self._stopped:
            return
        now = self.kernel.now
        for stage_id, series in self.stages.items():
            stage = self.query.stages[stage_id]
            series.rows.append(now, stage.rows_out())
            series.received.append(now, stage.rows_received())
            series.dop.append(now, stage.stage_dop)
            series.task_dop.append(now, stage.task_dop)
        if self.query.finished:
            self._stopped = True
            return
        self.kernel.schedule(self.period, self._sample)

    def stop(self) -> None:
        self._stopped = True

    # -- markers ----------------------------------------------------------
    def mark(self, kind: str, stage: int, label: str = "") -> None:
        self.markers.append(Marker(self.kernel.now, kind, stage, label))

    def throughput(self, stage_id: int) -> TimeSeries:
        """Output rows/second series for one stage."""
        return self.stages[stage_id].rows.rates()

    def processing_rate(self, stage_id: int) -> TimeSeries:
        """Input rows/second series — the paper's per-stage throughput
        curves for stages whose output is deferred (e.g. join + partial
        aggregation stages).  Scan stages have no exchange input; their
        output rate is the processing rate."""
        stage = self.query.stages[stage_id]
        if stage.fragment.is_source:
            return self.stages[stage_id].rows.rates()
        return self.stages[stage_id].received.rates()

    def markers_of(self, kind: str) -> list[Marker]:
        return [m for m in self.markers if m.kind == kind]
