"""Plain-text rendering of experiment results (tables and curve series).

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Sequence

from .timeseries import TimeSeries


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                cell = f"{cell:.2f}"
            columns[i].append(str(cell))
    widths = [max(len(v) for v in col) for col in columns]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in range(1, len(columns[0])):
        lines.append(
            " | ".join(columns[i][r].ljust(widths[i]) for i in range(len(columns)))
        )
    return "\n".join(lines)


def render_fault_report(target) -> str:
    """Failure/retry counters for one query (pass its ``QueryHandle``).

    Combines the recovery manager's counters, the RPC tracker's
    retry/failure totals (engine-wide plus this query's share), the
    query's own fault-event timeline, and — when faults were injected —
    the injector's recorded timeline.
    """
    from ..handle import QueryHandle

    if not isinstance(target, QueryHandle):
        raise TypeError(
            f"render_fault_report expects a QueryHandle (got {type(target).__name__})"
        )
    engine = target.engine
    execution = target.execution
    recovery = engine.coordinator.recovery
    rpc = engine.coordinator.rpc
    rows = list(recovery.stats().items())
    rows.append(("rpc_requests", rpc.total_requests))
    rows.append(("rpc_retried", rpc.retried_requests))
    rows.append(("rpc_failed", rpc.failed_requests))
    if execution is not None:
        rows.append((f"rpc_requests_q{execution.id}", rpc.requests_for(execution.id)))
    lines = [render_table(["counter", "value"], rows)]
    if execution is not None and execution.fault_events:
        lines.append("")
        lines.append(f"query {execution.id} fault timeline:")
        for entry in execution.fault_events:
            lines.append(
                f"  t={entry['t']:.3f}s  {entry['kind']}: {entry['detail']}"
            )
    injector = getattr(engine, "fault_injector", None)
    if injector is not None and injector.history:
        lines.append("")
        lines.append("injected fault timeline:")
        for entry in injector.history:
            lines.append(
                f"  t={entry['t']:.3f}s  {entry['kind']}: {entry['detail']}"
            )
    return "\n".join(lines)


def render_series(series: TimeSeries, width: int = 60, label: str | None = None) -> str:
    """ASCII sparkline of a time series (throughput curves)."""
    if not series.values:
        return f"{label or series.name}: (empty)"
    peak = max(series.values) or 1.0
    blocks = " .:-=+*#%@"
    chars = []
    for value in series.values[: width]:
        idx = min(len(blocks) - 1, int(value / peak * (len(blocks) - 1)))
        chars.append(blocks[idx])
    head = label or series.name
    return f"{head} (peak={peak:.0f}): |{''.join(chars)}|"


def render_curve_points(
    series: TimeSeries, step: float = 5.0, fmt: str = "{:.0f}"
) -> list[tuple[float, str]]:
    """Downsample a series to roughly one point per ``step`` seconds."""
    out = []
    next_time = series.times[0] if series.times else 0.0
    for t, v in zip(series.times, series.values):
        if t >= next_time:
            out.append((round(t, 2), fmt.format(v)))
            next_time = t + step
    return out
