"""Simple time series over virtual time."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """(time, value) samples, appended in time order."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float | None:
        return self.values[-1] if self.values else None

    def deltas(self) -> "TimeSeries":
        """Per-interval differences (cumulative counter -> rate * dt)."""
        out = TimeSeries(f"{self.name}.delta")
        for i in range(1, len(self.times)):
            out.append(self.times[i], self.values[i] - self.values[i - 1])
        return out

    def rates(self) -> "TimeSeries":
        """Per-interval rates (cumulative counter -> value/sec)."""
        out = TimeSeries(f"{self.name}.rate")
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt <= 0:
                continue
            out.append(self.times[i], (self.values[i] - self.values[i - 1]) / dt)
        return out

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0
