"""Accordion: Intra-Query Runtime Elasticity for cloud-native data analysis.

A full reproduction of the SIGMOD'25 Accordion engine on a discrete-event
simulated cluster.  Entry point: :class:`repro.AccordionEngine`; a
submitted query is driven through its :class:`repro.QueryHandle`, and
multi-tenant workloads go through :meth:`repro.AccordionEngine.session`
and :class:`repro.Workload`.

This module is the library's stable import surface — examples, benchmarks,
and downstream code should import from ``repro`` directly instead of deep
module paths (``tools/api_lint.py`` enforces this in CI).
"""

from .config import (
    BufferConfig,
    ClusterConfig,
    CostModel,
    EngineConfig,
    FaultConfig,
    MemoryConfig,
    NodeSpec,
    ParallelConfig,
    PredictionConfig,
    SharingConfig,
    TraceConfig,
    WorkloadConfig,
    config_fingerprint,
    presto_config,
    prestissimo_config,
)
from .autotune import DopPlanner
from .buffers import OutputMode
from .cluster import (
    ClusterMembership,
    MembershipPlan,
    NodeDrain,
    NodeJoin,
    QueryOptions,
    SpotPreemption,
)
from .data import Catalog, SplitLayout, read_csv, write_csv
from .data.tpch import TPCH_SCHEMAS, TpchGenerator
from .data.tpch.queries import QUERIES as TPCH_QUERIES, STANDALONE_BENCHMARK
from .engine import AccordionEngine
from .errors import (
    AccordionError,
    ExecutionError,
    MemoryBudgetExceededError,
    QueryCancelledError,
    QueryFailedError,
    QueryRejectedError,
    SqlError,
    TuningRejected,
    WorkerCrashedError,
)
from .experiments import (
    EVAL_SCALE,
    EVAL_SEED,
    eval_config,
    eval_engine,
    shuffle_experiment_engine,
    standalone_engine,
)
from .faults import FaultInjector, FaultPlan, NodeCrash, RpcOutage, RpcStorm, TaskCrash
from .handle import QueryHandle, QueryResult
from .metrics import render_curve_points, render_series, render_table
from .obs import MetricsRegistry, ProfileReport, QueryTrace, Tracer
from .predict import Prediction, StageDemand
from .script import ScriptResult, run_script
from .sharing import SharingInfo
from .workload import (
    Autoscaler,
    ClosedLoop,
    PoissonArrivals,
    Session,
    TraceArrivals,
    Workload,
    WorkloadReport,
)

__version__ = "1.5.0"

__all__ = [
    "AccordionEngine",
    "AccordionError",
    "Autoscaler",
    "BufferConfig",
    "Catalog",
    "ClosedLoop",
    "ClusterConfig",
    "ClusterMembership",
    "CostModel",
    "DopPlanner",
    "EVAL_SCALE",
    "EVAL_SEED",
    "EngineConfig",
    "ExecutionError",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "MembershipPlan",
    "MemoryBudgetExceededError",
    "MemoryConfig",
    "MetricsRegistry",
    "NodeCrash",
    "NodeDrain",
    "NodeJoin",
    "NodeSpec",
    "OutputMode",
    "ParallelConfig",
    "PoissonArrivals",
    "Prediction",
    "PredictionConfig",
    "ProfileReport",
    "QueryCancelledError",
    "QueryFailedError",
    "QueryHandle",
    "QueryOptions",
    "QueryRejectedError",
    "QueryResult",
    "QueryTrace",
    "RpcOutage",
    "RpcStorm",
    "STANDALONE_BENCHMARK",
    "ScriptResult",
    "Session",
    "SharingConfig",
    "SharingInfo",
    "SplitLayout",
    "SpotPreemption",
    "SqlError",
    "StageDemand",
    "TPCH_QUERIES",
    "TPCH_SCHEMAS",
    "TaskCrash",
    "TpchGenerator",
    "TraceArrivals",
    "TraceConfig",
    "Tracer",
    "TuningRejected",
    "WorkerCrashedError",
    "Workload",
    "WorkloadConfig",
    "WorkloadReport",
    "config_fingerprint",
    "eval_config",
    "eval_engine",
    "presto_config",
    "prestissimo_config",
    "read_csv",
    "render_curve_points",
    "render_series",
    "render_table",
    "run_script",
    "shuffle_experiment_engine",
    "standalone_engine",
    "write_csv",
]
