"""Accordion: Intra-Query Runtime Elasticity for cloud-native data analysis.

A full reproduction of the SIGMOD'25 Accordion engine on a discrete-event
simulated cluster.  Entry point: :class:`repro.AccordionEngine`.
"""

from .cluster import QueryOptions
from .config import (
    BufferConfig,
    ClusterConfig,
    CostModel,
    EngineConfig,
    NodeSpec,
    presto_config,
    prestissimo_config,
)
from .config import FaultConfig
from .engine import AccordionEngine, QueryResult
from .errors import QueryFailedError
from .faults import FaultInjector, FaultPlan, NodeCrash, RpcOutage, RpcStorm, TaskCrash

__version__ = "1.0.0"

__all__ = [
    "AccordionEngine",
    "BufferConfig",
    "ClusterConfig",
    "CostModel",
    "EngineConfig",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "NodeSpec",
    "QueryFailedError",
    "QueryOptions",
    "QueryResult",
    "RpcOutage",
    "RpcStorm",
    "TaskCrash",
    "presto_config",
    "prestissimo_config",
]
