"""Accordion: Intra-Query Runtime Elasticity for cloud-native data analysis.

A full reproduction of the SIGMOD'25 Accordion engine on a discrete-event
simulated cluster.  Entry point: :class:`repro.AccordionEngine`; a
submitted query is driven through its :class:`repro.QueryHandle`.

This module is the library's stable import surface — examples, benchmarks,
and downstream code should import from ``repro`` directly instead of deep
module paths.
"""

from .config import (
    BufferConfig,
    ClusterConfig,
    CostModel,
    EngineConfig,
    FaultConfig,
    NodeSpec,
    TraceConfig,
    presto_config,
    prestissimo_config,
)
from .cluster import QueryOptions
from .data import Catalog
from .data.tpch.queries import QUERIES as TPCH_QUERIES
from .engine import AccordionEngine
from .errors import (
    AccordionError,
    ExecutionError,
    QueryFailedError,
    SqlError,
    TuningRejected,
)
from .faults import FaultInjector, FaultPlan, NodeCrash, RpcOutage, RpcStorm, TaskCrash
from .handle import QueryHandle, QueryResult
from .obs import MetricsRegistry, ProfileReport, QueryTrace, Tracer

__version__ = "1.1.0"

__all__ = [
    "AccordionEngine",
    "AccordionError",
    "BufferConfig",
    "Catalog",
    "ClusterConfig",
    "CostModel",
    "EngineConfig",
    "ExecutionError",
    "FaultConfig",
    "FaultInjector",
    "FaultPlan",
    "MetricsRegistry",
    "NodeCrash",
    "NodeSpec",
    "ProfileReport",
    "QueryFailedError",
    "QueryHandle",
    "QueryOptions",
    "QueryResult",
    "QueryTrace",
    "RpcOutage",
    "RpcStorm",
    "SqlError",
    "TaskCrash",
    "TPCH_QUERIES",
    "TraceConfig",
    "Tracer",
    "TuningRejected",
    "presto_config",
    "prestissimo_config",
]
