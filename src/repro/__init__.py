"""Accordion: Intra-Query Runtime Elasticity for cloud-native data analysis.

A full reproduction of the SIGMOD'25 Accordion engine on a discrete-event
simulated cluster.  Entry point: :class:`repro.AccordionEngine`.
"""

from .cluster import QueryOptions
from .config import (
    BufferConfig,
    ClusterConfig,
    CostModel,
    EngineConfig,
    NodeSpec,
    presto_config,
    prestissimo_config,
)
from .engine import AccordionEngine, QueryResult

__version__ = "1.0.0"

__all__ = [
    "AccordionEngine",
    "BufferConfig",
    "ClusterConfig",
    "CostModel",
    "EngineConfig",
    "NodeSpec",
    "QueryOptions",
    "QueryResult",
    "presto_config",
    "prestissimo_config",
]
