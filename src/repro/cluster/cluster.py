"""Cluster topology: coordinator + storage nodes + compute nodes."""

from __future__ import annotations

from ..config import ClusterConfig
from ..errors import SchedulingError
from ..sim import SimKernel
from .node import Node


class Cluster:
    """The simulated cluster (paper Section 6.1: 1 coordinator, 10 storage
    nodes, 10 compute nodes of c5.2xlarge shape by default)."""

    def __init__(self, kernel: SimKernel, config: ClusterConfig, combined: bool = False):
        """``combined=True`` makes storage and compute the same machines —
        used for the single-node standalone benchmark (Figure 20)."""
        self.kernel = kernel
        self.config = config
        self.coordinator_node = Node(kernel, 0, config.node, "coordinator")
        self.compute: list[Node] = [
            Node(kernel, i, config.node, "compute") for i in range(config.compute_nodes)
        ]
        if combined:
            if config.storage_nodes > config.compute_nodes:
                raise ValueError("combined cluster needs storage_nodes <= compute_nodes")
            self.storage = self.compute[: config.storage_nodes]
        else:
            self.storage = [
                Node(kernel, i, config.node, "storage")
                for i in range(config.storage_nodes)
            ]
        self.storage_map: dict[int, Node] = {n.id: n for n in self.storage}

    def least_loaded_compute(self) -> Node:
        """Placement target: least-loaded *schedulable* node.  Draining
        nodes still run their tasks but receive nothing new."""
        candidates = self.schedulable_compute
        if not candidates:
            raise SchedulingError("no schedulable compute nodes left in the cluster")
        return min(candidates, key=lambda n: (n.task_count, n.id))

    def compute_node(self, index: int) -> Node:
        return self.compute[index % len(self.compute)]

    def total_compute_cores(self) -> int:
        return sum(n.spec.cores for n in self.compute)

    # -- membership ----------------------------------------------------------
    def add_compute(self, spec=None, spot: bool = False) -> Node:
        """Register a new compute node at runtime (cluster membership).

        Node ids keep growing monotonically — a departed node's id is
        never reused, so lineage and trace records stay unambiguous.
        """
        node_id = max((n.id for n in self.compute), default=-1) + 1
        node = Node(
            self.kernel, node_id, spec or self.config.node, "compute", spot=spot
        )
        self.compute.append(node)
        return node

    @property
    def schedulable_compute(self) -> list[Node]:
        return [n for n in self.compute if n.schedulable]

    def schedulable_cores(self) -> int:
        return sum(n.spec.cores for n in self.schedulable_compute)

    def topology_fingerprint(self) -> tuple:
        """Hashable identity of the *schedulable* topology, used in the
        plan-cache key: a plan produced against N nodes must not be
        reused verbatim once the cluster scales to M nodes."""
        return (
            tuple(sorted(n.id for n in self.schedulable_compute)),
            tuple(sorted(n.id for n in self.alive_storage)),
        )

    # -- fault injection -----------------------------------------------------
    @property
    def alive_compute(self) -> list[Node]:
        return [n for n in self.compute if n.alive]

    @property
    def alive_storage(self) -> list[Node]:
        return [n for n in self.storage if n.alive]

    def all_nodes(self) -> list[Node]:
        seen: dict[int, Node] = {}
        for node in [self.coordinator_node, *self.compute, *self.storage]:
            seen.setdefault(id(node), node)
        return list(seen.values())

    def node_by_name(self, name: str) -> Node:
        """Resolve 'compute3' / 'storage0' / 'coordinator' to a node."""
        for node in self.all_nodes():
            if node.name == name or (name == "coordinator" and node.role == "coordinator"):
                return node
        raise SchedulingError(f"unknown node {name!r}")
