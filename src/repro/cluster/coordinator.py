"""Coordinator: query lifecycle management.

Parses, analyzes, plans, and schedules queries; collects result pages from
stage 0; owns the RPC tracker and the per-query throughput tracker.  The
runtime DOP tuning module and the auto-tuner (``repro.elastic``,
``repro.autotune``) plug in on top of the structures created here.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..config import EngineConfig, config_fingerprint
from ..data import Catalog, SplitLayout
from ..errors import ExecutionError, QueryCancelledError, QueryFailedError
from ..exec.spill import QueryMemory
from ..metrics.throughput import ThroughputTracker
from ..pages import Page, concat_pages
from ..plan.cache import PLAN_CACHE
from ..plan.logical_planner import LogicalPlanner
from ..plan.optimizer import prune_columns
from ..plan.physical import PhysicalPlan
from ..plan.physical_planner import PhysicalPlanner, PlannerOptions
from ..sim import SimKernel
from ..sql.parser import parse
from .cluster import Cluster
from .rpc import RpcTracker
from .scheduler import Scheduler
from .stage import StageExecution


@dataclass
class QueryOptions:
    """Per-query session options."""

    join_distribution: str = "auto"
    broadcast_threshold_rows: float = 1e12
    shuffle_stage_tables: frozenset[str] = frozenset()
    #: Initial DOPs (None -> engine defaults).
    initial_stage_dop: int | None = None
    initial_task_dop: int | None = None
    scan_stage_dop: int | None = None
    #: Per-stage initial DOP overrides (stage id -> task count).
    stage_dops: dict[int, int] = field(default_factory=dict)
    #: Push partial aggregations / partial topN below the shuffle.
    partial_pushdown: bool = True

    def planner_options(self, config: EngineConfig) -> PlannerOptions:
        return PlannerOptions(
            join_distribution=self.join_distribution,
            broadcast_threshold_rows=self.broadcast_threshold_rows,
            shuffle_stage_tables=self.shuffle_stage_tables,
            intermediate_data_cache=config.intermediate_data_cache,
            partial_pushdown=self.partial_pushdown,
        )

    def fingerprint(self) -> tuple:
        """Hashable identity of every option, for plan-cache keys.

        Options differing in *any* field miss the cache — including the
        DOP hints, which do not change the produced plan; a spurious miss
        only costs a re-plan and never serves a wrong plan.  Uses the same
        :func:`repro.config.config_fingerprint` walk as every config
        class, so the plan cache does not special-case this type.
        """
        return config_fingerprint(self)


class QueryState(enum.Enum):
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    CANCELLED = "cancelled"


class QueryExecution:
    """All runtime state of one query."""

    def __init__(
        self,
        query_id: int,
        kernel: SimKernel,
        sql: str,
        plan: PhysicalPlan,
        config: EngineConfig,
        options: QueryOptions,
        metrics=None,
    ):
        self.id = query_id
        self.kernel = kernel
        self.sql = sql
        self.plan = plan
        self.config = config
        self.options = options
        #: Per-query memory budget + spill accounting (DESIGN.md §13).
        self.memory = QueryMemory(
            query_id, config.memory, config.cost, kernel=kernel, metrics=metrics
        )
        self.stages: dict[int, StageExecution] = {}
        self.result_pages: list[Page] = []
        self.result_rows = 0
        self.submitted_at = kernel.now
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.init_requests = 0
        self.tracker: ThroughputTracker | None = None
        self._done_callbacks: list = []
        self.state = QueryState.RUNNING
        self.error: QueryFailedError | None = None
        self.failed_at: float | None = None
        #: Set by the workload layer when the query came through a session.
        self.tenant: str | None = None
        #: Timeline of faults and recovery actions that touched this query
        #: (carried into ``QueryFailedError.fault_history`` on failure).
        self.fault_events: list[dict] = []
        #: Demand prediction attached at submission (``repro.predict``);
        #: None when prediction is off or the template has no history.
        self.prediction = None
        #: Template fingerprint under which this run's demand is recorded.
        self.prediction_template: str | None = None
        #: Relative |observed - predicted| runtime error, set on finish.
        self.prediction_error: float | None = None
        #: Root of this query's trace span tree (-1 when tracing is off).
        self.trace_span = kernel.tracer.begin(
            "query", f"Q{query_id}", node="coordinator", query_id=query_id, sql=sql
        )

    # -- results ----------------------------------------------------------
    def collect_output(self, page: Page) -> None:
        self.result_pages.append(page)
        self.result_rows += page.num_rows

    def result(self) -> Page:
        schema = self.plan.root.schema
        return concat_pages(schema, self.result_pages)

    def result_rows_list(self) -> list[tuple]:
        return self.result().rows()

    # -- lifecycle ----------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Terminal (finished *or* failed) — periodic samplers key off this."""
        return self.finished_at is not None

    @property
    def succeeded(self) -> bool:
        return self.state is QueryState.FINISHED

    @property
    def failed(self) -> bool:
        return self.state is QueryState.FAILED

    @property
    def cancelled(self) -> bool:
        return self.state is QueryState.CANCELLED

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.kernel.now
        return end - self.submitted_at

    @property
    def initialization_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    def on_done(self, fn) -> None:
        if self.finished:
            fn(self)
        else:
            self._done_callbacks.append(fn)

    def task_finished(self, stage: StageExecution, task) -> None:
        if self.state is not QueryState.RUNNING:
            return
        if stage.finished:
            self.kernel.tracer.end(stage.trace_span)
        if stage.id == 0 and stage.finished and not self.finished:
            self.state = QueryState.FINISHED
            self.finished_at = self.kernel.now
            tracer = self.kernel.tracer
            if tracer.enabled:
                for other in self.stages.values():
                    tracer.end(other.trace_span)
                tracer.end(self.trace_span, rows=self.result_rows)
            callbacks, self._done_callbacks = self._done_callbacks, []
            for fn in callbacks:
                fn(self)

    def task_errored(self, stage: StageExecution, task, exc: Exception) -> None:
        """An operator raised inside a driver quantum: fail the query,
        propagating the error task -> coordinator with full context."""
        self.record_fault(
            "task_error", f"{task.task_id} on {task.node.name}: {exc}"
        )
        self.fail(
            QueryFailedError(
                f"task {task.task_id} failed: {exc}",
                query_id=self.id,
                cause=exc,
            )
        )

    def record_fault(self, kind: str, detail: str) -> None:
        self.fault_events.append(
            {"t": self.kernel.now, "kind": kind, "detail": detail}
        )
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "fault", kind, parent=self.trace_span, node="coordinator",
                detail=detail,
            )

    def fail(self, exc: Exception) -> None:
        """Terminal failure: record a structured error, fire completion
        callbacks, and quiesce every running task so the event loop drains
        (a failed query must never hang the simulation)."""
        if self.state is not QueryState.RUNNING:
            return
        if isinstance(exc, QueryFailedError):
            error = exc
            if error.query_id is None:
                error.query_id = self.id
            if not error.fault_history:
                error.fault_history = list(self.fault_events)
        else:
            error = QueryFailedError(
                str(exc),
                query_id=self.id,
                fault_history=self.fault_events,
                cause=exc,
            )
        self.state = QueryState.FAILED
        self.error = error
        self.failed_at = self.kernel.now
        self.finished_at = self.kernel.now
        for stage in self.stages.values():
            for task in stage.tasks:
                if not task.finished:
                    task.crash(reason="query failed")
        tracer = self.kernel.tracer
        if tracer.enabled:
            for stage in self.stages.values():
                tracer.end(stage.trace_span)
            tracer.end(self.trace_span, failed=True, error=str(error))
        callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            fn(self)

    def cancel(self, reason: str = "cancelled") -> None:
        """Terminal cancellation with *clean* task teardown.

        Unlike :meth:`fail` (which crashes tasks mid-quantum), cancel
        sends end signals (Section 4.3/4.4): each running driver injects
        an end page on its next quantum, stateful operators flush, and
        the pipelines drain within bounded virtual time.  Tasks that were
        scheduled but have no drivers yet are torn down directly —
        there is nothing to flush.
        """
        if self.state is not QueryState.RUNNING:
            return
        self.record_fault("cancelled", reason)
        self.state = QueryState.CANCELLED
        error = QueryCancelledError(
            f"query {self.id} cancelled: {reason}", query_id=self.id, reason=reason
        )
        error.fault_history = list(self.fault_events)
        self.error = error
        self.finished_at = self.kernel.now
        for stage in self.stages.values():
            for task in stage.tasks:
                if task.finished or task.crashed:
                    continue
                drivers = [d for p in task.pipelines for d in p.drivers]
                if drivers:
                    for driver in drivers:
                        driver.request_end()
                else:
                    task.crash(reason="cancelled before start")
        tracer = self.kernel.tracer
        if tracer.enabled:
            for stage in self.stages.values():
                tracer.end(stage.trace_span)
            tracer.end(self.trace_span, cancelled=True, reason=reason)
        callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            fn(self)

    # -- introspection -----------------------------------------------------
    def progress(self) -> dict[int, float]:
        """Scan progress per table-scan stage, in [0, 1].

        The Accordion main UI shows exactly these progress bars: because
        execution is streaming, table-scan progress is a reliable
        approximation of overall query progress (paper Section 5.2).
        """
        out = {}
        for stage_id, stage in self.stages.items():
            value = stage.scan_progress()
            if value is not None:
                out[stage_id] = value
        return out

    def progress_bars(self, width: int = 30) -> str:
        """ASCII rendering of the main-UI progress tracking box."""
        lines = []
        for stage_id, value in sorted(self.progress().items()):
            filled = int(round(value * width))
            table = self.stages[stage_id].fragment.source_table or ""
            lines.append(
                f"S{stage_id:<3} {table:<10} [{'#' * filled}{'.' * (width - filled)}] "
                f"{100 * value:5.1f}%"
            )
        return "\n".join(lines)

    def stage(self, stage_id: int) -> StageExecution:
        try:
            return self.stages[stage_id]
        except KeyError:
            raise ExecutionError(f"query {self.id} has no stage {stage_id}") from None

    def describe(self) -> str:
        lines = [f"query {self.id}: {self.state.value}"]
        for stage_id in sorted(self.stages):
            lines.append("  " + self.stages[stage_id].describe())
        return "\n".join(lines)


class Coordinator:
    def __init__(
        self,
        kernel: SimKernel,
        cluster: Cluster,
        catalog: Catalog,
        split_layout: SplitLayout,
        config: EngineConfig,
        metrics=None,
    ):
        self.kernel = kernel
        self.cluster = cluster
        self.catalog = catalog
        self.split_layout = split_layout
        self.config = config
        self.rpc = RpcTracker(kernel, config.cost, faults=config.faults)
        self.rpc.on_action_failed = self._action_failed
        self.scheduler = Scheduler(kernel, cluster, config, self.rpc, split_layout)
        self.queries: dict[int, QueryExecution] = {}
        self._ids = itertools.count(1)
        # Plan-cache traffic from *this* coordinator.  The cache itself is
        # process-wide, but the counters live in the per-engine registry so
        # two engines in one process never cross-contaminate each other's
        # metrics.
        if metrics is None:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self._plan_cache_hits = metrics.counter("plan_cache.hits")
        self._plan_cache_misses = metrics.counter("plan_cache.misses")
        # Lazy import: repro.faults.recovery needs the execution structures
        # defined in this module.
        from ..faults.recovery import RecoveryManager

        self.recovery = RecoveryManager(self)
        self.scheduler.recovery = self.recovery
        #: Hook called with each new QueryExecution *before* scheduling
        #: (``repro.predict`` attaches demand predictions here so initial
        #: placement can see them); None when prediction is off.
        self.on_created = None

    @property
    def plan_cache_hits(self) -> int:
        return self._plan_cache_hits.value

    @property
    def plan_cache_misses(self) -> int:
        return self._plan_cache_misses.value

    def _action_failed(self, query_id: int | None, message: str) -> None:
        """A control-plane action exhausted its RPC retries."""
        targets = (
            [self.queries[query_id]]
            if query_id is not None and query_id in self.queries
            else [q for q in self.queries.values() if not q.finished]
        )
        for query in targets:
            query.record_fault("rpc_gave_up", message)
            query.fail(QueryFailedError(message, query_id=query.id))

    # ------------------------------------------------------------------
    def plan_sql(self, sql: str, options: QueryOptions) -> PhysicalPlan:
        planner_options = options.planner_options(self.config)
        # The schedulable topology is part of the key: a plan cached at N
        # nodes is not reused once membership changes the cluster to M
        # nodes (spurious misses only cost a re-plan, never a wrong plan).
        key = (
            sql,
            options.fingerprint(),
            planner_options,
            self.cluster.topology_fingerprint(),
        )
        if self.config.plan_cache:
            plan = PLAN_CACHE.get(self.catalog, key)
            if plan is not None:
                self._plan_cache_hits.add()
                return plan
            self._plan_cache_misses.add()
        stmt = parse(sql)
        logical = prune_columns(LogicalPlanner(self.catalog).plan(stmt))
        plan = PhysicalPlanner(self.catalog, planner_options).plan(logical)
        if self.config.plan_cache:
            PLAN_CACHE.put(self.catalog, key, plan)
        return plan

    def next_query_id(self) -> int:
        """Allocate a query id from the engine-wide sequence.

        Shared-execution consumers (``repro.sharing``) draw their ids
        here so every user-visible query — physical or folded — has a
        unique id, while only physical executions live in ``queries``
        (arbiter usage accounting and fault targeting iterate that)."""
        return next(self._ids)

    def submit(self, sql: str, options: QueryOptions | None = None) -> QueryExecution:
        options = options or QueryOptions()
        plan = self.plan_sql(sql, options)
        query = QueryExecution(
            next(self._ids), self.kernel, sql, plan, self.config, options,
            metrics=self.metrics,
        )
        # Spill files live only as long as the query: success, failure,
        # and cancellation all clean up the per-query spill directory.
        query.on_done(lambda q: q.memory.cleanup())
        self.queries[query.id] = query
        if self.on_created is not None:
            self.on_created(query)
        self.scheduler.schedule(query)
        query.tracker = ThroughputTracker(self.kernel, query)
        return query
