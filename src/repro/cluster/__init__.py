"""Simulated cluster: nodes, RPC, scheduler, coordinator, stages,
and runtime membership (join / drain / spot preemption)."""

from .cluster import Cluster
from .coordinator import Coordinator, QueryExecution, QueryOptions
from .membership import (
    ClusterMembership,
    MembershipPlan,
    NodeDrain,
    NodeJoin,
    SpotPreemption,
)
from .node import Node
from .rpc import RpcTracker
from .scheduler import Scheduler
from .stage import StageExecution

__all__ = [
    "Cluster",
    "ClusterMembership",
    "Coordinator",
    "MembershipPlan",
    "Node",
    "NodeDrain",
    "NodeJoin",
    "QueryExecution",
    "QueryOptions",
    "RpcTracker",
    "Scheduler",
    "SpotPreemption",
    "StageExecution",
]
