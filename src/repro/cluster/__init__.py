"""Simulated cluster: nodes, RPC, scheduler, coordinator, stages."""

from .cluster import Cluster
from .coordinator import Coordinator, QueryExecution, QueryOptions
from .node import Node
from .rpc import RpcTracker
from .scheduler import Scheduler
from .stage import StageExecution

__all__ = [
    "Cluster",
    "Coordinator",
    "Node",
    "QueryExecution",
    "QueryOptions",
    "RpcTracker",
    "Scheduler",
    "StageExecution",
]
