"""Simulated cluster nodes: CPU cores + NIC per node."""

from __future__ import annotations

from ..config import NodeSpec
from ..sim import CpuPool, NicQueue, SimKernel


class Node:
    """One simulated machine (compute or storage)."""

    def __init__(self, kernel: SimKernel, node_id: int, spec: NodeSpec, role: str):
        self.kernel = kernel
        self.id = node_id
        self.spec = spec
        self.role = role  # "compute" | "storage" | "coordinator"
        self.cpu = CpuPool(kernel, spec.cores, name=f"{role}{node_id}.cpu")
        self.nic = NicQueue(
            kernel, spec.nic_bytes_per_second, name=f"{role}{node_id}.nic"
        )
        self.task_count = 0
        #: Fault injection: a dead node grants no cores and is blacklisted
        #: from task placement.  Its spooled task output stays readable
        #: (durable disaggregated storage), bypassing its NIC.
        self.alive = True
        self.failed_at: float | None = None

    @property
    def name(self) -> str:
        return f"{self.role}{self.id}"

    def fail(self) -> None:
        """Kill this node: revoke its cores (quantum-atomic) and mark it
        down for placement.  Idempotent."""
        if not self.alive:
            return
        self.alive = False
        self.failed_at = self.kernel.now
        self.cpu.halt()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "" if self.alive else ", DOWN"
        return f"Node({self.role}{self.id}, cores={self.spec.cores}{state})"
