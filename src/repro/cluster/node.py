"""Simulated cluster nodes: CPU cores + NIC per node."""

from __future__ import annotations

from ..config import NodeSpec
from ..sim import CpuPool, NicQueue, SimKernel


class Node:
    """One simulated machine (compute or storage).

    Lifecycle (``state``)::

        active ──start_drain()──▶ draining ──leave()──▶ left
           │                        │
           └────────fail()──────────┴──▶ dead

    ``alive`` (active or draining) gates fault-recovery bookkeeping and
    whether the node's CPU still runs quanta; ``schedulable`` (active
    only) gates *new* task placement — a draining node finishes what it
    has but receives nothing new.
    """

    def __init__(
        self,
        kernel: SimKernel,
        node_id: int,
        spec: NodeSpec,
        role: str,
        spot: bool = False,
    ):
        self.kernel = kernel
        self.id = node_id
        self.spec = spec
        self.role = role  # "compute" | "storage" | "coordinator"
        self.cpu = CpuPool(kernel, spec.cores, name=f"{role}{node_id}.cpu")
        self.nic = NicQueue(
            kernel, spec.nic_bytes_per_second, name=f"{role}{node_id}.nic"
        )
        self.task_count = 0
        #: active | draining | dead | left
        self.state = "active"
        #: Spot (preemptible) capacity — cheaper in the cost model.
        self.spot = spot
        #: Billing window: [provisioned_at, released_at or now).
        self.provisioned_at = kernel.now
        self.released_at: float | None = None
        self.failed_at: float | None = None

    @property
    def name(self) -> str:
        return f"{self.role}{self.id}"

    @property
    def alive(self) -> bool:
        """Fault injection: a dead node grants no cores and is blacklisted
        from task placement.  Its spooled task output stays readable
        (durable disaggregated storage), bypassing its NIC."""
        return self.state in ("active", "draining")

    @property
    def schedulable(self) -> bool:
        """Whether new tasks may be placed here (active nodes only)."""
        return self.state == "active"

    def fail(self) -> None:
        """Kill this node: revoke its cores (quantum-atomic) and mark it
        down for placement.  Idempotent."""
        if not self.alive:
            return
        self.state = "dead"
        self.failed_at = self.kernel.now
        self.released_at = self.kernel.now
        self.cpu.halt()

    def start_drain(self) -> None:
        """Stop new placements; running tasks keep their cores."""
        if self.state == "active":
            self.state = "draining"

    def leave(self) -> None:
        """Graceful departure after a clean drain.  The node stops billing
        and its (now idle) cores are released; unlike ``fail()`` nothing
        running is lost — callers must drain first."""
        if not self.alive:
            return
        self.state = "left"
        self.released_at = self.kernel.now
        self.cpu.halt()

    def provisioned_seconds(self, until: float | None = None) -> float:
        """Billable node-seconds accrued by ``until`` (default: now)."""
        end = self.released_at
        if end is None:
            end = self.kernel.now if until is None else until
        elif until is not None:
            end = min(end, until)
        return max(0.0, end - self.provisioned_at)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "" if self.state == "active" else f", {self.state.upper()}"
        return f"Node({self.role}{self.id}, cores={self.spec.cores}{state})"
