"""Stage execution state: the tasks of one fragment, plus group tracking
for partitioned-join DOP switching."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..buffers import OutputMode
from ..plan.physical import PlanFragment
from ..plan.pipelines import FragmentLayout, fragment_pipelines
from ..exec.splits import SplitFeed
from ..exec.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .coordinator import QueryExecution


class StageExecution:
    def __init__(self, query: "QueryExecution", fragment: PlanFragment):
        self.query = query
        self.fragment = fragment
        self.layout: FragmentLayout = fragment_pipelines(fragment)
        self.tasks: list[Task] = []
        #: Task groups for DOP switching (Section 4.5): the last group is
        #: the active one; earlier groups are draining/closed.
        self.task_groups: list[list[Task]] = []
        self.split_feed: SplitFeed | None = None
        self._next_seq = 0
        #: Failure recovery: how many times tasks of this stage have been
        #: respawned after a crash (bounded by ``FaultConfig.task_retry_budget``).
        self.retries = 0
        #: Virtual times of hash-table-ready events (the yellow dashed
        #: lines of Figures 24-26).
        self.build_ready_times: list[float] = []
        kind = "scan" if fragment.is_source else "intermediate"
        self.trace_span = query.kernel.tracer.begin(
            "stage",
            f"stage{fragment.id}",
            parent=query.trace_span,
            node="coordinator",
            stage_kind=kind,
            table=fragment.source_table,
        )

    # -- identity -----------------------------------------------------------
    @property
    def id(self) -> int:
        return self.fragment.id

    def next_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # -- task views ----------------------------------------------------------
    @property
    def active_tasks(self) -> list[Task]:
        return [t for t in self.tasks if not t.finished]

    @property
    def active_group(self) -> list[Task]:
        if self.task_groups:
            return [t for t in self.task_groups[-1] if not t.finished]
        return self.active_tasks

    @property
    def stage_dop(self) -> int:
        return len(self.active_group) if self.tasks else 0

    @property
    def task_dop(self) -> int:
        active = self.active_group
        if not active:
            return 0
        return max(t.tunable_pipeline.active_drivers for t in active)

    @property
    def finished(self) -> bool:
        return bool(self.tasks) and all(t.finished for t in self.tasks)

    @property
    def started(self) -> bool:
        return bool(self.tasks)

    # -- runtime metrics -----------------------------------------------------
    def rows_out(self) -> int:
        if self.fragment.id == 0:
            return self.query.result_rows
        return sum(t.output_buffer.rows_out for t in self.tasks)

    def bytes_out(self) -> int:
        return sum(t.output_buffer.bytes_out for t in self.tasks)

    def exchange_turn_up(self) -> int:
        return sum(t.info()["exchange_turn_up"] for t in self.tasks)

    def rows_received(self) -> int:
        return sum(
            c.rows_received for t in self.tasks for c in t.exchange_clients.values()
        )

    def max_build_seconds(self) -> float:
        """Stage T_build = max over its tasks (paper Section 5.2)."""
        seconds = [b.build_seconds for t in self.tasks for b in t.bridges]
        return max(seconds, default=0.0)

    def cpu_seconds(self) -> float:
        """Virtual CPU seconds burnt by this stage across all tasks."""
        return sum(t.cpu_seconds() for t in self.tasks)

    def quanta(self) -> int:
        return sum(t.quanta() for t in self.tasks)

    def peak_tracked_bytes(self) -> int:
        """Peak tracked operator-state bytes, summed over tasks."""
        return sum(t.peak_tracked_bytes() for t in self.tasks)

    def time_window(self) -> tuple[float, float] | None:
        """(first task created, last task finished), query-relative ready
        for demand profiles; None while any task is still running."""
        if not self.tasks:
            return None
        ends = [t.finished_at for t in self.tasks]
        if any(e is None for e in ends):
            return None
        start = min(t.created_at for t in self.tasks)
        return (start - self.query.submitted_at, max(ends) - self.query.submitted_at)

    def has_join(self) -> bool:
        return bool(self.layout.bridges)

    @property
    def is_partitioned_join(self) -> bool:
        return any(
            b.join.distribution == "partitioned" for b in self.layout.bridges
        )

    def scan_progress(self) -> float | None:
        if self.split_feed is None:
            return None
        return self.split_feed.progress

    def describe(self) -> str:
        kind = "scan" if self.fragment.is_source else "intermediate"
        return (
            f"stage {self.id} ({kind}, dop={self.stage_dop}, "
            f"task_dop={self.task_dop}, rows_out={self.rows_out()})"
        )
