"""Initial query scheduling (paper Section 4.4, first paragraph).

The scheduler traverses the stage tree bottom-up, generates tasks for each
stage, and establishes the communication links between them before any
driver runs.  Control-plane actions are charged to the RPC tracker so the
query initialization time shows up in measurements like the paper's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..buffers import OutputMode
from ..config import EngineConfig
from ..data import SplitLayout
from ..errors import SchedulingError
from ..exec.splits import RemoteSplit, SplitFeed, SystemSplit
from ..exec.task import Task
from ..sim import SimKernel
from .cluster import Cluster
from .rpc import RpcTracker
from .stage import StageExecution

if TYPE_CHECKING:  # pragma: no cover
    from .coordinator import QueryExecution

#: Control-plane request counts for scheduling actions.
RPC_CREATE_TASK = 3
RPC_UPDATE_LINK = 1


class Scheduler:
    def __init__(
        self,
        kernel: SimKernel,
        cluster: Cluster,
        config: EngineConfig,
        rpc: RpcTracker,
        split_layout: SplitLayout,
    ):
        self.kernel = kernel
        self.cluster = cluster
        self.config = config
        self.rpc = rpc
        self.split_layout = split_layout
        #: Demand predictor (repro.predict), set by the engine when
        #: prediction is enabled; None keeps least-loaded placement.
        self.predictor = None

    # ------------------------------------------------------------------
    def schedule(self, query: "QueryExecution") -> None:
        requests = 0
        for fragment in query.plan.bottom_up():
            stage = StageExecution(query, fragment)
            query.stages[fragment.id] = stage
            if fragment.is_source:
                stage.split_feed = self._make_feed(query, fragment.source_table)
            for _ in range(self._initial_dop(query, stage)):
                self.create_task(query, stage)
                requests += RPC_CREATE_TASK
        requests += self.wire_initial(query)
        query.init_requests = requests

        def start_all() -> None:
            # The query may have been cancelled/failed while its control
            # plane RPCs were in flight; starting drivers for it would run
            # the whole query with nobody collecting the result.
            if query.finished:
                return
            query.started_at = self.kernel.now
            for stage in query.stages.values():
                for task in stage.tasks:
                    task.start(self._initial_task_dop(query, stage))

        self.rpc.after_requests(requests, start_all, query_id=query.id)

    # ------------------------------------------------------------------
    def _make_feed(self, query: "QueryExecution", table: str) -> SplitFeed:
        catalog_table = self.split_layout.catalog.table(table)
        splits = [
            SystemSplit(catalog_table, info) for info in self.split_layout.splits(table)
        ]
        return SplitFeed(splits)

    def _initial_dop(self, query: "QueryExecution", stage: StageExecution) -> int:
        if stage.fragment.dop_fixed:
            return 1
        options = query.options
        if stage.id in options.stage_dops:
            return max(1, options.stage_dops[stage.id])
        if stage.fragment.is_source and options.scan_stage_dop is not None:
            return max(1, options.scan_stage_dop)
        if options.initial_stage_dop is not None:
            return max(1, options.initial_stage_dop)
        return max(1, self.config.default_stage_dop)

    def _initial_task_dop(self, query: "QueryExecution", stage: StageExecution) -> int:
        if stage.fragment.dop_fixed:
            return 1
        if query.options.initial_task_dop is not None:
            return max(1, query.options.initial_task_dop)
        return max(1, self.config.default_task_dop)

    # ------------------------------------------------------------------
    def create_task(self, query: "QueryExecution", stage: StageExecution) -> Task:
        """Create (but do not start) one task for ``stage``."""
        node = self._place(stage)
        task = Task(
            kernel=self.kernel,
            config=query.config,
            layout=stage.layout,
            seq=stage.next_seq(),
            node=node,
            storage_nodes=self.cluster.storage_map,
            split_feed=stage.split_feed,
            collect_output=query.collect_output if stage.id == 0 else None,
            on_finished=lambda t, s=stage: query.task_finished(s, t),
            on_error=lambda t, exc, s=stage: query.task_errored(s, t, exc),
            query_id=query.id,
            trace_parent=stage.trace_span,
            memory=query.memory,
        )
        stage.tasks.append(task)
        if not stage.task_groups:
            stage.task_groups.append([])
        stage.task_groups[-1].append(task)
        return task

    def _place(self, stage: StageExecution):
        if stage.fragment.is_source and stage.split_feed is not None:
            nodes = sorted(
                {
                    s.storage_node
                    for s in self.split_layout.splits(stage.fragment.source_table)
                }
            )
            # Dead storage nodes are blacklisted; their splits stay readable
            # through durable disaggregated storage from any survivor.
            # Draining (combined) nodes are likewise skipped for *new*
            # placements while keeping their running scans.
            candidates = [
                n for n in nodes if self.cluster.storage_map[n].schedulable
            ] or [n for n in nodes if self.cluster.storage_map[n].alive]
            if candidates:
                index = len(stage.tasks) % len(candidates)
                return self.cluster.storage_map[candidates[index]]
        if self.predictor is not None:
            # Dominant-remaining-resource packing under predicted demand
            # (DESIGN.md §16); returns None for stages without a
            # prediction, which keep today's least-loaded placement.
            node = self.predictor.place(stage)
            if node is not None:
                return node
        return self.cluster.least_loaded_compute()

    # ------------------------------------------------------------------
    def wire_initial(self, query: "QueryExecution") -> int:
        """Establish all initial communication links. Returns RPC count."""
        requests = 0
        for stage in query.stages.values():
            for child_id in stage.fragment.children:
                child = query.stages[child_id]
                requests += self.connect_stages(child, stage)
        return requests

    def connect_stages(self, child: StageExecution, parent: StageExecution) -> int:
        """Wire every active child task to every active parent task."""
        requests = 0
        parent_tasks = parent.active_group
        if child.fragment.output.mode is OutputMode.HASH:
            group_ids = [t.task_id.seq for t in parent_tasks]
            for upstream in child.active_tasks:
                upstream.output_buffer.set_group(group_ids)
                requests += RPC_UPDATE_LINK
        else:
            for upstream in child.active_tasks:
                for task in parent_tasks:
                    upstream.output_buffer.add_consumer(task.task_id.seq)
                requests += RPC_UPDATE_LINK
        for upstream in child.active_tasks:
            for task in parent_tasks:
                task.add_upstream(
                    child.id, RemoteSplit(upstream, task.task_id.seq)
                )
                requests += RPC_UPDATE_LINK
        return requests
