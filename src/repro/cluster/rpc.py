"""Coordinator-side RPC accounting.

Accordion's control plane is RESTful; each request costs 1-10 ms (paper
Section 6.2 — Q3's initial plan construction issues 65 requests totalling
~313 ms).  The simulator charges a fixed per-request latency and serialises
control-plane actions through a virtual RPC clock, so query initialization
time and tuning-request latency appear in the measurements exactly like in
the paper.
"""

from __future__ import annotations

from typing import Callable

from ..config import CostModel
from ..sim import SimKernel


class RpcTracker:
    def __init__(self, kernel: SimKernel, cost: CostModel):
        self.kernel = kernel
        self.cost = cost
        self.total_requests = 0
        self._clock = 0.0  # virtual time when the control plane frees up

    def after_requests(self, count: int, fn: Callable[[], None]) -> float:
        """Charge ``count`` requests and run ``fn`` when they complete.

        Returns the absolute virtual time at which ``fn`` fires.
        """
        self.total_requests += count
        start = max(self.kernel.now, self._clock)
        finish = start + count * self.cost.rpc_request_cost
        self._clock = finish
        self.kernel.schedule_at(finish, fn)
        return finish

    def charge(self, count: int) -> float:
        """Charge requests without a completion callback."""
        self.total_requests += count
        start = max(self.kernel.now, self._clock)
        self._clock = start + count * self.cost.rpc_request_cost
        return self._clock
