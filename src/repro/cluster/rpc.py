"""Coordinator-side RPC accounting.

Accordion's control plane is RESTful; each request costs 1-10 ms (paper
Section 6.2 — Q3's initial plan construction issues 65 requests totalling
~313 ms).  The simulator charges a fixed per-request latency and serialises
control-plane actions through a virtual RPC clock, so query initialization
time and tuning-request latency appear in the measurements exactly like in
the paper.

Fault injection (``repro.faults``) can install a *fault hook* that decides
the outcome of every individual request: ``"ok"``, ``"fail"`` (the request
times out and is retried with bounded exponential backoff), or
``("delay", extra_seconds)``.  A request that exhausts its retry budget
fails the whole control-plane action; the owning query is torn down through
``on_action_failed`` instead of hanging the event loop.
"""

from __future__ import annotations

import random
from typing import Callable

from ..config import CostModel, FaultConfig
from ..sim import SimKernel

#: Outcome of one request attempt, as returned by a fault hook.
RpcOutcome = "str | tuple[str, float]"


class RpcTracker:
    def __init__(
        self,
        kernel: SimKernel,
        cost: CostModel,
        faults: FaultConfig | None = None,
    ):
        self.kernel = kernel
        self.cost = cost
        self.faults = faults or FaultConfig()
        self.total_requests = 0
        #: Individual request attempts that timed out and were retried.
        self.retried_requests = 0
        #: Requests that exhausted the retry budget (each fails an action).
        self.failed_requests = 0
        #: Requests attributed per query id (65-request Q3 anchor).
        self.query_requests: dict[int, int] = {}
        self._clock = 0.0  # virtual time when the control plane frees up
        # Seeded backoff jitter (FaultConfig.with_rpc_policy): draws are
        # made only when jitter > 0 and only in retry order, so the
        # unjittered timeline consumes no randomness at all.
        self._jitter_rng = random.Random(self.faults.rpc_jitter_seed)
        self._fault_hook: Callable[[float], object] | None = None
        #: Called as ``on_action_failed(query_id, message)`` when an action
        #: gives up; wired to query teardown by the coordinator.
        self.on_action_failed: Callable[[int | None, str], None] | None = None

    # -- introspection -----------------------------------------------------
    @property
    def control_plane_busy_until(self) -> float:
        """Absolute virtual time at which the control plane goes idle."""
        return self._clock

    def requests_for(self, query_id: int) -> int:
        return self.query_requests.get(query_id, 0)

    # -- fault injection ---------------------------------------------------
    def set_fault_hook(self, hook: Callable[[float], object] | None) -> None:
        """Install a per-request outcome hook (see module docstring)."""
        self._fault_hook = hook

    # -- request accounting ------------------------------------------------
    def after_requests(
        self, count: int, fn: Callable[[], None], query_id: int | None = None
    ) -> float:
        """Charge ``count`` requests and run ``fn`` when they complete.

        Returns the absolute virtual time at which ``fn`` fires (or, under
        fault injection, at which the action gave up; ``fn`` is then never
        called and ``on_action_failed`` fires instead).
        """
        self._count(count, query_id)
        start = max(self.kernel.now, self._clock)
        if self._fault_hook is None:
            finish = start + count * self.cost.rpc_request_cost
            self._clock = finish
            self._trace(start, finish, count, query_id)
            if fn is not None:
                self.kernel.schedule_at(finish, fn)
            return finish
        return self._faulty_sequence(start, count, fn, query_id)

    def charge(self, count: int, query_id: int | None = None) -> float:
        """Charge requests without a completion callback."""
        self._count(count, query_id)
        start = max(self.kernel.now, self._clock)
        if self._fault_hook is None:
            self._clock = start + count * self.cost.rpc_request_cost
            self._trace(start, self._clock, count, query_id)
            return self._clock
        return self._faulty_sequence(start, count, None, query_id)

    def _count(self, count: int, query_id: int | None) -> None:
        self.total_requests += count
        if query_id is not None:
            self.query_requests[query_id] = (
                self.query_requests.get(query_id, 0) + count
            )

    def _trace(
        self, start: float, end: float, count: int, query_id: int | None, **meta
    ) -> None:
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.complete(
                "rpc",
                f"rpc x{count}",
                start,
                end,
                parent=tracer.root_for_query(query_id),
                node="coordinator",
                count=count,
                query_id=query_id,
                **meta,
            )

    # -- faulty request sequencing ----------------------------------------
    def _faulty_sequence(
        self,
        start: float,
        count: int,
        fn: Callable[[], None] | None,
        query_id: int | None,
    ) -> float:
        """Walk ``count`` requests through the fault hook in virtual time.

        Each request retries up to ``rpc_max_retries`` times; a timed-out
        attempt costs ``rpc_timeout`` plus capped exponential backoff.  The
        walk is computed synchronously from the (deterministic, seeded)
        hook, then the completion — or the give-up — is scheduled at the
        resulting virtual time.
        """
        faults = self.faults
        t = start
        retried = 0
        for _ in range(count):
            attempt = 0
            while True:
                outcome = self._fault_hook(t)
                if outcome == "ok" or outcome is None:
                    t += self.cost.rpc_request_cost
                    break
                if isinstance(outcome, tuple) and outcome[0] == "delay":
                    t += self.cost.rpc_request_cost + float(outcome[1])
                    break
                # "fail": the request is lost and times out.
                t += faults.rpc_timeout
                if attempt >= faults.rpc_max_retries:
                    self.failed_requests += 1
                    self._clock = max(self._clock, t)
                    self._trace(
                        start, t, count, query_id, retries=retried, failed=True
                    )
                    self._abort_action(query_id, t)
                    return t
                self.retried_requests += 1
                retried += 1
                backoff = min(
                    faults.rpc_backoff_cap,
                    faults.rpc_backoff_base
                    * (faults.rpc_backoff_multiplier ** attempt),
                )
                if faults.rpc_backoff_jitter > 0.0:
                    backoff *= 1.0 + (
                        faults.rpc_backoff_jitter * self._jitter_rng.random()
                    )
                t += backoff
                attempt += 1
        self._clock = max(self._clock, t)
        self._trace(start, t, count, query_id, retries=retried)
        if fn is not None:
            self.kernel.schedule_at(t, fn)
        return t

    def _abort_action(self, query_id: int | None, t: float) -> None:
        callback = self.on_action_failed
        if callback is None:
            return
        message = (
            f"control-plane request failed after "
            f"{self.faults.rpc_max_retries} retries"
        )
        self.kernel.schedule_at(t, lambda: callback(query_id, message))
