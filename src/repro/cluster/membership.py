"""Cluster membership: node join, graceful leave, and spot preemption.

The paper makes *intra-query* resources elastic over a fixed fleet; this
module makes the fleet itself elastic while keeping every run seeded and
reproducible.  Three operations, all in virtual time:

* **Join** — after a provisioning delay and a control-plane registration
  charged to the RPC tracker, a new compute node (CpuPool + NIC) appears
  in the cluster.  Placement (`Cluster.least_loaded_compute`) sees it
  immediately, so in-flight queries can expand onto it via the usual
  intra-stage task addition (Section 4.4).

* **Graceful drain** — the drain state machine::

      active ──drain()──▶ draining ──(task_count == 0)──▶ left
                             │
                 (timeout / preemption notice)
                             ▼
                  dead (crash/recovery path)

  A draining node is removed from placement, then its removable tasks
  are shut down through the Section 4.4 end-signal path: scan drivers
  get end requests (unread splits return to the feed for survivors —
  spawned first if the drained node held the only scan tasks), and
  non-source tasks whose exchanges are not hash-partitioned relay end
  pages through the child output buffers.  Anything else (root tasks,
  hash-partitioned consumers) simply runs to completion on the draining
  node.  If the node is not idle by the deadline the drain *escalates*
  to :meth:`RecoveryManager.node_down` — exactly a crash, recovered by
  lineage replay.

* **Spot preemption** — a drain with a short deadline (the provider's
  preemption notice).  Whatever has not drained when the notice expires
  is killed via the ``NodeCrash`` path and recovered like any failure.

Determinism: membership actions are scheduled on the virtual clock, the
only randomness in a :class:`MembershipPlan` comes from its seed, and
the history (like ``FaultInjector.history``) is bit-identical across
same-seed runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..buffers import OutputMode
from ..config import ClusterConfig, NodeSpec
from ..errors import SchedulingError, TuningRejected
from ..sim import SimKernel

if TYPE_CHECKING:  # pragma: no cover
    from .coordinator import Coordinator
    from .node import Node

#: Control-plane requests to register a node (announce + install links).
RPC_NODE_JOIN = 2
#: Control-plane request announcing a drain (stop-placement broadcast).
RPC_NODE_DRAIN = 1


# -- membership plans (data, mirroring repro.faults.plan) -------------------
@dataclass(frozen=True)
class NodeJoin:
    """Provision ``count`` compute nodes at virtual time ``at``."""

    at: float
    count: int = 1
    spot: bool = False
    kind: str = field(default="node_join", repr=False)


@dataclass(frozen=True)
class NodeDrain:
    """Gracefully drain a compute node at ``at``.  ``node`` is a name
    (``compute3``) or ``"newest"`` (the most recently joined node still
    active at fire time)."""

    at: float
    node: str = "newest"
    timeout: float | None = None
    kind: str = field(default="node_drain", repr=False)


@dataclass(frozen=True)
class SpotPreemption:
    """Preempt a (spot) node at ``at`` with ``notice`` virtual seconds of
    warning; undrained work is killed and recovered via lineage replay."""

    at: float
    node: str = "newest"
    notice: float = 0.5
    kind: str = field(default="spot_preemption", repr=False)


@dataclass(frozen=True)
class MembershipPlan:
    """An ordered, seeded schedule of membership churn (data, not
    behaviour — :meth:`ClusterMembership.apply_plan` executes it)."""

    seed: int = 0
    events: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def joins(self) -> list[NodeJoin]:
        return [e for e in self.events if isinstance(e, NodeJoin)]

    @property
    def drains(self) -> list[NodeDrain]:
        return [e for e in self.events if isinstance(e, NodeDrain)]

    @property
    def preemptions(self) -> list[SpotPreemption]:
        return [e for e in self.events if isinstance(e, SpotPreemption)]

    def describe(self) -> str:
        lines = [f"membership plan (seed={self.seed}):"]
        for event in self.events:
            lines.append(f"  {event!r}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @staticmethod
    def random(
        seed: int,
        *,
        horizon: float,
        joins: int = 1,
        drains: int = 0,
        preemptions: int = 0,
        spot: bool = True,
        notice: float = 0.5,
    ) -> "MembershipPlan":
        """A seeded random churn plan within ``[0, horizon]``.

        Draws from ``random.Random(seed)`` in a fixed order (joins, then
        drains, then preemptions), so the same arguments always produce
        the same plan.  Drains and preemptions target ``"newest"`` —
        the most recently joined node — so base capacity survives.
        """
        rng = random.Random(seed)
        events: list = []
        for _ in range(joins):
            events.append(
                NodeJoin(at=rng.uniform(0.0, horizon), spot=spot)
            )
        for _ in range(drains):
            events.append(NodeDrain(at=rng.uniform(0.05, horizon)))
        for _ in range(preemptions):
            events.append(
                SpotPreemption(at=rng.uniform(0.05, horizon), notice=notice)
            )
        events.sort(key=lambda e: (e.at, e.kind))
        return MembershipPlan(seed=seed, events=tuple(events))


# -- the membership manager -------------------------------------------------
class ClusterMembership:
    """Runtime node arrivals and departures for one engine's cluster."""

    def __init__(self, kernel: SimKernel, coordinator: "Coordinator"):
        self.kernel = kernel
        self.coordinator = coordinator
        self.cluster = coordinator.cluster
        self.config: ClusterConfig = coordinator.config.cluster
        #: Membership timeline: dicts of ``{"t", "kind", "detail"}`` —
        #: bit-identical across same-seed runs.
        self.history: list[dict] = []
        #: Fired (no args) after every membership change; the workload
        #: layer subscribes to re-pump admission when capacity grows.
        self.on_change: list[Callable[[], None]] = []
        # -- counters surfaced via metrics ------------------------------
        self.joins = 0
        self.drains_started = 0
        self.drains_clean = 0
        self.drains_escalated = 0
        self.preemption_notices = 0
        self.preemptions = 0
        #: Nodes with a join scheduled but not yet active (so autoscaler
        #: policy can count capacity already on the way).
        self.pending_joins = 0
        #: Nodes added at runtime, in activation order.  ``"newest"`` in a
        #: churn plan resolves against this list, so the base fleet the
        #: engine started with is never a drain/preemption target.
        self.joined_nodes: list["Node"] = []
        #: Highest concurrent alive-compute count ever observed.
        self.nodes_peak = len(self.cluster.compute)
        #: seqs already end-signalled per (query, stage), so repeated
        #: drain passes stay idempotent.
        self._signalled: dict[tuple[int, int], set[int]] = {}

    # ------------------------------------------------------------------
    # join
    # ------------------------------------------------------------------
    def join(
        self,
        count: int = 1,
        spec: NodeSpec | None = None,
        spot: bool = False,
        on_active: "Callable[[Node], None] | None" = None,
    ) -> None:
        """Provision ``count`` compute nodes: after the provisioning delay
        plus the registration RPCs, each node is live and schedulable.
        ``on_active`` (if given) receives each node as it activates."""
        for _ in range(count):
            self.pending_joins += 1
            self.kernel.schedule(
                self.config.node_join_delay,
                lambda: self.coordinator.rpc.after_requests(
                    RPC_NODE_JOIN, lambda: self._activate(spec, spot, on_active)
                ),
            )

    def _activate(
        self,
        spec: NodeSpec | None,
        spot: bool,
        on_active: "Callable[[Node], None] | None" = None,
    ) -> None:
        node = self.cluster.add_compute(spec=spec, spot=spot)
        self.pending_joins -= 1
        self.joins += 1
        self.joined_nodes.append(node)
        self.nodes_peak = max(self.nodes_peak, len(self.cluster.alive_compute))
        self._record(
            "node_join", f"{node.name}{' (spot)' if spot else ''}"
        )
        if on_active is not None:
            on_active(node)
        self._changed()

    # ------------------------------------------------------------------
    # graceful leave
    # ------------------------------------------------------------------
    def drain(self, node: "Node", timeout: float | None = None) -> None:
        """Begin a graceful leave; escalates to the crash path on timeout."""
        deadline = self.kernel.now + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        self._begin_drain(node, deadline, escalation="drain_escalated")

    def preempt(self, node: "Node", notice: float | None = None) -> None:
        """Spot preemption: a drain whose deadline is the provider notice;
        at expiry the node dies and lineage replay recovers its work."""
        window = notice if notice is not None else 0.5
        self.preemption_notices += 1
        self._record("preemption_notice", f"{node.name} ({window:.3f}s)")
        self._begin_drain(
            node, self.kernel.now + window, escalation="preempted"
        )

    def _begin_drain(
        self, node: "Node", deadline: float, escalation: str
    ) -> None:
        if node.role != "compute":
            raise SchedulingError(f"only compute nodes drain, not {node.name}")
        if node.state != "active":
            return  # already draining, dead, or gone — idempotent
        if len(self.cluster.schedulable_compute) <= 1:
            raise SchedulingError(
                f"cannot drain {node.name}: it is the last schedulable node"
            )
        node.start_drain()
        self.drains_started += 1
        self.coordinator.rpc.charge(RPC_NODE_DRAIN)
        self._record("drain_start", node.name)
        tracer = self.kernel.tracer
        span = tracer.begin(
            "membership", f"drain {node.name}", node=node.name
        )
        self._teardown_pass(node)
        self._changed()
        self.kernel.schedule(
            self.config.drain_poll,
            lambda: self._poll(node, deadline, escalation, span),
        )

    def _poll(
        self, node: "Node", deadline: float, escalation: str, span: int
    ) -> None:
        if node.state != "draining":
            # Crashed (or otherwise terminal) mid-drain; the recovery
            # manager owns it now.
            self.kernel.tracer.end(span, outcome=node.state)
            return
        if node.task_count == 0:
            node.leave()
            self.drains_clean += 1
            self._record("node_left", node.name)
            self.kernel.tracer.end(span, outcome="left")
            self._changed()
            return
        if self.kernel.now >= deadline:
            self.drains_escalated += 1
            if escalation == "preempted":
                self.preemptions += 1
            self._record(
                escalation, f"{node.name} ({node.task_count} tasks undrained)"
            )
            self.kernel.tracer.end(span, outcome=escalation)
            self.coordinator.recovery.node_down(node)
            self._changed()
            return
        # Tasks may have landed between the drain announcement and the
        # placement cutoff; re-run the (idempotent) end-signal pass.
        self._teardown_pass(node)
        self.kernel.schedule(
            self.config.drain_poll,
            lambda: self._poll(node, deadline, escalation, span),
        )

    # ------------------------------------------------------------------
    # end-signal teardown (Section 4.4) of a draining node's tasks
    # ------------------------------------------------------------------
    def _teardown_pass(self, node: "Node") -> None:
        for query in list(self.coordinator.queries.values()):
            if query.finished:
                continue
            touched = False
            for stage in query.stages.values():
                touched |= self._drain_stage(query, stage, node)
            if touched:
                query.record_fault("drain", node.name)

    def _drain_stage(self, query, stage, node: "Node") -> bool:
        signalled = self._signalled.setdefault((query.id, stage.id), set())
        active = stage.active_group
        victims = [
            t
            for t in active
            if t.node is node
            and not t.finished
            and t.task_id.seq not in signalled
            and any(d for p in t.pipelines for d in p.drivers)
        ]
        if not victims:
            return False
        survivors = [t for t in active if t.node is not node]
        if stage.fragment.is_source:
            # End-signal the scan drivers; unread splits return to the
            # feed.  If the draining node held the whole scan, spawn
            # replacements on schedulable nodes first so the returned
            # splits have consumers.
            if not survivors:
                try:
                    self._dynamic().add_stage_tasks(
                        query, stage, len(victims)
                    )
                except (TuningRejected, SchedulingError):
                    return False  # leave to timeout escalation
            for task in victims:
                for runtime in task.pipelines:
                    for driver in runtime.drivers:
                        driver.request_end()
                signalled.add(task.task_id.seq)
            self.coordinator.rpc.charge(len(victims))
            return True
        # Non-source: removal via child end signals is only safe when no
        # child exchange is hash-partitioned (the partition map would
        # break) and a survivor remains to absorb the work.
        if not survivors or stage.id == 0:
            return False
        for child_id in stage.fragment.children:
            child = query.stages[child_id]
            if (
                child.fragment.output.mode is OutputMode.HASH
                and not stage.is_partitioned_join
            ):
                return False
        requests = 0
        for task in victims:
            for child_id in stage.fragment.children:
                child = query.stages[child_id]
                for upstream in child.tasks:
                    upstream.output_buffer.end_consumer(task.task_id.seq)
                    requests += 1
            signalled.add(task.task_id.seq)
        self.coordinator.rpc.charge(requests)
        return True

    def _dynamic(self):
        from ..elastic.dynamic_scheduler import DynamicScheduler

        return DynamicScheduler(self.kernel, self.coordinator.scheduler)

    # ------------------------------------------------------------------
    # plans
    # ------------------------------------------------------------------
    def apply_plan(self, plan: MembershipPlan) -> None:
        """Schedule a churn plan on the virtual clock (like FaultInjector)."""
        for event in plan.events:
            at = max(self.kernel.now, event.at)
            if isinstance(event, NodeJoin):
                self.kernel.schedule_at(
                    at, lambda e=event: self.join(e.count, spot=e.spot)
                )
            elif isinstance(event, NodeDrain):
                self.kernel.schedule_at(
                    at, lambda e=event: self._plan_drain(e)
                )
            elif isinstance(event, SpotPreemption):
                self.kernel.schedule_at(
                    at, lambda e=event: self._plan_preempt(e)
                )

    def _resolve(self, name: str) -> "Node | None":
        if name == "newest":
            # Only runtime-joined nodes qualify: churn plans shed elastic
            # capacity, they never eat into the base fleet.
            active = [n for n in self.joined_nodes if n.state == "active"]
            if not active:
                return None
            return max(active, key=lambda n: (n.provisioned_at, n.id))
        node = self.cluster.node_by_name(name)
        return node if node.state == "active" else None

    def _plan_drain(self, event: NodeDrain) -> None:
        node = self._resolve(event.node)
        if node is not None and len(self.cluster.schedulable_compute) > 1:
            self.drain(node, timeout=event.timeout)

    def _plan_preempt(self, event: SpotPreemption) -> None:
        node = self._resolve(event.node)
        if node is not None and len(self.cluster.schedulable_compute) > 1:
            self.preempt(node, notice=event.notice)

    # ------------------------------------------------------------------
    # cost model: node-seconds = dollars
    # ------------------------------------------------------------------
    def node_seconds(self, until: float | None = None) -> float:
        return sum(
            n.provisioned_seconds(until) for n in self.cluster.compute
        )

    def cost_between(self, since: float, until: float | None = None) -> float:
        """Dollars billed for compute in ``[since, until]`` (default: now),
        at ``cost_per_node_second`` with the spot discount applied."""
        end_default = self.kernel.now if until is None else until
        total = 0.0
        for node in self.cluster.compute:
            start = max(node.provisioned_at, since)
            end = node.released_at if node.released_at is not None else end_default
            end = min(end, end_default)
            seconds = max(0.0, end - start)
            rate = self.config.cost_per_node_second
            if node.spot:
                rate *= self.config.spot_price_multiplier
            total += seconds * rate
        return total

    # ------------------------------------------------------------------
    def _record(self, kind: str, detail: str) -> None:
        self.history.append(
            {"t": self.kernel.now, "kind": kind, "detail": detail}
        )
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant("membership", kind, node="coordinator", detail=detail)

    def _changed(self) -> None:
        for fn in list(self.on_change):
            fn()

    def stats(self) -> dict:
        cluster = self.cluster
        return {
            "joins": self.joins,
            "drains_started": self.drains_started,
            "drains_clean": self.drains_clean,
            "drains_escalated": self.drains_escalated,
            "preemption_notices": self.preemption_notices,
            "preemptions": self.preemptions,
            "nodes_total": len(cluster.compute),
            "nodes_schedulable": len(cluster.schedulable_compute),
            "nodes_peak": self.nodes_peak,
            "node_seconds": self.node_seconds(),
        }
