"""Columnar pages — the unit of data flow between operators and tasks.

A page holds a batch of rows as parallel numpy column arrays.  Besides
ordinary data pages the engine uses *end pages* (paper Section 4.3):

* ``PageKind.END`` — "no more data will follow"; relayed operator-to-
  operator to close drivers gracefully (the "end page relay game").
* An end page carries an optional ``signal`` tag so components can tell a
  normal bottom-up completion apart from an elastic shutdown requested by
  the dynamic scheduler; both are handled identically by operators.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np

from .schema import ColumnType, Schema

#: Fixed per-page metadata overhead in bytes.
_PAGE_OVERHEAD_BYTES = 64
#: Per-cell length-prefix bytes for string columns (int32, matching the
#: ``column_buffers`` wire layout).
_STRING_LENGTH_BYTES = 4


class PageKind(enum.Enum):
    DATA = "data"
    END = "end"


class Page:
    """An immutable batch of rows in columnar layout."""

    __slots__ = ("schema", "columns", "kind", "signal", "_size", "num_rows")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[np.ndarray],
        kind: PageKind = PageKind.DATA,
        signal: str | None = None,
    ):
        if kind is PageKind.DATA and len(columns) != len(schema):
            raise ValueError(
                f"page has {len(columns)} columns but schema has {len(schema)}"
            )
        self.schema = schema
        self.columns = tuple(columns)
        self.kind = kind
        self.signal = signal
        self._size: int | None = None
        # A plain attribute, not a lazy property: buffers, cost accounting,
        # and the NIC model read this several times per page, so the
        # attribute lookup must not pay a function call.
        self.num_rows = (
            0 if kind is PageKind.END or not self.columns else len(self.columns[0])
        )

    # -- constructors ---------------------------------------------------
    @classmethod
    def end(cls, schema: Schema | None = None, signal: str | None = None) -> "Page":
        """An end page (optionally tagged with the elastic shutdown signal)."""
        return cls(schema or Schema(()), (), kind=PageKind.END, signal=signal)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Page":
        """Build a page from an iterable of row tuples (test convenience)."""
        rows = list(rows)
        cols = []
        for i, field in enumerate(schema):
            cols.append(field.type.coerce([r[i] for r in rows]))
        return cls(schema, cols)

    @classmethod
    def from_dict(cls, schema: Schema, data: dict[str, Iterable]) -> "Page":
        cols = [f.type.coerce(data[f.name]) for f in schema]
        return cls(schema, cols)

    # -- basic accessors ------------------------------------------------
    @property
    def is_end(self) -> bool:
        return self.kind is PageKind.END

    def column(self, ref: int | str) -> np.ndarray:
        if isinstance(ref, str):
            ref = self.schema.index_of(ref)
        return self.columns[ref]

    @property
    def size_bytes(self) -> int:
        """Measured wire size of the page (used by buffers and the NIC).

        Matches the :meth:`column_buffers` layout exactly: fixed-width
        columns cost ``rows * width``; string columns cost an ``int32``
        length prefix per cell plus their actual UTF-8 payload bytes
        (measured once and cached — pages are immutable).  Spill-budget
        decisions and buffer accounting therefore see honest sizes
        instead of a flat per-cell estimate.
        """
        if self._size is None:
            total = _PAGE_OVERHEAD_BYTES
            n = self.num_rows
            for field, col in zip(self.schema, self.columns):
                width = field.type.fixed_width
                if width is None:
                    # One bulk join+encode stays in C; a per-cell encode
                    # loop here is 10-50x slower and shows up in every
                    # page-producing operator.
                    payload = "".join(map(str, col.tolist()))
                    total += n * _STRING_LENGTH_BYTES + len(
                        payload.encode("utf-8")
                    )
                else:
                    total += n * width
            self._size = total
        return self._size

    # -- buffer protocol (zero-copy serialization, DESIGN.md §13) ---------
    def column_buffers(self) -> list:
        """Flat list of buffer views covering every column, copy-free
        where the memory layout allows it.

        Fixed-width columns contribute one ``memoryview`` over the numpy
        array's own buffer (no bytes are copied until a consumer writes
        them somewhere).  String columns are not stored contiguously, so
        each contributes two materialised buffers: an ``int32`` length
        array (as a memoryview) and the concatenated UTF-8 payload.  The
        spill files and a future shared-memory executor both consume this
        layout; :meth:`from_column_buffers` is the inverse.
        """
        buffers: list = []
        for fld, col in zip(self.schema, self.columns):
            if fld.type.fixed_width is None:
                encoded = [str(v).encode("utf-8") for v in col.tolist()]
                lengths = np.fromiter(
                    (len(e) for e in encoded), dtype=np.int32, count=len(encoded)
                )
                buffers.append(memoryview(lengths).cast("B"))
                buffers.append(b"".join(encoded))
            else:
                arr = np.ascontiguousarray(col)
                buffers.append(memoryview(arr).cast("B"))
        return buffers

    @classmethod
    def from_column_buffers(
        cls, schema: Schema, num_rows: int, buffers: Sequence
    ) -> "Page":
        """Rebuild a page from :meth:`column_buffers` output.

        Fixed-width columns come back as ``np.frombuffer`` views over the
        provided buffers (zero-copy; the arrays are read-only, which every
        operator honours — transformations allocate fresh arrays).
        """
        columns: list[np.ndarray] = []
        cursor = 0
        for fld in schema:
            if fld.type.fixed_width is None:
                lengths = np.frombuffer(buffers[cursor], dtype=np.int32)
                payload = bytes(buffers[cursor + 1])
                cursor += 2
                values = np.empty(num_rows, dtype=object)
                offset = 0
                for i, n in enumerate(lengths.tolist()):
                    values[i] = payload[offset : offset + n].decode("utf-8")
                    offset += n
                columns.append(values)
            else:
                columns.append(
                    np.frombuffer(buffers[cursor], dtype=fld.type.numpy_dtype)
                )
                cursor += 1
        return cls(schema, columns)

    # -- row-level views (tests / result collection) ---------------------
    def rows(self) -> list[tuple]:
        """Materialise the page as a list of python row tuples."""
        if self.is_end or not self.columns:
            return []
        cols = [c.tolist() for c in self.columns]
        return list(zip(*cols))

    # -- transformations -------------------------------------------------
    def select(self, indexes: Sequence[int]) -> "Page":
        """Positional column projection."""
        return Page(self.schema.select(indexes), [self.columns[i] for i in indexes])

    def mask(self, keep: np.ndarray) -> "Page":
        """Row filter by boolean mask."""
        return Page(self.schema, [c[keep] for c in self.columns])

    def take(self, indices: np.ndarray) -> "Page":
        """Row gather by integer indices."""
        return Page(self.schema, [c[indices] for c in self.columns])

    def slice(self, start: int, stop: int) -> "Page":
        return Page(self.schema, [c[start:stop] for c in self.columns])

    def with_columns(self, schema: Schema, columns: Sequence[np.ndarray]) -> "Page":
        """Replace schema+columns, keeping row count (projection output)."""
        return Page(schema, columns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_end:
            tag = f" signal={self.signal}" if self.signal else ""
            return f"Page(END{tag})"
        return f"Page({self.num_rows} rows x {len(self.columns)} cols)"


def concat_pages(schema: Schema, pages: Sequence[Page]) -> Page:
    """Concatenate data pages into one page (used by sorts and caches)."""
    data_pages = [p for p in pages if not p.is_end and p.num_rows > 0]
    if not data_pages:
        return Page(schema, [f.type.coerce([]) for f in schema])
    cols = []
    for i in range(len(schema)):
        cols.append(np.concatenate([p.columns[i] for p in data_pages]))
    return Page(schema, cols)
