"""Columnar page format: schemas, pages, end pages, and builders."""

from .builder import PageBuilder
from .page import Page, PageKind, concat_pages
from .schema import ColumnType, Field, Schema

__all__ = [
    "ColumnType",
    "Field",
    "Page",
    "PageBuilder",
    "PageKind",
    "Schema",
    "concat_pages",
]
