"""Incremental page construction with a target row limit.

Operators that produce rows incrementally (scans, aggregations, join
probes) accumulate output in a :class:`PageBuilder` and emit full pages
once ``row_limit`` is reached, matching the paper's page (sub-chunk)
granularity of data flow.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .page import Page
from .schema import Schema


class PageBuilder:
    """Accumulates rows column-wise and emits pages of bounded size."""

    def __init__(self, schema: Schema, row_limit: int = 4096):
        if row_limit <= 0:
            raise ValueError("row_limit must be positive")
        self.schema = schema
        self.row_limit = row_limit
        self._chunks: list[list[np.ndarray]] = []
        self._rows = 0

    def __len__(self) -> int:
        return self._rows

    @property
    def is_empty(self) -> bool:
        return self._rows == 0

    def append_columns(self, columns: Sequence[np.ndarray]) -> None:
        """Append a batch given as parallel column arrays."""
        if len(columns) != len(self.schema):
            raise ValueError("column arity mismatch")
        n = len(columns[0]) if columns else 0
        if n == 0:
            return
        self._chunks.append(list(columns))
        self._rows += n

    def append_page(self, page: Page) -> None:
        if page.is_end or page.num_rows == 0:
            return
        self.append_columns(page.columns)

    def append_rows(self, rows: Sequence[Sequence]) -> None:
        """Append python row tuples (slow path, used by tests/final agg)."""
        if not rows:
            return
        cols = [
            f.type.coerce([r[i] for r in rows]) for i, f in enumerate(self.schema)
        ]
        self.append_columns(cols)

    @property
    def is_full(self) -> bool:
        return self._rows >= self.row_limit

    def _concat(self) -> list[np.ndarray]:
        if len(self._chunks) == 1:
            return self._chunks[0]
        return [
            np.concatenate([chunk[i] for chunk in self._chunks])
            for i in range(len(self.schema))
        ]

    def flush(self) -> Page | None:
        """Emit everything buffered as a single page (or ``None`` if empty)."""
        if self._rows == 0:
            return None
        cols = self._concat()
        self._chunks = []
        self._rows = 0
        return Page(self.schema, cols)

    def build_full_pages(self) -> list[Page]:
        """Emit zero or more pages of at most ``row_limit`` rows, keeping
        any remainder buffered for the next call."""
        if self._rows < self.row_limit:
            return []
        cols = self._concat()
        total = self._rows
        pages = []
        offset = 0
        while total - offset >= self.row_limit:
            pages.append(
                Page(self.schema, [c[offset : offset + self.row_limit] for c in cols])
            )
            offset += self.row_limit
        self._chunks = []
        self._rows = 0
        if offset < total:
            self.append_columns([c[offset:] for c in cols])
        return pages
