"""Column types and schemas for the columnar page format.

Accordion exchanges data between operators and tasks as columnar pages
(the paper uses Apache Arrow record batches; we use numpy arrays with an
explicit logical type layer on top).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np


class ColumnType(enum.Enum):
    """Logical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"
    #: Days since 1970-01-01, stored as int64 (TPC-H date columns).
    DATE = "date"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The physical numpy dtype used to store this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def fixed_width(self) -> int | None:
        """Bytes per value for fixed-width types, ``None`` for strings."""
        return _FIXED_WIDTHS[self]

    def coerce(self, values: Iterable) -> np.ndarray:
        """Build a column array of this type from arbitrary values."""
        if self is ColumnType.STRING:
            return np.array(list(values), dtype=object)
        return np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=self.numpy_dtype)

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT64, ColumnType.FLOAT64, ColumnType.DATE)


#: dtype tables (building an np.dtype per property call shows in profiles).
_NUMPY_DTYPES = {
    ColumnType.INT64: np.dtype(np.int64),
    ColumnType.DATE: np.dtype(np.int64),
    ColumnType.FLOAT64: np.dtype(np.float64),
    ColumnType.BOOL: np.dtype(np.bool_),
    ColumnType.STRING: np.dtype(object),
}
_FIXED_WIDTHS = {
    t: (None if t is ColumnType.STRING else _NUMPY_DTYPES[t].itemsize)
    for t in ColumnType
}


@dataclass(frozen=True)
class Field:
    """A named, typed column in a schema."""

    name: str
    type: ColumnType

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.name}:{self.type.value}"


class Schema:
    """An ordered collection of :class:`Field` with name lookup.

    Schemas are immutable; transformations return new schemas.
    """

    __slots__ = ("fields", "_index")

    def __init__(self, fields: Iterable[Field]):
        self.fields: tuple[Field, ...] = tuple(fields)
        self._index: dict[str, int] = {}
        for i, f in enumerate(self.fields):
            # Keep the first occurrence on duplicate names (joins may
            # produce duplicates; positional access remains unambiguous).
            self._index.setdefault(f.name, i)

    @classmethod
    def of(cls, *pairs: tuple[str, ColumnType]) -> "Schema":
        """Convenience constructor: ``Schema.of(("a", INT64), ...)``."""
        return cls(Field(name, typ) for name, typ in pairs)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Schema({', '.join(map(repr, self.fields))})"

    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def types(self) -> list[ColumnType]:
        return [f.type for f in self.fields]

    def index_of(self, name: str) -> int:
        """Position of column ``name``; raises ``KeyError`` if absent."""
        return self._index[name]

    def field(self, ref: int | str) -> Field:
        if isinstance(ref, str):
            ref = self.index_of(ref)
        return self.fields[ref]

    def contains(self, name: str) -> bool:
        return name in self._index

    def select(self, indexes: Iterable[int]) -> "Schema":
        """Schema of a positional projection."""
        return Schema(self.fields[i] for i in indexes)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a row-wise concatenation (join output)."""
        return Schema(self.fields + other.fields)

    def rename(self, names: Iterable[str]) -> "Schema":
        names = list(names)
        if len(names) != len(self.fields):
            raise ValueError("rename arity mismatch")
        return Schema(Field(n, f.type) for n, f in zip(names, self.fields))
