"""Structured tracing on the virtual clock (the ``repro.obs`` core).

A :class:`Tracer` records a per-query *span tree* — query → stage → task →
driver quantum → operator work — plus point events (RPC batches, buffer
turn-ups/resizes, tuning actions, fault and recovery markers) while the
simulation runs.  The paper's whole evaluation (Section 6) is about
explaining runtime behaviour; this layer is what future scheduling and
auto-tuning work reads instead of print statements.

Design contract — **tracing is provably inert**:

* the tracer never schedules kernel events, never consumes randomness,
  and never mutates engine state: every hook appends to a Python list
  and nothing else.  Virtual timings, query answers, RPC totals, and
  fault schedules are bit-identical with tracing on or off (enforced by
  ``tests/test_obs.py``);
* hot paths pay a single attribute check (``tracer.enabled`` /
  ``tracer.quantum_spans`` / ``tracer.buffer_events``) when tracing is
  off — the engine installs the shared :data:`NULL_TRACER` singleton,
  whose flags are all ``False``;
* span volume is bounded by ``TraceConfig.max_spans``; past the cap the
  tracer counts drops instead of growing without bound.

All timestamps are *virtual* seconds from the owning :class:`SimKernel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..config import TraceConfig
    from ..sim import SimKernel
    from .profile import Profiler


@dataclass
class Span:
    """One node of the trace: an interval (or instant) on the virtual clock.

    ``end is None`` while the span is open; instants have ``end == start``.
    ``parent`` links build the tree (``None`` for roots and cluster-scope
    events).  ``node`` is the simulated machine the work ran on, when
    known; descendants inherit it through the parent chain at export time.
    """

    id: int
    parent: int | None
    kind: str
    name: str
    start: float
    end: float | None = None
    node: str | None = None
    meta: dict = field(default_factory=dict)

    @property
    def is_instant(self) -> bool:
        return self.end == self.start

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start


class NullTracer:
    """Shared no-op tracer installed when tracing and profiling are off.

    Every flag is ``False`` and every method returns immediately, so the
    per-event cost on hot paths is one attribute lookup.
    """

    enabled = False
    quantum_spans = False
    operator_spans = False
    buffer_events = False
    profiling = False
    profiler: "Profiler | None" = None
    spans: list = []
    dropped = 0

    def begin(self, kind, name, parent=None, node=None, **meta) -> int:
        return -1

    def end(self, span_id, at=None, **meta) -> None:
        pass

    def complete(self, kind, name, start, end, parent=None, node=None, **meta) -> int:
        return -1

    def instant(self, kind, name, parent=None, node=None, **meta) -> int:
        return -1

    def root_for_query(self, query_id) -> int | None:
        return None


#: The process-wide inert tracer (default for every :class:`SimKernel`).
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans and instants against a kernel's virtual clock."""

    def __init__(self, kernel: "SimKernel", config: "TraceConfig"):
        self.kernel = kernel
        self.config = config
        # Flags are flattened to plain attributes so instrumentation sites
        # pay one attribute check, mirroring NullTracer's interface.
        self.enabled = config.enabled
        self.quantum_spans = config.enabled and config.quantum_spans
        self.operator_spans = config.enabled and config.operator_spans
        self.buffer_events = config.enabled and config.buffer_events
        self.profiling = config.profiling
        if config.profiling:
            from .profile import Profiler

            self.profiler: "Profiler | None" = Profiler()
        else:
            self.profiler = None
        self.spans: list[Span] = []
        self.dropped = 0
        self._ids = itertools.count(1)
        self._open: dict[int, Span] = {}
        self._query_roots: dict[int, int] = {}

    # -- recording --------------------------------------------------------
    def begin(
        self,
        kind: str,
        name: str,
        parent: int | None = None,
        node: str | None = None,
        **meta,
    ) -> int:
        """Open a span at the current virtual time; returns its id.

        A negative id (over the cap, or from a :class:`NullTracer`) is a
        valid argument to :meth:`end` and as a ``parent`` — both treat it
        as "no span"."""
        if len(self.spans) >= self.config.max_spans:
            self.dropped += 1
            return -1
        span = Span(
            id=next(self._ids),
            parent=parent if (parent is not None and parent > 0) else None,
            kind=kind,
            name=name,
            start=self.kernel.now,
            node=node,
            meta=meta,
        )
        self.spans.append(span)
        self._open[span.id] = span
        if kind == "query" and "query_id" in meta:
            self._query_roots[meta["query_id"]] = span.id
        return span.id

    def end(self, span_id: int, at: float | None = None, **meta) -> None:
        """Close an open span (idempotent; ignores unknown/negative ids)."""
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end = self.kernel.now if at is None else at
        if meta:
            span.meta.update(meta)

    def complete(
        self,
        kind: str,
        name: str,
        start: float,
        end: float,
        parent: int | None = None,
        node: str | None = None,
        **meta,
    ) -> int:
        """Record a closed span with explicit times (e.g. a driver quantum
        whose duration is known the moment it is granted a core)."""
        if len(self.spans) >= self.config.max_spans:
            self.dropped += 1
            return -1
        span = Span(
            id=next(self._ids),
            parent=parent if (parent is not None and parent > 0) else None,
            kind=kind,
            name=name,
            start=start,
            end=end,
            node=node,
            meta=meta,
        )
        self.spans.append(span)
        return span.id

    def instant(
        self,
        kind: str,
        name: str,
        parent: int | None = None,
        node: str | None = None,
        **meta,
    ) -> int:
        """Record a zero-duration marker at the current virtual time."""
        now = self.kernel.now
        return self.complete(kind, name, now, now, parent=parent, node=node, **meta)

    # -- lookups ----------------------------------------------------------
    def root_for_query(self, query_id: int | None) -> int | None:
        """Span id of a query's root span (for cross-component parenting)."""
        if query_id is None:
            return None
        return self._query_roots.get(query_id)

    def spans_of(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def close_open_spans(self, at: float | None = None) -> None:
        """Close every still-open span (end-of-run cleanup for exports)."""
        for span_id in list(self._open):
            self.end(span_id, at=at)
