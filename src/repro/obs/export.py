"""Per-query trace views and Chrome trace-event export.

:class:`QueryTrace` filters a :class:`~repro.obs.trace.Tracer`'s span
list down to one query's tree and renders it as a Chrome trace-event
JSON file (the format Perfetto and ``chrome://tracing`` load).  The
mapping:

* virtual seconds become the trace timeline (``ts``/``dur`` are in
  microseconds, so 1 virtual second = 1e6 ticks — Perfetto shows it as
  one "second" of wall time);
* each simulated node becomes a *process* (``pid``), named via ``M``
  metadata events; coordinator-scope spans (query/stage/RPC/tuning)
  live in a synthetic ``coordinator`` process;
* each task gets its own *thread* (``tid``) lane inside its node's
  process, so quanta and operator work stack naturally;
* intervals are ``X`` (complete) events, markers are ``i`` (instant)
  events, and per-stage throughput samples become ``C`` (counter)
  tracks.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .trace import Span

if TYPE_CHECKING:  # pragma: no cover
    from .trace import Tracer

#: Spans of these kinds get a per-task lane; everything else goes to a
#: coordinator-scope lane keyed by kind.
_TASK_SCOPED = ("task", "quantum", "operator", "buffer", "spill")


class QueryTrace:
    """One query's span tree, filtered out of the engine-wide tracer."""

    def __init__(self, tracer: "Tracer", query_id: int, finished_at: float | None = None):
        self.query_id = query_id
        self.finished_at = finished_at
        #: Chrome counter ("C") events to merge into exports (QueryHandle
        #: fills this with the query's throughput samples).
        self.counters: list[dict] = []
        root = tracer.root_for_query(query_id)
        if root is None:
            raise ValueError(f"no trace recorded for query {query_id}")
        self.root_id = root
        # Spans are recorded parents-first, so one pass over the list in
        # record order reconstructs the connected tree.
        included = {root}
        spans: list[Span] = []
        for span in tracer.spans:
            if (
                span.id == root
                or (span.parent is not None and span.parent in included)
                or span.meta.get("query_id") == query_id
            ):
                included.add(span.id)
                spans.append(span)
        self.spans = spans
        self._by_id = {s.id: s for s in spans}

    # -- tree queries ------------------------------------------------------
    def root(self) -> Span:
        return self._by_id[self.root_id]

    def spans_of(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent == span_id]

    def tree(self) -> dict:
        """Nested ``{span, children}`` dict view, rooted at the query."""

        def build(span: Span) -> dict:
            return {
                "span": span,
                "children": [build(child) for child in self.children_of(span.id)],
            }

        return build(self.root())

    def node_of(self, span: Span) -> str:
        """The simulated node a span ran on (walks the parent chain)."""
        cursor: Span | None = span
        while cursor is not None:
            if cursor.node is not None:
                return cursor.node
            cursor = self._by_id.get(cursor.parent) if cursor.parent else None
        return "coordinator"

    def _end_of(self, span: Span) -> float:
        if span.end is not None:
            return span.end
        if self.finished_at is not None:
            return self.finished_at
        return max((s.end for s in self.spans if s.end is not None), default=span.start)

    # -- chrome export -----------------------------------------------------
    def to_chrome_events(self, counters: list[dict] | None = None) -> list[dict]:
        """The ``traceEvents`` list (see module docstring for the mapping)."""
        pids: dict[str, int] = {}
        tids: dict[tuple[int, str], int] = {}
        events: list[dict] = []

        def pid_for(node: str) -> int:
            pid = pids.get(node)
            if pid is None:
                pid = pids[node] = len(pids) + 1
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": node},
                    }
                )
            return pid

        def tid_for(pid: int, lane: str) -> int:
            tid = tids.get((pid, lane))
            if tid is None:
                tid = tids[(pid, lane)] = (
                    len([k for k in tids if k[0] == pid]) + 1
                )
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": lane},
                    }
                )
            return tid

        def lane_of(span: Span) -> str:
            if span.kind in _TASK_SCOPED:
                cursor: Span | None = span
                while cursor is not None and cursor.kind != "task":
                    cursor = (
                        self._by_id.get(cursor.parent) if cursor.parent else None
                    )
                if cursor is not None:
                    return cursor.name
            return span.kind

        for span in self.spans:
            node = self.node_of(span)
            pid = pid_for(node)
            tid = tid_for(pid, lane_of(span))
            args = {k: v for k, v in span.meta.items() if v is not None}
            if span.is_instant:
                events.append(
                    {
                        "name": span.name,
                        "cat": span.kind,
                        "ph": "i",
                        "ts": span.start * 1e6,
                        "pid": pid,
                        "tid": tid,
                        "s": "t",
                        "args": args,
                    }
                )
            else:
                end = self._end_of(span)
                events.append(
                    {
                        "name": span.name,
                        "cat": span.kind,
                        "ph": "X",
                        "ts": span.start * 1e6,
                        "dur": max(end - span.start, 0.0) * 1e6,
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
        if counters is None:
            counters = self.counters
        for counter in counters:
            counter = dict(counter)
            counter["pid"] = pid_for("coordinator")
            events.append(counter)
        return events

    def to_chrome_json(self, path=None, counters: list[dict] | None = None):
        """Serialise as Chrome trace-event JSON; write to ``path`` if given.

        Returns the trace document (a dict) either way, so tests can
        schema-check it without touching the filesystem."""
        doc = {
            "traceEvents": self.to_chrome_events(counters=counters),
            "displayTimeUnit": "ms",
            "metadata": {"query_id": self.query_id, "clock": "virtual-seconds"},
        }
        if path is not None:
            from pathlib import Path

            Path(path).write_text(json.dumps(doc, indent=1, default=str) + "\n")
        return doc


def offload_counters(engine, at: float | None = None) -> list[dict]:
    """Chrome ``C`` events for the worker-pool offload backend (§15).

    Offload telemetry is wall-clock (job/queue-wait/exec times vary run
    to run), so it is **never** part of the default trace — the
    serial-vs-parallel trace bit-identity contract depends on that.
    This helper is the explicit opt-in: pass its result to
    ``QueryTrace.to_chrome_json(counters=offload_counters(engine))`` to
    see pool jobs, bytes each way, and exec/wait milliseconds as
    counter tracks next to the virtual-time spans.  Returns ``[]`` on a
    serial engine.
    """
    offload = getattr(engine, "offload", None)
    if offload is None:
        return []
    snapshot = offload.stats.snapshot()
    ts = (engine.now if at is None else at) * 1e6
    return [
        {
            "name": f"offload {key}",
            "ph": "C",
            "ts": ts,
            "tid": 0,
            "args": {key: value},
        }
        for key, value in snapshot.items()
        if isinstance(value, (int, float))
    ]


def throughput_counters(tracker) -> list[dict]:
    """Chrome ``C`` events from a ThroughputTracker's per-stage samples.

    Each stage contributes two counter tracks: cumulative output rows and
    the current stage DOP — the raw material behind Figures 23-30."""
    events: list[dict] = []
    if tracker is None:
        return events
    for stage_id, series in tracker.stages.items():
        for at, rows in zip(series.rows.times, series.rows.values):
            events.append(
                {
                    "name": f"stage{stage_id} rows",
                    "ph": "C",
                    "ts": at * 1e6,
                    "tid": 0,
                    "args": {"rows": rows},
                }
            )
        for at, dop in zip(series.dop.times, series.dop.values):
            events.append(
                {
                    "name": f"stage{stage_id} dop",
                    "ph": "C",
                    "ts": at * 1e6,
                    "tid": 0,
                    "args": {"dop": dop},
                }
            )
    return events
