"""``repro.obs`` — structured tracing, profiling, and metrics.

The observability layer of the engine: a span-tree :class:`Tracer` on
the virtual clock (:mod:`~repro.obs.trace`), Chrome trace-event export
(:mod:`~repro.obs.export`), wall-clock operator profiling
(:mod:`~repro.obs.profile`), and a counters/gauges registry
(:mod:`~repro.obs.metrics`).  See DESIGN.md §9.
"""

from .export import QueryTrace, offload_counters, throughput_counters
from .metrics import Counter, MetricsRegistry
from .profile import OpProfile, Profiler, ProfileReport
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "MetricsRegistry",
    "NullTracer",
    "NULL_TRACER",
    "offload_counters",
    "OpProfile",
    "Profiler",
    "ProfileReport",
    "QueryTrace",
    "Span",
    "Tracer",
    "throughput_counters",
]
