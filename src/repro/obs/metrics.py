"""Counters/gauges registry for the obs layer.

Absorbs the ad-hoc counters scattered through the engine (RPC totals,
recovery stats, fault-injector history, kernel event counts) behind one
``MetricsRegistry``.  Counters are plain monotonically increasing values
owned by the registry; gauges are callables sampled lazily at
``snapshot()`` time, so registering one costs nothing on the hot path.

A gauge callable may return a scalar or a ``dict`` — dict results are
flattened into dotted keys (``recovery.restarts``), which lets existing
``stats()``-style helpers plug in unchanged.
"""

from __future__ import annotations


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class MetricsRegistry:
    """Central registry of counters and lazily sampled gauges."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter with this name."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn) -> None:
        """Register ``fn`` to be sampled at snapshot time under ``name``.

        ``fn`` takes no arguments and returns a scalar or a dict of
        scalars (flattened as ``name.key``)."""
        self._gauges[name] = fn

    def snapshot(self) -> dict:
        """Sample everything into one flat ``{name: value}`` dict."""
        out: dict = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, fn in self._gauges.items():
            try:
                value = fn()
            except Exception:  # a dead gauge must not break the snapshot
                continue
            if isinstance(value, dict):
                for key, sub in value.items():
                    out[f"{name}.{key}"] = sub
            else:
                out[name] = value
        return out

    def render(self) -> str:
        from ..metrics.report import render_table

        snap = self.snapshot()
        rows = [(key, snap[key]) for key in sorted(snap)]
        return render_table(["metric", "value"], rows)
