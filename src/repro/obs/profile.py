"""Wall-clock profiling of operator work (``repro.obs``).

The virtual clock explains *simulated* performance; this module explains
*real* Python performance.  When ``TraceConfig.profiling`` is on, the
driver wraps every operator ``process()``/``poll()`` call in a
``time.perf_counter_ns()`` pair and attributes the elapsed wall time to
``(query, stage, operator class)``.  The resulting report points perf
work (like the PR 2 kernel vectorization) at the hottest operator
directly, instead of spelunking a cProfile dump.

Profiling is observational only: it reads the host clock but never the
virtual clock, so virtual timings and answers are unaffected (the same
inertness contract as tracing; see ``obs.trace``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpProfile:
    """Accumulated wall-clock attribution for one operator at one stage."""

    query_id: int | None
    stage: int
    operator: str
    calls: int = 0
    rows: int = 0
    wall_ns: int = 0
    #: Highest tracked state size observed for this operator (bytes);
    #: stays 0 for stateless operators.
    peak_bytes: int = 0

    @property
    def wall_seconds(self) -> float:
        return self.wall_ns / 1e9

    @property
    def ns_per_row(self) -> float:
        return self.wall_ns / self.rows if self.rows else 0.0


class Profiler:
    """Registry of per-operator wall-clock samples."""

    def __init__(self):
        self.records: dict[tuple, OpProfile] = {}

    def record(
        self,
        query_id: int | None,
        stage: int,
        operator: str,
        wall_ns: int,
        rows: int,
        peak_bytes: int = 0,
    ) -> None:
        key = (query_id, stage, operator)
        entry = self.records.get(key)
        if entry is None:
            entry = self.records[key] = OpProfile(query_id, stage, operator)
        entry.calls += 1
        entry.rows += rows
        entry.wall_ns += wall_ns
        if peak_bytes > entry.peak_bytes:
            entry.peak_bytes = peak_bytes

    def report(self, query_id: int | None = None) -> "ProfileReport":
        """Entries for one query (or everything), hottest first."""
        entries = [
            e
            for e in self.records.values()
            if query_id is None or e.query_id == query_id
        ]
        entries.sort(key=lambda e: e.wall_ns, reverse=True)
        return ProfileReport(entries=entries, query_id=query_id)


@dataclass
class ProfileReport:
    """Wall-clock operator attribution, ready to print or post-process."""

    entries: list[OpProfile] = field(default_factory=list)
    query_id: int | None = None

    @property
    def total_wall_seconds(self) -> float:
        return sum(e.wall_seconds for e in self.entries)

    def top(self, n: int = 10) -> list[OpProfile]:
        return self.entries[:n]

    def by_operator(self) -> dict[str, float]:
        """Wall seconds summed over stages, keyed by operator class."""
        out: dict[str, float] = {}
        for entry in self.entries:
            out[entry.operator] = out.get(entry.operator, 0.0) + entry.wall_seconds
        return out

    def render(self, limit: int = 15) -> str:
        from ..metrics.report import render_table

        total = self.total_wall_seconds or 1.0
        rows = [
            (
                f"S{e.stage}",
                e.operator,
                e.calls,
                e.rows,
                f"{e.wall_seconds * 1e3:.2f}",
                f"{100 * e.wall_seconds / total:.1f}%",
            )
            for e in self.entries[:limit]
        ]
        header = ["stage", "operator", "calls", "rows", "wall ms", "share"]
        scope = "all queries" if self.query_id is None else f"query {self.query_id}"
        return (
            f"operator wall-clock profile ({scope}, "
            f"total {self.total_wall_seconds * 1e3:.1f} ms)\n"
            + render_table(header, rows)
        )
