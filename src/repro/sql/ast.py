"""Abstract syntax tree for the supported SQL dialect.

The dialect covers the TPC-H subset exercised by the paper: select lists
with aliases and aggregates, implicit and explicit (INNER/LEFT/CROSS)
joins, derived tables, WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, scalar and
EXISTS subqueries, CASE, BETWEEN, IN, LIKE, EXTRACT, date and interval
literals, and arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class ExprNode:
    """Base class for AST expressions (unbound; names unresolved)."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnName(ExprNode):
    """A possibly-qualified column reference, e.g. ``n1.n_name``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class NumberLiteral(ExprNode):
    text: str

    @property
    def is_integer(self) -> bool:
        return "." not in self.text and "e" not in self.text.lower()


@dataclass(frozen=True)
class StringLiteral(ExprNode):
    value: str


@dataclass(frozen=True)
class BooleanLiteral(ExprNode):
    value: bool


@dataclass(frozen=True)
class NullLiteral(ExprNode):
    pass


@dataclass(frozen=True)
class DateLiteral(ExprNode):
    """``DATE 'YYYY-MM-DD'``."""

    text: str


@dataclass(frozen=True)
class IntervalLiteral(ExprNode):
    """``INTERVAL '<n>' DAY|MONTH|YEAR``."""

    count: int
    unit: str  # "day" | "month" | "year"


@dataclass(frozen=True)
class UnaryOp(ExprNode):
    op: str  # "-" | "+" | "not"
    operand: ExprNode


@dataclass(frozen=True)
class BinaryOp(ExprNode):
    """Arithmetic, comparison, or logical binary operation."""

    op: str  # + - * / % = <> < <= > >= and or ||
    left: ExprNode
    right: ExprNode


@dataclass(frozen=True)
class BetweenOp(ExprNode):
    value: ExprNode
    low: ExprNode
    high: ExprNode
    negated: bool = False


@dataclass(frozen=True)
class InListOp(ExprNode):
    value: ExprNode
    options: tuple[ExprNode, ...]
    negated: bool = False


@dataclass(frozen=True)
class LikeOp(ExprNode):
    value: ExprNode
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class IsNullOp(ExprNode):
    value: ExprNode
    negated: bool = False


@dataclass(frozen=True)
class CaseExpr(ExprNode):
    whens: tuple[tuple[ExprNode, ExprNode], ...]
    default: Optional[ExprNode]


@dataclass(frozen=True)
class ExtractExpr(ExprNode):
    """``EXTRACT(YEAR|MONTH|DAY FROM expr)``."""

    unit: str
    source: ExprNode


@dataclass(frozen=True)
class CastExpr(ExprNode):
    value: ExprNode
    target: str  # type name


@dataclass(frozen=True)
class FunctionCall(ExprNode):
    """Aggregate or scalar function call, e.g. ``sum(x)``, ``count(*)``."""

    name: str
    args: tuple[ExprNode, ...]
    distinct: bool = False
    is_star: bool = False  # count(*)


@dataclass(frozen=True)
class ScalarSubquery(ExprNode):
    query: "SelectStatement"


@dataclass(frozen=True)
class ExistsSubquery(ExprNode):
    query: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(ExprNode):
    value: ExprNode
    query: "SelectStatement"
    negated: bool = False


# ---------------------------------------------------------------------------
# Relations
# ---------------------------------------------------------------------------
class RelationNode:
    """Base class for FROM-clause items."""

    __slots__ = ()


@dataclass(frozen=True)
class TableRef(RelationNode):
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(RelationNode):
    query: "SelectStatement"
    alias: str


@dataclass(frozen=True)
class JoinRef(RelationNode):
    """Explicit ``A JOIN B ON cond`` (or CROSS JOIN when cond is None)."""

    left: RelationNode
    right: RelationNode
    join_type: str  # "inner" | "left" | "cross"
    condition: Optional[ExprNode]


# ---------------------------------------------------------------------------
# Statement
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: ExprNode
    alias: Optional[str] = None
    is_star: bool = False


@dataclass(frozen=True)
class OrderItem:
    expr: ExprNode
    ascending: bool = True


@dataclass
class SelectStatement:
    items: list[SelectItem] = field(default_factory=list)
    relations: list[RelationNode] = field(default_factory=list)
    where: Optional[ExprNode] = None
    group_by: list[ExprNode] = field(default_factory=list)
    having: Optional[ExprNode] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


Node = Union[ExprNode, RelationNode, SelectStatement]
