"""Scalar helpers and aggregate function semantics.

This module centralises:

* LIKE pattern compilation (with fast paths for prefix/suffix/contains),
* type rules for arithmetic and aggregates,
* the partial/final decomposition used by the two-stage aggregation model
  (paper Section 4.1): ``partial_fields`` describes the state columns a
  partial aggregation emits and ``merge functions`` describe how the final
  aggregation combines them,
* vectorized hashing used for shuffle partitioning.
"""

from __future__ import annotations

import re
import zlib
from functools import lru_cache
from typing import Callable

import numpy as np

from ..errors import AnalysisError
from ..pages import ColumnType

AGGREGATE_FUNCTIONS = frozenset({"sum", "count", "avg", "min", "max"})


# ---------------------------------------------------------------------------
# LIKE
# ---------------------------------------------------------------------------
@lru_cache(maxsize=256)
def like_matcher(pattern: str) -> Callable[[str], bool]:
    """Compile a SQL LIKE pattern to a predicate over python strings."""
    if "_" not in pattern:
        body = pattern.strip("%")
        if "%" not in body:
            leading = pattern.startswith("%")
            trailing = pattern.endswith("%")
            if leading and trailing:
                return lambda s, b=body: b in s
            if trailing and not leading:
                return lambda s, b=body: s.startswith(b)
            if leading and not trailing:
                return lambda s, b=body: s.endswith(b)
            return lambda s, b=body: s == b
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL,
    )
    return lambda s, r=regex: r.match(s) is not None


# ---------------------------------------------------------------------------
# Type rules
# ---------------------------------------------------------------------------
def arithmetic_result_type(op: str, left: ColumnType, right: ColumnType) -> ColumnType:
    """Result type of ``left op right``; raises on nonsense combinations."""
    if op == "||":
        return ColumnType.STRING
    numeric = (ColumnType.INT64, ColumnType.FLOAT64)
    if left is ColumnType.DATE and right is ColumnType.INT64 and op in ("+", "-"):
        return ColumnType.DATE  # date +- days
    if left in numeric and right in numeric:
        if op == "/":
            return ColumnType.FLOAT64
        if ColumnType.FLOAT64 in (left, right):
            return ColumnType.FLOAT64
        return ColumnType.INT64
    raise AnalysisError(f"cannot apply {op} to {left.value} and {right.value}")


def comparable(left: ColumnType, right: ColumnType) -> bool:
    numeric = (ColumnType.INT64, ColumnType.FLOAT64)
    if left is right:
        return True
    if left in numeric and right in numeric:
        return True
    return {left, right} == {ColumnType.DATE, ColumnType.INT64}


def aggregate_result_type(function: str, arg_type: ColumnType | None) -> ColumnType:
    if function == "count":
        return ColumnType.INT64
    if arg_type is None:
        raise AnalysisError(f"{function} requires an argument")
    if function == "avg":
        return ColumnType.FLOAT64
    if function in ("min", "max"):
        return arg_type
    if function == "sum":
        if arg_type is ColumnType.FLOAT64:
            return ColumnType.FLOAT64
        if arg_type is ColumnType.INT64:
            return ColumnType.INT64
        raise AnalysisError(f"cannot sum {arg_type.value}")
    raise AnalysisError(f"unknown aggregate {function}")


def partial_fields(function: str, arg_type: ColumnType | None) -> list[ColumnType]:
    """State column types emitted by partial aggregation for one call.

    ``avg`` carries (sum, count); everything else carries one value.
    """
    if function == "count":
        return [ColumnType.INT64]
    if function == "avg":
        return [ColumnType.FLOAT64, ColumnType.INT64]
    return [aggregate_result_type(function, arg_type)]


# ---------------------------------------------------------------------------
# Vectorized grouped reduction primitives
# ---------------------------------------------------------------------------
def grouped_sum(codes: np.ndarray, values: np.ndarray, ngroups: int) -> np.ndarray:
    out = np.bincount(codes, weights=values.astype(np.float64, copy=False), minlength=ngroups)
    if values.dtype == np.int64:
        return out.astype(np.int64)
    return out


def grouped_count(codes: np.ndarray, ngroups: int) -> np.ndarray:
    return np.bincount(codes, minlength=ngroups).astype(np.int64)


def grouped_min(codes: np.ndarray, values: np.ndarray, ngroups: int) -> np.ndarray:
    if values.dtype == object:
        out: list = [None] * ngroups
        for code, value in zip(codes.tolist(), values.tolist()):
            if out[code] is None or value < out[code]:
                out[code] = value
        arr = np.empty(ngroups, dtype=object)
        arr[:] = out
        return arr
    out_arr = np.full(ngroups, _max_init(values.dtype), dtype=values.dtype)
    np.minimum.at(out_arr, codes, values)
    return out_arr


def grouped_max(codes: np.ndarray, values: np.ndarray, ngroups: int) -> np.ndarray:
    if values.dtype == object:
        out: list = [None] * ngroups
        for code, value in zip(codes.tolist(), values.tolist()):
            if out[code] is None or value > out[code]:
                out[code] = value
        arr = np.empty(ngroups, dtype=object)
        arr[:] = out
        return arr
    out_arr = np.full(ngroups, _min_init(values.dtype), dtype=values.dtype)
    np.maximum.at(out_arr, codes, values)
    return out_arr


def _max_init(dtype: np.dtype):
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).max
    return np.inf


def _min_init(dtype: np.dtype):
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).min
    return -np.inf


def group_codes(key_columns: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Assign a dense group code to each row given its key columns.

    Returns ``(codes, unique_key_columns)`` where ``codes[i]`` indexes into
    the unique key arrays.  Works for any mix of numeric and object columns.
    """
    if not key_columns:
        n = 0
        return np.zeros(n, dtype=np.int64), []
    if len(key_columns) == 1:
        uniques, codes = np.unique(key_columns[0], return_inverse=True)
        return codes.astype(np.int64), [uniques]
    per_col_codes = []
    per_col_uniques = []
    for col in key_columns:
        uniq, inv = np.unique(col, return_inverse=True)
        per_col_codes.append(inv.astype(np.int64))
        per_col_uniques.append(uniq)
    combined = per_col_codes[0]
    for inv, uniq in zip(per_col_codes[1:], per_col_uniques[1:]):
        combined = combined * len(uniq) + inv
    final_uniques, codes = np.unique(combined, return_inverse=True)
    # Map combined codes back to one representative row per group.
    first_row = np.zeros(len(final_uniques), dtype=np.int64)
    seen = np.full(len(final_uniques), -1, dtype=np.int64)
    order = np.arange(len(codes))
    # reverse pass keeps the first occurrence
    seen[codes[::-1]] = order[::-1]
    first_row = seen
    unique_cols = [col[first_row] for col in key_columns]
    return codes.astype(np.int64), unique_cols


# ---------------------------------------------------------------------------
# Hash partitioning
# ---------------------------------------------------------------------------
_MIX = np.uint64(0x9E3779B97F4A7C15)


def hash_columns(columns: list[np.ndarray]) -> np.ndarray:
    """Stable vectorized 64-bit hash of row keys for shuffle partitioning."""
    if not columns:
        raise ValueError("hash_columns needs at least one column")
    n = len(columns[0])
    acc = np.zeros(n, dtype=np.uint64)
    for col in columns:
        if col.dtype == object:
            # crc32 keeps shuffle partitioning deterministic across
            # processes (hash() is randomized per interpreter run).
            h = np.fromiter(
                (zlib.crc32(str(v).encode("utf-8")) for v in col.tolist()),
                dtype=np.uint64,
                count=n,
            )
        else:
            h = col.view(np.uint64) if col.dtype == np.int64 else col.astype(np.float64).view(np.uint64)
        with np.errstate(over="ignore"):
            acc = (acc ^ h) * _MIX
            acc ^= acc >> np.uint64(29)
    return acc


def partition_assignments(columns: list[np.ndarray], partitions: int) -> np.ndarray:
    """Partition index per row (hash mod partitions)."""
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    return (hash_columns(columns) % np.uint64(partitions)).astype(np.int64)
