"""Scalar helpers and aggregate function semantics.

This module centralises:

* LIKE pattern compilation (with fast paths for prefix/suffix/contains),
* type rules for arithmetic and aggregates,
* the partial/final decomposition used by the two-stage aggregation model
  (paper Section 4.1): ``partial_fields`` describes the state columns a
  partial aggregation emits and ``merge functions`` describe how the final
  aggregation combines them,
* vectorized hashing used for shuffle partitioning.
"""

from __future__ import annotations

import re
import zlib
from functools import lru_cache
from typing import Callable

import numpy as np

from ..errors import AnalysisError
from ..pages import ColumnType

AGGREGATE_FUNCTIONS = frozenset({"sum", "count", "avg", "min", "max"})


# ---------------------------------------------------------------------------
# LIKE
# ---------------------------------------------------------------------------
@lru_cache(maxsize=256)
def like_matcher(pattern: str) -> Callable[[str], bool]:
    """Compile a SQL LIKE pattern to a predicate over python strings."""
    if "_" not in pattern:
        body = pattern.strip("%")
        if "%" not in body:
            leading = pattern.startswith("%")
            trailing = pattern.endswith("%")
            if leading and trailing:
                return lambda s, b=body: b in s
            if trailing and not leading:
                return lambda s, b=body: s.startswith(b)
            if leading and not trailing:
                return lambda s, b=body: s.endswith(b)
            return lambda s, b=body: s == b
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL,
    )
    return lambda s, r=regex: r.match(s) is not None


# ---------------------------------------------------------------------------
# Type rules
# ---------------------------------------------------------------------------
def arithmetic_result_type(op: str, left: ColumnType, right: ColumnType) -> ColumnType:
    """Result type of ``left op right``; raises on nonsense combinations."""
    if op == "||":
        return ColumnType.STRING
    numeric = (ColumnType.INT64, ColumnType.FLOAT64)
    if left is ColumnType.DATE and right is ColumnType.INT64 and op in ("+", "-"):
        return ColumnType.DATE  # date +- days
    if left in numeric and right in numeric:
        if op == "/":
            return ColumnType.FLOAT64
        if ColumnType.FLOAT64 in (left, right):
            return ColumnType.FLOAT64
        return ColumnType.INT64
    raise AnalysisError(f"cannot apply {op} to {left.value} and {right.value}")


def comparable(left: ColumnType, right: ColumnType) -> bool:
    numeric = (ColumnType.INT64, ColumnType.FLOAT64)
    if left is right:
        return True
    if left in numeric and right in numeric:
        return True
    return {left, right} == {ColumnType.DATE, ColumnType.INT64}


def aggregate_result_type(function: str, arg_type: ColumnType | None) -> ColumnType:
    if function == "count":
        return ColumnType.INT64
    if arg_type is None:
        raise AnalysisError(f"{function} requires an argument")
    if function == "avg":
        return ColumnType.FLOAT64
    if function in ("min", "max"):
        return arg_type
    if function == "sum":
        if arg_type is ColumnType.FLOAT64:
            return ColumnType.FLOAT64
        if arg_type is ColumnType.INT64:
            return ColumnType.INT64
        raise AnalysisError(f"cannot sum {arg_type.value}")
    raise AnalysisError(f"unknown aggregate {function}")


def partial_fields(function: str, arg_type: ColumnType | None) -> list[ColumnType]:
    """State column types emitted by partial aggregation for one call.

    ``avg`` carries (sum, count); everything else carries one value.
    """
    if function == "count":
        return [ColumnType.INT64]
    if function == "avg":
        return [ColumnType.FLOAT64, ColumnType.INT64]
    return [aggregate_result_type(function, arg_type)]


# ---------------------------------------------------------------------------
# Vectorized grouped reduction primitives
# ---------------------------------------------------------------------------
def grouped_sum(codes: np.ndarray, values: np.ndarray, ngroups: int) -> np.ndarray:
    out = np.bincount(codes, weights=values.astype(np.float64, copy=False), minlength=ngroups)
    if values.dtype == np.int64:
        return out.astype(np.int64)
    return out


def grouped_count(codes: np.ndarray, ngroups: int) -> np.ndarray:
    return np.bincount(codes, minlength=ngroups).astype(np.int64)


def _grouped_extreme_object(
    codes: np.ndarray, values: np.ndarray, ngroups: int, want_max: bool
) -> np.ndarray:
    """Sort-based per-group min/max for object (string) columns.

    Rows are stably sorted by value then by group code, so within each
    group values appear in ascending order; the group's first (min) or
    last (max) sorted row is the answer.  Only the argsort compares
    python objects — no per-row python loop.
    """
    vorder = np.argsort(values, kind="stable")
    order = vorder[np.argsort(codes[vorder], kind="stable")]
    sorted_codes = codes[order]
    side = "right" if want_max else "left"
    pos = np.searchsorted(sorted_codes, np.arange(ngroups), side=side)
    if want_max:
        pos = pos - 1
    return values[order[pos]]


def grouped_min(codes: np.ndarray, values: np.ndarray, ngroups: int) -> np.ndarray:
    if values.dtype == object:
        return _grouped_extreme_object(codes, values, ngroups, want_max=False)
    out_arr = np.full(ngroups, _max_init(values.dtype), dtype=values.dtype)
    np.minimum.at(out_arr, codes, values)
    return out_arr


def grouped_max(codes: np.ndarray, values: np.ndarray, ngroups: int) -> np.ndarray:
    if values.dtype == object:
        return _grouped_extreme_object(codes, values, ngroups, want_max=True)
    out_arr = np.full(ngroups, _min_init(values.dtype), dtype=values.dtype)
    np.maximum.at(out_arr, codes, values)
    return out_arr


def _max_init(dtype: np.dtype):
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).max
    return np.inf


def _min_init(dtype: np.dtype):
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).min
    return -np.inf


def group_codes(key_columns: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Assign a dense group code to each row given its key columns.

    Returns ``(codes, unique_key_columns)`` where ``codes[i]`` indexes into
    the unique key arrays.  Works for any mix of numeric and object columns.
    """
    if not key_columns:
        n = 0
        return np.zeros(n, dtype=np.int64), []
    if len(key_columns) == 1:
        col = key_columns[0]
        fast = _int_factorize(col)
        if fast is not None:
            codes, uniques = fast
            return codes, [uniques]
        uniques, codes = np.unique(col, return_inverse=True)
        return codes.astype(np.int64), [uniques]
    codes = _pack_int_keys(key_columns)
    if codes is None:
        codes = _factorized_pack(key_columns)
    ngroups = int(codes.max()) + 1 if len(codes) else 0
    # Map group codes back to one representative row per group (reverse
    # pass keeps the first occurrence in row order).
    first_row = np.full(ngroups, -1, dtype=np.int64)
    order = np.arange(len(codes))
    first_row[codes[::-1]] = order[::-1]
    unique_cols = [col[first_row] for col in key_columns]
    return codes, unique_cols


def _int_factorize(col: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
    """``np.unique(col, return_inverse=True)`` for small-span int columns.

    Dictionary-encoded group keys and near-dense TPC-H join keys have
    value spans close to their distinct counts; a bincount + cumsum remap
    beats the sort inside ``np.unique`` roughly 3x there.  Returns
    ``(codes, uniques)`` with identical values/ordering to ``np.unique``,
    or ``None`` when the column is non-integer or too sparse.
    """
    n = len(col)
    if n == 0 or not np.issubdtype(col.dtype, np.integer):
        return None
    base = int(col.min())
    span = int(col.max()) - base + 1
    if span > 4 * n + 1024:
        return None
    shifted = col.astype(np.int64, copy=False) - base
    counts = np.bincount(shifted, minlength=span)
    present = counts > 0
    remap = np.cumsum(present) - 1
    uniques = (np.flatnonzero(present) + base).astype(col.dtype, copy=False)
    return remap[shifted], uniques


def _pack_int_keys(key_columns: list[np.ndarray]) -> np.ndarray | None:
    """All-integer fast path: pack (value - min) columns mixed-radix.

    Skips the per-column ``np.unique`` calls entirely — one min/max scan
    per column plus a single unique over the packed keys.  The group
    ordering (lexicographic by column value) is identical to the
    factorized path.  Returns ``None`` when a column is non-integer or
    the value spans would overflow int64.
    """
    if not all(np.issubdtype(col.dtype, np.integer) for col in key_columns):
        return None
    n = len(key_columns[0])
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    bases = [int(col.min()) for col in key_columns]
    spans = [int(col.max()) - base + 1 for col, base in zip(key_columns, bases)]
    span_product = 1
    for span in spans:
        span_product *= span
    if span_product > np.iinfo(np.int64).max:
        return None
    packed = key_columns[0].astype(np.int64, copy=True)
    packed -= bases[0]
    for col, base, span in zip(key_columns[1:], bases[1:], spans[1:]):
        packed *= span
        packed += col.astype(np.int64, copy=False) - base
    fast = _int_factorize(packed)
    if fast is not None:
        return fast[0]
    _, codes = np.unique(packed, return_inverse=True)
    return codes.astype(np.int64)


def _factorized_pack(key_columns: list[np.ndarray]) -> np.ndarray:
    """General multi-column path: factorize per column, then pack codes."""
    per_col_codes = []
    per_col_uniques = []
    for col in key_columns:
        uniq, inv = np.unique(col, return_inverse=True)
        per_col_codes.append(inv.astype(np.int64))
        per_col_uniques.append(uniq)
    # Mixed-radix packing of the per-column codes.  The radix product is
    # checked with python (arbitrary-precision) ints first: if it exceeds
    # int64 the packed codes would silently wrap, so fall back to a
    # lexsort-based grouping that never multiplies.
    radix_product = 1
    for uniq in per_col_uniques:
        radix_product *= max(1, len(uniq))
    if radix_product > np.iinfo(np.int64).max:
        codes, _ = _lexsort_codes(per_col_codes)
        return codes
    combined = per_col_codes[0]
    for inv, uniq in zip(per_col_codes[1:], per_col_uniques[1:]):
        combined = combined * len(uniq) + inv
    _, codes = np.unique(combined, return_inverse=True)
    return codes.astype(np.int64)


def _lexsort_codes(per_col_codes: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Dense group codes via lexsort; overflow-proof multi-column path.

    Produces the same lexicographic group ordering (first column most
    significant) as the mixed-radix packing, without packing.
    """
    n = len(per_col_codes[0])
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0
    # np.lexsort sorts by the *last* key first, so reverse for col-0-major.
    order = np.lexsort(tuple(per_col_codes[::-1]))
    boundary = np.zeros(n, dtype=bool)
    for col in per_col_codes:
        sorted_col = col[order]
        boundary[1:] |= sorted_col[1:] != sorted_col[:-1]
    gids_sorted = np.cumsum(boundary)
    codes = np.empty(n, dtype=np.int64)
    codes[order] = gids_sorted
    return codes, int(gids_sorted[-1]) + 1


class ObjectDictEncoder:
    """Incremental dictionary encoder for object (string) key columns.

    Aggregation group keys are typically low-cardinality; once the
    dictionary has seen every distinct value of a column, encoding a page
    is one ``np.fromiter`` over a C-level ``map(dict.__getitem__, ...)`` —
    flat in the dictionary size, no python-object argsort inside
    ``np.unique``, no per-known-value equality scan.  A ``KeyError``
    signals an unseen value, and the page falls back to the learning path
    (one dict lookup per *distinct* unseen value).
    """

    __slots__ = ("values", "code_of")

    def __init__(self):
        self.values: list = []
        self.code_of: dict = {}

    def value_array(self) -> np.ndarray:
        arr = np.empty(len(self.values), dtype=object)
        arr[:] = self.values
        return arr

    def encode(self, col: np.ndarray) -> np.ndarray:
        """Dense int64 code per value; codes are stable across pages."""
        n = len(col)
        if n == 0:
            return np.full(n, -1, dtype=np.int64)
        if self.code_of:
            try:
                return np.fromiter(
                    map(self.code_of.__getitem__, col.tolist()),
                    dtype=np.int64,
                    count=n,
                )
            except KeyError:
                pass
        out = np.full(n, -1, dtype=np.int64)
        self._learn(col, out, np.ones(n, dtype=bool))
        return out

    def _learn(self, col: np.ndarray, out: np.ndarray, mask: np.ndarray) -> None:
        uvals, inv = np.unique(col[mask], return_inverse=True)
        lut = np.empty(len(uvals), dtype=np.int64)
        code_of = self.code_of
        for i, value in enumerate(uvals.tolist()):
            code = code_of.get(value)
            if code is None:
                code = len(self.values)
                code_of[value] = code
                self.values.append(value)
            lut[i] = code
        out[mask] = lut[inv]


# ---------------------------------------------------------------------------
# Hash partitioning
# ---------------------------------------------------------------------------
_MIX = np.uint64(0x9E3779B97F4A7C15)


def hash_columns(columns: list[np.ndarray]) -> np.ndarray:
    """Stable vectorized 64-bit hash of row keys for shuffle partitioning."""
    if not columns:
        raise ValueError("hash_columns needs at least one column")
    n = len(columns[0])
    acc = np.zeros(n, dtype=np.uint64)
    for col in columns:
        if col.dtype == object:
            # crc32 keeps shuffle partitioning deterministic across
            # processes (hash() is randomized per interpreter run).
            h = np.fromiter(
                (zlib.crc32(str(v).encode("utf-8")) for v in col.tolist()),
                dtype=np.uint64,
                count=n,
            )
        else:
            h = col.view(np.uint64) if col.dtype == np.int64 else col.astype(np.float64).view(np.uint64)
        with np.errstate(over="ignore"):
            acc = (acc ^ h) * _MIX
            acc ^= acc >> np.uint64(29)
    return acc


def partition_assignments(columns: list[np.ndarray], partitions: int) -> np.ndarray:
    """Partition index per row (hash mod partitions)."""
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    return (hash_columns(columns) % np.uint64(partitions)).astype(np.int64)
