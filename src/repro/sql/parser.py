"""Recursive-descent SQL parser producing the AST in :mod:`repro.sql.ast`."""

from __future__ import annotations

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(sql: str) -> ast.SelectStatement:
    """Parse a single SELECT statement."""
    parser = Parser(tokenize(sql))
    stmt = parser.parse_select()
    parser.expect_symbol_optional(";")
    parser.expect_eof()
    return stmt


def parse_expression(sql: str) -> ast.ExprNode:
    """Parse a standalone expression (used by tests and the script DSL)."""
    parser = Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message} at line {tok.line}, column {tok.column} (near {tok.value!r})")

    def accept_keyword(self, *words: str) -> Token | None:
        if self.current.type is TokenType.KEYWORD and self.current.value in words:
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            raise self.error(f"expected {word}")
        return token

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.current.type is TokenType.SYMBOL and self.current.value in symbols:
            return self.advance()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        token = self.accept_symbol(symbol)
        if token is None:
            raise self.error(f"expected {symbol!r}")
        return token

    def expect_symbol_optional(self, symbol: str) -> None:
        self.accept_symbol(symbol)

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected trailing input")

    def expect_ident(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        # Allow non-reserved-ish keywords as identifiers where unambiguous.
        if self.current.type is TokenType.KEYWORD and self.current.value in ("YEAR", "MONTH", "DAY", "DATE"):
            return self.advance().value.lower()
        raise self.error("expected identifier")

    # -- statement ----------------------------------------------------------
    def parse_select(self) -> ast.SelectStatement:
        self.expect_keyword("SELECT")
        stmt = ast.SelectStatement()
        if self.accept_keyword("DISTINCT"):
            stmt.distinct = True
        stmt.items = self._parse_select_items()
        if self.accept_keyword("FROM"):
            stmt.relations = self._parse_relations()
        if self.accept_keyword("WHERE"):
            stmt.where = self.parse_expr()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            stmt.group_by = self._parse_expr_list()
        if self.accept_keyword("HAVING"):
            stmt.having = self.parse_expr()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            stmt.order_by = self._parse_order_items()
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.type is not TokenType.NUMBER or "." in token.value:
                raise self.error("LIMIT expects an integer")
            self.advance()
            stmt.limit = int(token.value)
        return stmt

    def _parse_select_items(self) -> list[ast.SelectItem]:
        items = []
        while True:
            if self.accept_symbol("*"):
                items.append(ast.SelectItem(ast.ColumnName("*"), is_star=True))
            else:
                expr = self.parse_expr()
                alias = None
                if self.accept_keyword("AS"):
                    alias = self.expect_ident()
                elif self.current.type is TokenType.IDENT:
                    alias = self.advance().value
                items.append(ast.SelectItem(expr, alias))
            if not self.accept_symbol(","):
                return items

    def _parse_expr_list(self) -> list[ast.ExprNode]:
        exprs = [self.parse_expr()]
        while self.accept_symbol(","):
            exprs.append(self.parse_expr())
        return exprs

    def _parse_order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            ascending = True
            if self.accept_keyword("DESC"):
                ascending = False
            else:
                self.accept_keyword("ASC")
            items.append(ast.OrderItem(expr, ascending))
            if not self.accept_symbol(","):
                return items

    # -- relations ------------------------------------------------------------
    def _parse_relations(self) -> list[ast.RelationNode]:
        relations = [self._parse_joined_relation()]
        while self.accept_symbol(","):
            relations.append(self._parse_joined_relation())
        return relations

    def _parse_joined_relation(self) -> ast.RelationNode:
        left = self._parse_primary_relation()
        while True:
            join_type = None
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                join_type = "cross"
            elif self.accept_keyword("INNER"):
                self.expect_keyword("JOIN")
                join_type = "inner"
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                join_type = "left"
            elif self.accept_keyword("JOIN"):
                join_type = "inner"
            if join_type is None:
                return left
            right = self._parse_primary_relation()
            condition = None
            if join_type != "cross":
                self.expect_keyword("ON")
                condition = self.parse_expr()
            left = ast.JoinRef(left, right, join_type, condition)

    def _parse_primary_relation(self) -> ast.RelationNode:
        if self.accept_symbol("("):
            if self.current.matches_keyword("SELECT"):
                query = self.parse_select()
                self.expect_symbol(")")
                self.accept_keyword("AS")
                alias = self.expect_ident()
                return ast.SubqueryRef(query, alias)
            relation = self._parse_joined_relation()
            self.expect_symbol(")")
            return relation
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.TableRef(name, alias)

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> ast.ExprNode:
        return self._parse_or()

    def _parse_or(self) -> ast.ExprNode:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.ExprNode:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.ExprNode:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.ExprNode:
        if self.current.matches_keyword("EXISTS"):
            self.advance()
            self.expect_symbol("(")
            query = self.parse_select()
            self.expect_symbol(")")
            return ast.ExistsSubquery(query)

        left = self._parse_additive()
        while True:
            negated = False
            if self.current.matches_keyword("NOT"):
                nxt = self._tokens[self._pos + 1]
                if nxt.type is TokenType.KEYWORD and nxt.value in ("IN", "BETWEEN", "LIKE"):
                    self.advance()
                    negated = True
                else:
                    return left
            if self.accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                left = ast.BetweenOp(left, low, high, negated)
                continue
            if self.accept_keyword("IN"):
                self.expect_symbol("(")
                if self.current.matches_keyword("SELECT"):
                    query = self.parse_select()
                    self.expect_symbol(")")
                    left = ast.InSubquery(left, query, negated)
                else:
                    options = tuple(self._parse_expr_list())
                    self.expect_symbol(")")
                    left = ast.InListOp(left, options, negated)
                continue
            if self.accept_keyword("LIKE"):
                pattern = self.current
                if pattern.type is not TokenType.STRING:
                    raise self.error("LIKE expects a string pattern")
                self.advance()
                left = ast.LikeOp(left, pattern.value, negated)
                continue
            if self.accept_keyword("IS"):
                negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                left = ast.IsNullOp(left, negated)
                continue
            if (
                self.current.type is TokenType.SYMBOL
                and self.current.value in _COMPARISON_OPS
            ):
                op = self.advance().value
                if op == "!=":
                    op = "<>"
                if self.current.type is TokenType.SYMBOL and self.current.value == "(" and self._tokens[self._pos + 1].matches_keyword("SELECT"):
                    self.advance()
                    query = self.parse_select()
                    self.expect_symbol(")")
                    left = ast.BinaryOp(op, left, ast.ScalarSubquery(query))
                else:
                    left = ast.BinaryOp(op, left, self._parse_additive())
                continue
            return left

    def _parse_additive(self) -> ast.ExprNode:
        left = self._parse_multiplicative()
        while True:
            token = self.accept_symbol("+", "-", "||")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.ExprNode:
        left = self._parse_unary()
        while True:
            token = self.accept_symbol("*", "/", "%")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self._parse_unary())

    def _parse_unary(self) -> ast.ExprNode:
        token = self.accept_symbol("-", "+")
        if token is not None:
            return ast.UnaryOp(token.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.ExprNode:
        token = self.current

        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.NumberLiteral(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.StringLiteral(token.value)
        if token.matches_keyword("TRUE"):
            self.advance()
            return ast.BooleanLiteral(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return ast.BooleanLiteral(False)
        if token.matches_keyword("NULL"):
            self.advance()
            return ast.NullLiteral()
        if token.matches_keyword("DATE"):
            self.advance()
            lit = self.current
            if lit.type is not TokenType.STRING:
                raise self.error("DATE expects a string literal")
            self.advance()
            return ast.DateLiteral(lit.value)
        if token.matches_keyword("INTERVAL"):
            self.advance()
            count_token = self.current
            if count_token.type is not TokenType.STRING:
                raise self.error("INTERVAL expects a quoted count")
            self.advance()
            unit_token = self.accept_keyword("DAY", "MONTH", "YEAR")
            if unit_token is None:
                raise self.error("INTERVAL expects DAY, MONTH or YEAR")
            return ast.IntervalLiteral(int(count_token.value), unit_token.value.lower())
        if token.matches_keyword("EXTRACT"):
            self.advance()
            self.expect_symbol("(")
            unit_token = self.accept_keyword("YEAR", "MONTH", "DAY")
            if unit_token is None:
                raise self.error("EXTRACT expects YEAR, MONTH or DAY")
            self.expect_keyword("FROM")
            source = self.parse_expr()
            self.expect_symbol(")")
            return ast.ExtractExpr(unit_token.value.lower(), source)
        if token.matches_keyword("CASE"):
            return self._parse_case()
        if token.matches_keyword("CAST"):
            self.advance()
            self.expect_symbol("(")
            value = self.parse_expr()
            self.expect_keyword("AS")
            target = self.expect_ident()
            self.expect_symbol(")")
            return ast.CastExpr(value, target)
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATE_KEYWORDS:
            return self._parse_function_call(token.value.lower())
        if token.type is TokenType.SYMBOL and token.value == "(":
            self.advance()
            if self.current.matches_keyword("SELECT"):
                query = self.parse_select()
                self.expect_symbol(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.type is TokenType.IDENT:
            nxt = self._tokens[self._pos + 1]
            if nxt.type is TokenType.SYMBOL and nxt.value == "(":
                return self._parse_function_call(token.value)
            self.advance()
            if self.accept_symbol("."):
                column = self.expect_ident()
                return ast.ColumnName(column, qualifier=token.value)
            return ast.ColumnName(token.value)
        raise self.error("expected expression")

    def _parse_case(self) -> ast.ExprNode:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.ExprNode, ast.ExprNode]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            whens.append((cond, value))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseExpr(tuple(whens), default)

    def _parse_function_call(self, name: str) -> ast.ExprNode:
        self.advance()  # function name token
        self.expect_symbol("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        if self.accept_symbol("*"):
            self.expect_symbol(")")
            return ast.FunctionCall(name, (), distinct=distinct, is_star=True)
        args: tuple[ast.ExprNode, ...] = ()
        if not (self.current.type is TokenType.SYMBOL and self.current.value == ")"):
            args = tuple(self._parse_expr_list())
        self.expect_symbol(")")
        return ast.FunctionCall(name, args, distinct=distinct)
