"""Hand-written SQL lexer."""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, SYMBOLS, Token, TokenType


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens, ending with a single EOF token.

    Supports ``--`` line comments, single-quoted strings with ``''``
    escaping, integer/decimal numbers, identifiers (case-insensitive;
    keywords are upper-cased), and the operator set in ``SYMBOLS``.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(sql)

    def here(pos: int) -> tuple[int, int]:
        return line, pos - line_start + 1

    while i < n:
        ch = sql[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    ln, col = here(start)
                    raise LexError("unterminated string literal", start, ln, col)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(sql[i])
                i += 1
            ln, col = here(start)
            tokens.append(Token(TokenType.STRING, "".join(parts), start, ln, col))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
                if sql[i] == ".":
                    # ``1.`` followed by an identifier is a qualified name,
                    # not a decimal — only consume the dot before a digit.
                    if i + 1 >= n or not sql[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            # Scientific notation: 1e9, 2.5E-3.
            if i < n and sql[i] in "eE":
                j = i + 1
                if j < n and sql[j] in "+-":
                    j += 1
                if j < n and sql[j].isdigit():
                    seen_dot = True
                    i = j
                    while i < n and sql[i].isdigit():
                        i += 1
            ln, col = here(start)
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start, ln, col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            ln, col = here(start)
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start, ln, col))
            else:
                tokens.append(Token(TokenType.IDENT, word.lower(), start, ln, col))
            continue
        matched = False
        for sym in SYMBOLS:
            if sql.startswith(sym, i):
                ln, col = here(i)
                tokens.append(Token(TokenType.SYMBOL, sym, i, ln, col))
                i += len(sym)
                matched = True
                break
        if not matched:
            ln, col = here(i)
            raise LexError(f"unexpected character {ch!r}", i, ln, col)

    ln, col = here(i)
    tokens.append(Token(TokenType.EOF, "", i, ln, col))
    return tokens
