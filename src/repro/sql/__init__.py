"""SQL front end: lexer, parser, analyzer, bound expressions."""

from .lexer import tokenize
from .parser import parse, parse_expression

__all__ = ["parse", "parse_expression", "tokenize"]
