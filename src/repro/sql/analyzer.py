"""Semantic analysis: scopes and expression binding.

The binder resolves AST expressions against a :class:`Scope` (an ordered
list of relations with optional binding names) to typed, vectorized
:class:`~repro.sql.expressions.BoundExpr` trees.  Column references that
resolve to an *enclosing* scope become :class:`OuterColumn` markers, which
the planner's decorrelation machinery consumes (Q2-style correlated scalar
subqueries, Q4-style EXISTS).

Subquery AST nodes are handled by the planner before binding; if one
reaches the binder it is an unsupported position (e.g. a subquery inside a
CASE), reported as an :class:`~repro.errors.AnalysisError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..pages import ColumnType, Schema
from ..util import add_months, add_years, date_to_days
from . import ast
from .expressions import (
    Arithmetic,
    BoolAnd,
    BoolNot,
    BoolOr,
    BoundExpr,
    CaseWhen,
    Cast,
    Comparison,
    Constant,
    ExtractDatePart,
    InputRef,
    InSet,
    IsNull,
    LikeMatch,
    Negate,
)
from .functions import AGGREGATE_FUNCTIONS, arithmetic_result_type, comparable


@dataclass(frozen=True)
class OuterColumn(BoundExpr):
    """A column resolved in an enclosing query scope (correlation marker).

    Never evaluated directly — decorrelation replaces it with a join key.
    ``levels`` counts how many scopes up the column resolved (1 = parent).
    """

    levels: int
    index: int
    type: ColumnType
    name: str = ""

    def evaluate(self, page):  # pragma: no cover - defensive
        raise AnalysisError(f"correlated column {self.name} not decorrelated")

    def __str__(self) -> str:
        return f"outer({self.levels}).${self.index}"


@dataclass(frozen=True)
class _IntervalValue:
    """Transient binder value for INTERVAL literals (must be folded)."""

    count: int
    unit: str


class Scope:
    """An ordered set of relations visible to name resolution.

    Each relation is ``(binding_name | None, schema)``; columns get global
    positions in declaration order.  ``outer`` links to the enclosing query
    scope for correlated subqueries.
    """

    def __init__(
        self,
        relations: list[tuple[str | None, Schema]],
        outer: "Scope | None" = None,
    ):
        self.relations = list(relations)
        self.outer = outer
        self.offsets: list[int] = []
        total = 0
        for _, schema in self.relations:
            self.offsets.append(total)
            total += len(schema)
        self.total_columns = total

    # -- structure --------------------------------------------------------
    def global_schema(self) -> Schema:
        fields = []
        for _, schema in self.relations:
            fields.extend(schema.fields)
        return Schema(fields)

    def relation_of_column(self, global_index: int) -> int:
        """Index of the relation that owns a global column position."""
        for i in reversed(range(len(self.relations))):
            if global_index >= self.offsets[i]:
                return i
        raise IndexError(global_index)

    # -- resolution ----------------------------------------------------------
    def resolve(self, name: str, qualifier: str | None) -> tuple[int, int, ColumnType, str]:
        """Resolve a column to ``(levels_up, global_index, type, name)``."""
        found: list[tuple[int, ColumnType]] = []
        for rel_index, (binding, schema) in enumerate(self.relations):
            if qualifier is not None and binding != qualifier:
                continue
            if schema.contains(name):
                local = schema.index_of(name)
                found.append((self.offsets[rel_index] + local, schema.fields[local].type))
        if len(found) > 1:
            raise AnalysisError(f"ambiguous column reference: {qualifier + '.' if qualifier else ''}{name}")
        if len(found) == 1:
            index, typ = found[0]
            return 0, index, typ, name
        if self.outer is not None:
            levels, index, typ, nm = self.outer.resolve(name, qualifier)
            return levels + 1, index, typ, nm
        target = f"{qualifier}.{name}" if qualifier else name
        raise AnalysisError(f"column not found: {target}")


class ExpressionBinder:
    """Binds AST expressions against a scope.

    ``aggregates`` mode: when a list is supplied, aggregate function calls
    are bound (their arguments resolved against the scope), appended to the
    list, and replaced by :class:`InputRef` placeholders pointing *past*
    ``agg_input_width`` — the planner sets that to the number of group-by
    keys so placeholders line up with the aggregation output schema.
    """

    def __init__(
        self,
        scope: Scope,
        aggregates: list | None = None,
        agg_offset: int = 0,
        group_expr_map: dict[ast.ExprNode, int] | None = None,
        post_aggregation: bool = False,
    ):
        self.scope = scope
        self.aggregates = aggregates
        self.agg_offset = agg_offset
        self.group_expr_map = group_expr_map or {}
        #: When binding expressions *above* an aggregation, plain column
        #: references are only legal through the group-by map.
        self.post_aggregation = post_aggregation

    # -- entry point ----------------------------------------------------
    def bind(self, node: ast.ExprNode) -> BoundExpr:
        if node in self.group_expr_map:
            index = self.group_expr_map[node]
            # Type comes from re-binding the group expression itself.
            inner = ExpressionBinder(self.scope).bind(node)
            return InputRef(index, inner.type, name=str(node))
        method = getattr(self, f"_bind_{type(node).__name__}", None)
        if method is None:
            raise AnalysisError(f"unsupported expression: {type(node).__name__}")
        return method(node)

    def bind_predicate(self, node: ast.ExprNode) -> BoundExpr:
        bound = self.bind(node)
        if bound.type is not ColumnType.BOOL:
            raise AnalysisError(f"predicate is not boolean: {node}")
        return bound

    # -- literals ----------------------------------------------------------
    def _bind_NumberLiteral(self, node: ast.NumberLiteral) -> BoundExpr:
        if node.is_integer:
            return Constant(int(node.text), ColumnType.INT64)
        return Constant(float(node.text), ColumnType.FLOAT64)

    def _bind_StringLiteral(self, node: ast.StringLiteral) -> BoundExpr:
        return Constant(node.value, ColumnType.STRING)

    def _bind_BooleanLiteral(self, node: ast.BooleanLiteral) -> BoundExpr:
        return Constant(node.value, ColumnType.BOOL)

    def _bind_NullLiteral(self, node: ast.NullLiteral) -> BoundExpr:
        raise AnalysisError("NULL literals are not supported (TPC-H data has no NULLs)")

    def _bind_DateLiteral(self, node: ast.DateLiteral) -> BoundExpr:
        try:
            return Constant(date_to_days(node.text), ColumnType.DATE)
        except ValueError as exc:
            raise AnalysisError(f"bad date literal {node.text!r}") from exc

    # -- columns ----------------------------------------------------------
    def _bind_ColumnName(self, node: ast.ColumnName) -> BoundExpr:
        if self.post_aggregation:
            raise AnalysisError(
                f"column {node} must appear in GROUP BY or inside an aggregate"
            )
        levels, index, typ, name = self.scope.resolve(node.name, node.qualifier)
        if levels == 0:
            return InputRef(index, typ, name)
        return OuterColumn(levels, index, typ, name)

    # -- operators ----------------------------------------------------------
    def _bind_UnaryOp(self, node: ast.UnaryOp) -> BoundExpr:
        if node.op == "not":
            operand = self.bind(node.operand)
            if operand.type is not ColumnType.BOOL:
                raise AnalysisError("NOT requires a boolean operand")
            return BoolNot(operand)
        operand = self.bind(node.operand)
        if not operand.type.is_numeric:
            raise AnalysisError(f"unary {node.op} requires a numeric operand")
        if node.op == "+":
            return operand
        if isinstance(operand, Constant):
            return Constant(-operand.value, operand.type)
        return Negate(operand, operand.type)

    def _bind_BinaryOp(self, node: ast.BinaryOp) -> BoundExpr:
        if node.op in ("and", "or"):
            left = self.bind(node.left)
            right = self.bind(node.right)
            if left.type is not ColumnType.BOOL or right.type is not ColumnType.BOOL:
                raise AnalysisError(f"{node.op.upper()} requires boolean operands")
            cls = BoolAnd if node.op == "and" else BoolOr
            terms: list[BoundExpr] = []
            for term in (left, right):
                if isinstance(term, cls):
                    terms.extend(term.terms)
                else:
                    terms.append(term)
            return cls(tuple(terms))

        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            left = self.bind(node.left)
            right = self.bind(node.right)
            if not comparable(left.type, right.type):
                raise AnalysisError(
                    f"cannot compare {left.type.value} with {right.type.value}"
                )
            return Comparison(node.op, left, right)

        # Arithmetic, possibly involving interval literals (folded here).
        if isinstance(node.right, ast.IntervalLiteral):
            return self._bind_date_interval(node.left, node.op, node.right)
        if isinstance(node.left, ast.IntervalLiteral):
            raise AnalysisError("INTERVAL must be the right-hand operand")
        left = self.bind(node.left)
        right = self.bind(node.right)
        result_type = arithmetic_result_type(node.op, left.type, right.type)
        if isinstance(left, Constant) and isinstance(right, Constant):
            return _fold_constant(node.op, left, right, result_type)
        return Arithmetic(node.op, left, right, result_type)

    def _bind_date_interval(
        self, left_node: ast.ExprNode, op: str, interval: ast.IntervalLiteral
    ) -> BoundExpr:
        if op not in ("+", "-"):
            raise AnalysisError(f"cannot apply {op} to an INTERVAL")
        left = self.bind(left_node)
        if left.type is not ColumnType.DATE:
            raise AnalysisError("INTERVAL arithmetic requires a DATE operand")
        count = interval.count if op == "+" else -interval.count
        if isinstance(left, Constant):
            if interval.unit == "day":
                return Constant(left.value + count, ColumnType.DATE)
            if interval.unit == "month":
                return Constant(add_months(left.value, count), ColumnType.DATE)
            return Constant(add_years(left.value, count), ColumnType.DATE)
        if interval.unit == "day":
            return Arithmetic("+", left, Constant(count, ColumnType.INT64), ColumnType.DATE)
        raise AnalysisError(
            "month/year INTERVAL arithmetic on non-constant dates is not supported"
        )

    def _bind_BetweenOp(self, node: ast.BetweenOp) -> BoundExpr:
        value = self.bind(node.value)
        low = self.bind(node.low)
        high = self.bind(node.high)
        for bound in (low, high):
            if not comparable(value.type, bound.type):
                raise AnalysisError("BETWEEN bounds are not comparable with the value")
        result = BoolAnd((Comparison(">=", value, low), Comparison("<=", value, high)))
        return BoolNot(result) if node.negated else result

    def _bind_InListOp(self, node: ast.InListOp) -> BoundExpr:
        value = self.bind(node.value)
        options = []
        for option in node.options:
            bound = self.bind(option)
            if not isinstance(bound, Constant):
                raise AnalysisError("IN list items must be constants")
            if not comparable(value.type, bound.type):
                raise AnalysisError("IN list item type mismatch")
            options.append(bound.value)
        result = InSet(value, frozenset(options))
        return BoolNot(result) if node.negated else result

    def _bind_LikeOp(self, node: ast.LikeOp) -> BoundExpr:
        value = self.bind(node.value)
        if value.type is not ColumnType.STRING:
            raise AnalysisError("LIKE requires a string operand")
        return LikeMatch(value, node.pattern, node.negated)

    def _bind_IsNullOp(self, node: ast.IsNullOp) -> BoundExpr:
        return IsNull(self.bind(node.value), node.negated)

    def _bind_CaseExpr(self, node: ast.CaseExpr) -> BoundExpr:
        whens = []
        value_types: list[ColumnType] = []
        for cond_node, value_node in node.whens:
            cond = self.bind(cond_node)
            if cond.type is not ColumnType.BOOL:
                raise AnalysisError("CASE WHEN condition must be boolean")
            value = self.bind(value_node)
            whens.append((cond, value))
            value_types.append(value.type)
        default = self.bind(node.default) if node.default is not None else None
        if default is not None:
            value_types.append(default.type)
        result_type = _common_type(value_types)
        return CaseWhen(tuple(whens), default, result_type)

    def _bind_ExtractExpr(self, node: ast.ExtractExpr) -> BoundExpr:
        source = self.bind(node.source)
        if source.type is not ColumnType.DATE:
            raise AnalysisError("EXTRACT requires a DATE operand")
        return ExtractDatePart(node.unit, source)

    def _bind_CastExpr(self, node: ast.CastExpr) -> BoundExpr:
        target_map = {
            "int": ColumnType.INT64,
            "integer": ColumnType.INT64,
            "bigint": ColumnType.INT64,
            "double": ColumnType.FLOAT64,
            "float": ColumnType.FLOAT64,
            "varchar": ColumnType.STRING,
            "date": ColumnType.DATE,
        }
        target = target_map.get(node.target.lower())
        if target is None:
            raise AnalysisError(f"unsupported cast target {node.target}")
        return Cast(self.bind(node.value), target)

    def _bind_FunctionCall(self, node: ast.FunctionCall) -> BoundExpr:
        if node.name in AGGREGATE_FUNCTIONS:
            return self._bind_aggregate(node)
        raise AnalysisError(f"unknown function: {node.name}")

    def _bind_aggregate(self, node: ast.FunctionCall) -> BoundExpr:
        from .expressions import AggregateCall
        from .functions import aggregate_result_type

        if self.aggregates is None:
            raise AnalysisError(
                f"aggregate {node.name}() not allowed in this context"
            )
        if node.distinct:
            raise AnalysisError("DISTINCT aggregates are not supported")
        if node.is_star:
            if node.name != "count":
                raise AnalysisError(f"{node.name}(*) is not valid")
            arg = None
            arg_type = None
        else:
            if len(node.args) != 1:
                raise AnalysisError(f"{node.name}() takes exactly one argument")
            inner_binder = ExpressionBinder(self.scope)
            arg = inner_binder.bind(node.args[0])
            if any(isinstance(e, OuterColumn) for e in arg.walk()):
                raise AnalysisError("correlated aggregate arguments are not supported")
            arg_type = arg.type
        call = AggregateCall(node.name, arg, aggregate_result_type(node.name, arg_type))
        # Deduplicate structurally identical aggregate calls.
        for i, existing in enumerate(self.aggregates):
            if existing == call:
                return InputRef(self.agg_offset + i, call.result_type, str(call))
        self.aggregates.append(call)
        return InputRef(self.agg_offset + len(self.aggregates) - 1, call.result_type, str(call))

    # -- subqueries (must be consumed by the planner first) ----------------
    def _bind_ScalarSubquery(self, node: ast.ScalarSubquery) -> BoundExpr:
        raise AnalysisError("scalar subquery in unsupported position")

    def _bind_ExistsSubquery(self, node: ast.ExistsSubquery) -> BoundExpr:
        raise AnalysisError("EXISTS in unsupported position (must be a WHERE conjunct)")

    def _bind_InSubquery(self, node: ast.InSubquery) -> BoundExpr:
        raise AnalysisError("IN (subquery) in unsupported position (must be a WHERE conjunct)")


def _common_type(types: list[ColumnType]) -> ColumnType:
    unique = set(types)
    if len(unique) == 1:
        return types[0]
    if unique <= {ColumnType.INT64, ColumnType.FLOAT64}:
        return ColumnType.FLOAT64
    raise AnalysisError(f"incompatible CASE branch types: {sorted(t.value for t in unique)}")


def _fold_constant(op: str, left: Constant, right: Constant, result_type: ColumnType) -> Constant:
    ops = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b if result_type is ColumnType.FLOAT64 else a // b,
        "%": lambda a, b: a % b,
        "||": lambda a, b: f"{a}{b}",
    }
    value = ops[op](left.value, right.value)
    if result_type is ColumnType.INT64:
        value = int(value)
    return Constant(value, result_type)


def split_conjuncts(node: ast.ExprNode) -> list[ast.ExprNode]:
    """Flatten an AST predicate into top-level AND conjuncts."""
    if isinstance(node, ast.BinaryOp) and node.op == "and":
        return split_conjuncts(node.left) + split_conjuncts(node.right)
    return [node]
