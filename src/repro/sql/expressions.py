"""Bound (resolved, typed) expressions with vectorized evaluation.

The analyzer lowers AST expressions to this IR.  Every node knows its
:class:`~repro.pages.ColumnType` and evaluates against a page to a numpy
array of ``page.num_rows`` values.  The engine's data contains no NULLs
(TPC-H), so evaluation uses two-valued logic; ``IsNull`` exists for
completeness and checks for ``None`` cells in object columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ExecutionError
from ..pages import ColumnType, Page


class BoundExpr:
    """Base class: a typed, vectorized expression over a page."""

    __slots__ = ()
    type: ColumnType

    def evaluate(self, page: Page) -> np.ndarray:
        raise NotImplementedError

    def children(self) -> Sequence["BoundExpr"]:
        return ()

    def walk(self):
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()


def _object_array(values: list) -> np.ndarray:
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


@dataclass(frozen=True)
class InputRef(BoundExpr):
    """Reference to a column of the input page by position."""

    index: int
    type: ColumnType
    name: str = ""

    def evaluate(self, page: Page) -> np.ndarray:
        return page.columns[self.index]

    def __str__(self) -> str:
        return f"${self.index}" + (f"[{self.name}]" if self.name else "")


@dataclass(frozen=True)
class Constant(BoundExpr):
    value: object
    type: ColumnType

    def evaluate(self, page: Page) -> np.ndarray:
        n = page.num_rows
        if self.type is ColumnType.STRING:
            out = np.empty(n, dtype=object)
            out[:] = self.value
            return out
        return np.full(n, self.value, dtype=self.type.numpy_dtype)

    def __str__(self) -> str:
        return repr(self.value)


_ARITH_FNS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}


@dataclass(frozen=True)
class Arithmetic(BoundExpr):
    op: str
    left: BoundExpr
    right: BoundExpr
    type: ColumnType

    def children(self):
        return (self.left, self.right)

    def evaluate(self, page: Page) -> np.ndarray:
        lhs = self.left.evaluate(page)
        rhs = self.right.evaluate(page)
        if self.op == "||":
            return _object_array([f"{a}{b}" for a, b in zip(lhs.tolist(), rhs.tolist())])
        fn = _ARITH_FNS.get(self.op)
        if fn is None:
            raise ExecutionError(f"unsupported arithmetic operator {self.op}")
        if self.op == "/" and self.type is ColumnType.FLOAT64:
            lhs = lhs.astype(np.float64, copy=False)
        result = fn(lhs, rhs)
        return result.astype(self.type.numpy_dtype, copy=False)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(BoundExpr):
    operand: BoundExpr
    type: ColumnType

    def children(self):
        return (self.operand,)

    def evaluate(self, page: Page) -> np.ndarray:
        return -self.operand.evaluate(page)


@dataclass(frozen=True)
class Comparison(BoundExpr):
    op: str  # = <> < <= > >=
    left: BoundExpr
    right: BoundExpr
    type: ColumnType = ColumnType.BOOL

    def children(self):
        return (self.left, self.right)

    def evaluate(self, page: Page) -> np.ndarray:
        lhs = self.left.evaluate(page)
        rhs = self.right.evaluate(page)
        if lhs.dtype == object or rhs.dtype == object:
            return self._compare_objects(lhs, rhs)
        if self.op == "=":
            return lhs == rhs
        if self.op == "<>":
            return lhs != rhs
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == ">=":
            return lhs >= rhs
        raise ExecutionError(f"unsupported comparison {self.op}")

    def _compare_objects(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        # numpy's object-dtype comparison ufuncs dispatch to the python
        # rich-compare protocol from a C loop — same semantics as a
        # row-at-a-time loop, without the interpreter in the inner loop.
        op = self.op
        if op == "=":
            out = lhs == rhs
        elif op == "<>":
            out = lhs != rhs
        elif op == "<":
            out = lhs < rhs
        elif op == "<=":
            out = lhs <= rhs
        elif op == ">":
            out = lhs > rhs
        else:
            out = lhs >= rhs
        return np.asarray(out, dtype=bool)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolAnd(BoundExpr):
    terms: tuple[BoundExpr, ...]
    type: ColumnType = ColumnType.BOOL

    def children(self):
        return self.terms

    def evaluate(self, page: Page) -> np.ndarray:
        result = self.terms[0].evaluate(page).astype(bool, copy=True)
        for term in self.terms[1:]:
            result &= term.evaluate(page).astype(bool, copy=False)
        return result

    def __str__(self) -> str:
        return "(" + " AND ".join(map(str, self.terms)) + ")"


@dataclass(frozen=True)
class BoolOr(BoundExpr):
    terms: tuple[BoundExpr, ...]
    type: ColumnType = ColumnType.BOOL

    def children(self):
        return self.terms

    def evaluate(self, page: Page) -> np.ndarray:
        result = self.terms[0].evaluate(page).astype(bool, copy=True)
        for term in self.terms[1:]:
            result |= term.evaluate(page).astype(bool, copy=False)
        return result

    def __str__(self) -> str:
        return "(" + " OR ".join(map(str, self.terms)) + ")"


@dataclass(frozen=True)
class BoolNot(BoundExpr):
    operand: BoundExpr
    type: ColumnType = ColumnType.BOOL

    def children(self):
        return (self.operand,)

    def evaluate(self, page: Page) -> np.ndarray:
        return ~self.operand.evaluate(page).astype(bool, copy=False)


@dataclass(frozen=True)
class InSet(BoundExpr):
    value: BoundExpr
    options: frozenset
    type: ColumnType = ColumnType.BOOL

    def children(self):
        return (self.value,)

    def evaluate(self, page: Page) -> np.ndarray:
        arr = self.value.evaluate(page)
        if arr.dtype == object:
            opts = self.options
            return np.fromiter(
                (v in opts for v in arr.tolist()), dtype=bool, count=len(arr)
            )
        return np.isin(arr, np.array(sorted(self.options)))


@dataclass(frozen=True)
class LikeMatch(BoundExpr):
    value: BoundExpr
    pattern: str
    negated: bool = False
    type: ColumnType = ColumnType.BOOL

    def children(self):
        return (self.value,)

    def evaluate(self, page: Page) -> np.ndarray:
        from .functions import like_matcher

        match = like_matcher(self.pattern)
        arr = self.value.evaluate(page)
        result = np.fromiter(
            (match(v) for v in arr.tolist()), dtype=bool, count=len(arr)
        )
        return ~result if self.negated else result

    def __str__(self) -> str:
        return f"({self.value} LIKE {self.pattern!r})"


@dataclass(frozen=True)
class IsNull(BoundExpr):
    value: BoundExpr
    negated: bool = False
    type: ColumnType = ColumnType.BOOL

    def children(self):
        return (self.value,)

    def evaluate(self, page: Page) -> np.ndarray:
        arr = self.value.evaluate(page)
        if arr.dtype == object:
            result = np.fromiter(
                (v is None for v in arr.tolist()), dtype=bool, count=len(arr)
            )
        else:
            result = np.zeros(len(arr), dtype=bool)
        return ~result if self.negated else result


@dataclass(frozen=True)
class CaseWhen(BoundExpr):
    whens: tuple[tuple[BoundExpr, BoundExpr], ...]
    default: BoundExpr | None
    type: ColumnType

    def children(self):
        kids: list[BoundExpr] = []
        for cond, value in self.whens:
            kids.extend((cond, value))
        if self.default is not None:
            kids.append(self.default)
        return tuple(kids)

    def evaluate(self, page: Page) -> np.ndarray:
        n = page.num_rows
        dtype = self.type.numpy_dtype
        if self.type is ColumnType.STRING:
            result = np.empty(n, dtype=object)
            result[:] = None
        else:
            result = np.zeros(n, dtype=dtype)
        decided = np.zeros(n, dtype=bool)
        for cond, value in self.whens:
            mask = cond.evaluate(page).astype(bool, copy=False) & ~decided
            if mask.any():
                result[mask] = value.evaluate(page)[mask]
            decided |= mask
        if self.default is not None:
            rest = ~decided
            if rest.any():
                result[rest] = self.default.evaluate(page)[rest]
        return result


@dataclass(frozen=True)
class ExtractDatePart(BoundExpr):
    unit: str  # year | month | day
    source: BoundExpr
    type: ColumnType = ColumnType.INT64

    def children(self):
        return (self.source,)

    def evaluate(self, page: Page) -> np.ndarray:
        days = self.source.evaluate(page).astype("datetime64[D]")
        if self.unit == "year":
            return days.astype("datetime64[Y]").astype(np.int64) + 1970
        if self.unit == "month":
            months = days.astype("datetime64[M]").astype(np.int64)
            return months % 12 + 1
        if self.unit == "day":
            months = days.astype("datetime64[M]")
            return (days - months).astype(np.int64) + 1
        raise ExecutionError(f"unsupported EXTRACT unit {self.unit}")

    def __str__(self) -> str:
        return f"EXTRACT({self.unit} FROM {self.source})"


@dataclass(frozen=True)
class Cast(BoundExpr):
    value: BoundExpr
    type: ColumnType

    def children(self):
        return (self.value,)

    def evaluate(self, page: Page) -> np.ndarray:
        arr = self.value.evaluate(page)
        if self.type is ColumnType.STRING:
            return _object_array([str(v) for v in arr.tolist()])
        return arr.astype(self.type.numpy_dtype)


# ---------------------------------------------------------------------------
# Aggregate call descriptors (consumed by aggregation operators)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateCall:
    """One aggregate in an Aggregate plan node, e.g. ``sum(expr)``.

    ``arg`` is ``None`` for ``count(*)``.  ``avg`` is decomposed by the
    two-stage aggregation model into (sum, count) partials merged by the
    final aggregation (paper Section 4.1).
    """

    function: str  # sum | count | avg | min | max
    arg: BoundExpr | None
    result_type: ColumnType
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        head = f"{self.function}(distinct " if self.distinct else f"{self.function}("
        return f"{head}{inner})"
