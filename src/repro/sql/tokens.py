"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


#: Reserved words recognised by the parser (upper-cased).
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT AS ON JOIN INNER LEFT
    RIGHT FULL OUTER CROSS AND OR NOT IN EXISTS BETWEEN LIKE IS NULL
    TRUE FALSE CASE WHEN THEN ELSE END DISTINCT ASC DESC DATE INTERVAL
    YEAR MONTH DAY EXTRACT COUNT SUM AVG MIN MAX CAST UNION ALL
    """.split()
)

#: Multi-character operators, longest first so the lexer matches greedily.
SYMBOLS = ["<>", "<=", ">=", "!=", "||", "(", ")", ",", ".", "+", "-", "*", "/", "%", "<", ">", "=", ";"]


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int
    line: int
    column: int

    def matches_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.value}, {self.value!r})"
