"""Expression compiler: bound expression trees -> cached vectorized closures.

The interpreted path (:meth:`BoundExpr.evaluate`) re-walks the expression
tree for every page: each node re-dispatches on its operator string,
constants re-materialise ``np.full`` arrays, ``IN`` lists re-sort, LIKE
patterns re-compile, and common subexpressions (Q1's
``l_extendedprice * (1 - l_discount)`` appears inside the charge
expression too) are recomputed.  Operators instead compile their
expressions **once** into a closure over the page:

* **Constant pre-folding** — any subtree without an :class:`InputRef` is
  evaluated once at compile time to a dtype-typed numpy scalar.  Under
  NEP 50 a typed scalar promotes exactly like an array of that dtype, so
  ``col <= np.int64(10471)`` is bit-identical to the interpreter's
  ``col <= np.full(n, 10471, np.int64)`` without the per-page allocation.
* **Common-subexpression sharing** — structurally equal subtrees (frozen
  dataclasses hash/compare by value) are computed once per page through a
  memo slot; a list of expressions (projection lists, aggregate argument
  lists) is compiled jointly so sharing crosses expression boundaries.
* **Dtype-specialised paths** — comparison/arithmetic operator dispatch,
  the object-vs-numeric comparison split, ``IN``-list preparation, and
  LIKE pattern compilation all happen at compile time, leaving only the
  numpy kernel calls in the per-page closure.

Compiled evaluators are cached globally, keyed by the (hashable)
expression trees themselves, so respawned drivers and repeated queries
reuse them.  The contract is **bit-identity with the interpreter**: the
property test in ``tests/test_expression_compiler.py`` pits both paths
against each other on randomized trees and pages, and
``EngineConfig.compiled_expressions=False`` switches every operator back
to the interpreted path.

Compiled closures are additionally the unit the worker-pool offload
backend ships (DESIGN.md §15): an operator broadcasts its expression
tree once, and each worker compiles it lazily through this module —
through the same global cache, which forked workers inherit pre-warmed.
Two properties of the closures make that safe, and must be preserved:
they read **only** ``page.columns[i]`` and ``page.num_rows`` (workers
evaluate them against a schema-less stub over shared-memory views —
see ``repro.parallel.jobs``), and they are **pure** per page (no
closure-held mutable state), which is what lets a crashed job be
resubmitted as-is and chunk results concatenate bit-identically.
"""

from __future__ import annotations

import operator
from collections import Counter
from typing import Callable, Sequence

import numpy as np

from ..errors import ExecutionError
from ..pages import ColumnType, Page
from .expressions import (
    Arithmetic,
    BoolAnd,
    BoolNot,
    BoolOr,
    BoundExpr,
    CaseWhen,
    Cast,
    Comparison,
    Constant,
    ExtractDatePart,
    InputRef,
    InSet,
    IsNull,
    LikeMatch,
    Negate,
)

__all__ = ["compile_expression", "compile_expressions", "clear_compile_cache"]

_ARITH_FNS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}

_CMP_FNS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class _OneRowPage:
    """Stand-in page for compile-time evaluation of constant subtrees
    (no :class:`InputRef` reaches ``columns``)."""

    num_rows = 1
    columns = ()


_ONE_ROW = _OneRowPage()


def _fold(expr: BoundExpr):
    """Evaluate a constant subtree once via the *interpreter* and return
    the single value — a numpy scalar carrying the interpreter's result
    dtype (or a plain python object for object columns), so downstream
    ufuncs see exactly the operand the interpreter would give them."""
    return expr.evaluate(_ONE_ROW)[0]


def _const_array_fn(value, ctype: ColumnType):
    """Array form of a folded constant (semantics of Constant.evaluate)."""
    if ctype is ColumnType.STRING:
        def fill_object(page: Page, memo) -> np.ndarray:
            out = np.empty(page.num_rows, dtype=object)
            out[:] = value
            return out

        return fill_object
    dtype = ctype.numpy_dtype

    def fill(page: Page, memo) -> np.ndarray:
        return np.full(page.num_rows, value, dtype=dtype)

    return fill


class _Compiler:
    """Single-use compiler over one expression (or one joint list)."""

    def __init__(self, exprs: Sequence[BoundExpr]):
        self.counts: Counter = Counter()
        for expr in exprs:
            self.counts.update(expr.walk())
        self.slots = 0
        self._built: dict[BoundExpr, tuple] = {}

    # -- node dispatch ---------------------------------------------------
    def build(self, expr: BoundExpr) -> tuple:
        """Compile ``expr`` to ``("const", scalar, type)`` or
        ``("fn", f)`` where ``f(page, memo) -> np.ndarray``."""
        hit = self._built.get(expr)
        if hit is not None:
            return hit
        out = self._build(expr)
        if (
            out[0] == "fn"
            and self.counts[expr] > 1
            and not isinstance(expr, InputRef)
        ):
            # Shared subtree: evaluate once per page through a memo slot.
            slot = self.slots
            self.slots += 1
            inner = out[1]

            def shared(page: Page, memo, _slot=slot, _inner=inner):
                value = memo[_slot]
                if value is None:
                    value = _inner(page, memo)
                    memo[_slot] = value
                return value

            out = ("fn", shared)
        self._built[expr] = out
        return out

    def array_fn(self, expr: BoundExpr) -> Callable:
        """Compiled form that always yields an array (constants fill)."""
        kind, *rest = self.build(expr)
        if kind == "const":
            value, ctype = rest
            return _const_array_fn(value, ctype)
        return rest[0]

    def _build(self, expr: BoundExpr) -> tuple:
        # Constant pre-folding: no InputRef below means the value is fixed.
        if not any(isinstance(node, InputRef) for node in expr.walk()):
            try:
                return ("const", _fold(expr), expr.type)
            except Exception:
                # Folding raised (e.g. integer division by zero): keep the
                # interpreter's behaviour of raising only when a data page
                # actually flows through the operator.
                return ("fn", lambda page, memo, _e=expr: _e.evaluate(page))
        builder = getattr(self, f"_build_{type(expr).__name__.lower()}", None)
        if builder is None:
            # Unknown node type: interpret it (still benefits from CSE).
            return ("fn", lambda page, memo, _e=expr: _e.evaluate(page))
        return builder(expr)

    # -- leaves ----------------------------------------------------------
    def _build_inputref(self, expr: InputRef) -> tuple:
        index = expr.index
        return ("fn", lambda page, memo: page.columns[index])

    def _build_constant(self, expr: Constant) -> tuple:  # pragma: no cover
        # Unreachable: constants are folded by ``_build``.  Kept for safety.
        return ("const", _fold(expr), expr.type)

    # -- scalar-capable binary nodes ------------------------------------
    def _operand(self, expr: BoundExpr):
        """Scalar (folded) or array compiled form for ufunc operands."""
        kind, *rest = self.build(expr)
        if kind == "const":
            return rest[0], None
        return None, rest[0]

    def _build_arithmetic(self, expr: Arithmetic) -> tuple:
        if expr.op == "||":
            left = self.array_fn(expr.left)
            right = self.array_fn(expr.right)

            def concat(page: Page, memo) -> np.ndarray:
                lhs = left(page, memo)
                rhs = right(page, memo)
                out = np.empty(len(lhs), dtype=object)
                out[:] = [f"{a}{b}" for a, b in zip(lhs.tolist(), rhs.tolist())]
                return out

            return ("fn", concat)
        fn = _ARITH_FNS.get(expr.op)
        if fn is None:
            raise ExecutionError(f"unsupported arithmetic operator {expr.op}")
        lconst, lfn = self._operand(expr.left)
        rconst, rfn = self._operand(expr.right)
        dtype = expr.type.numpy_dtype
        if expr.op == "/" and expr.type is ColumnType.FLOAT64:
            if lfn is None:
                lconst = lconst.astype(np.float64)

                def divide_const(page: Page, memo) -> np.ndarray:
                    return fn(lconst, rfn(page, memo)).astype(dtype, copy=False)

                return ("fn", divide_const)

            def divide(page: Page, memo) -> np.ndarray:
                lhs = lfn(page, memo).astype(np.float64, copy=False)
                rhs = rconst if rfn is None else rfn(page, memo)
                return fn(lhs, rhs).astype(dtype, copy=False)

            return ("fn", divide)
        if lfn is None:

            def arith_lconst(page: Page, memo) -> np.ndarray:
                return fn(lconst, rfn(page, memo)).astype(dtype, copy=False)

            return ("fn", arith_lconst)
        if rfn is None:

            def arith_rconst(page: Page, memo) -> np.ndarray:
                return fn(lfn(page, memo), rconst).astype(dtype, copy=False)

            return ("fn", arith_rconst)

        def arith(page: Page, memo) -> np.ndarray:
            return fn(lfn(page, memo), rfn(page, memo)).astype(dtype, copy=False)

        return ("fn", arith)

    def _build_comparison(self, expr: Comparison) -> tuple:
        fn = _CMP_FNS.get(expr.op)
        if fn is None:
            raise ExecutionError(f"unsupported comparison {expr.op}")
        lconst, lfn = self._operand(expr.left)
        rconst, rfn = self._operand(expr.right)
        objects = (
            expr.left.type is ColumnType.STRING
            or expr.right.type is ColumnType.STRING
        )
        if objects:
            # Object comparison: numpy dispatches to rich-compare from a C
            # loop; normalise to a bool array like the interpreter.
            def compare_objects(page: Page, memo) -> np.ndarray:
                lhs = lconst if lfn is None else lfn(page, memo)
                rhs = rconst if rfn is None else rfn(page, memo)
                return np.asarray(fn(lhs, rhs), dtype=bool)

            return ("fn", compare_objects)
        if lfn is None:

            def compare_lconst(page: Page, memo) -> np.ndarray:
                return fn(lconst, rfn(page, memo))

            return ("fn", compare_lconst)
        if rfn is None:

            def compare_rconst(page: Page, memo) -> np.ndarray:
                return fn(lfn(page, memo), rconst)

            return ("fn", compare_rconst)

        def compare(page: Page, memo) -> np.ndarray:
            return fn(lfn(page, memo), rfn(page, memo))

        return ("fn", compare)

    # -- boolean connectives ---------------------------------------------
    def _build_booland(self, expr: BoolAnd) -> tuple:
        terms = [self.array_fn(t) for t in expr.terms]

        def conjunction(page: Page, memo) -> np.ndarray:
            result = terms[0](page, memo).astype(bool, copy=True)
            for term in terms[1:]:
                result &= term(page, memo).astype(bool, copy=False)
            return result

        return ("fn", conjunction)

    def _build_boolor(self, expr: BoolOr) -> tuple:
        terms = [self.array_fn(t) for t in expr.terms]

        def disjunction(page: Page, memo) -> np.ndarray:
            result = terms[0](page, memo).astype(bool, copy=True)
            for term in terms[1:]:
                result |= term(page, memo).astype(bool, copy=False)
            return result

        return ("fn", disjunction)

    def _build_boolnot(self, expr: BoolNot) -> tuple:
        inner = self.array_fn(expr.operand)
        return (
            "fn",
            lambda page, memo: ~inner(page, memo).astype(bool, copy=False),
        )

    def _build_negate(self, expr: Negate) -> tuple:
        inner = self.array_fn(expr.operand)
        return ("fn", lambda page, memo: -inner(page, memo))

    # -- predicates over one input ---------------------------------------
    def _build_inset(self, expr: InSet) -> tuple:
        inner = self.array_fn(expr.value)
        if expr.value.type is ColumnType.STRING:
            options = expr.options

            def in_object_set(page: Page, memo) -> np.ndarray:
                arr = inner(page, memo)
                return np.fromiter(
                    (v in options for v in arr.tolist()),
                    dtype=bool,
                    count=len(arr),
                )

            return ("fn", in_object_set)
        # Hoist the sorted option array out of the per-page path.
        sorted_options = np.array(sorted(expr.options))
        return ("fn", lambda page, memo: np.isin(inner(page, memo), sorted_options))

    def _build_likematch(self, expr: LikeMatch) -> tuple:
        from .functions import like_matcher

        match = like_matcher(expr.pattern)
        inner = self.array_fn(expr.value)
        negated = expr.negated

        def like(page: Page, memo) -> np.ndarray:
            arr = inner(page, memo)
            result = np.fromiter(
                (match(v) for v in arr.tolist()), dtype=bool, count=len(arr)
            )
            return ~result if negated else result

        return ("fn", like)

    def _build_isnull(self, expr: IsNull) -> tuple:
        inner = self.array_fn(expr.value)
        negated = expr.negated
        is_object = expr.value.type is ColumnType.STRING

        def isnull(page: Page, memo) -> np.ndarray:
            arr = inner(page, memo)
            if is_object:
                result = np.fromiter(
                    (v is None for v in arr.tolist()), dtype=bool, count=len(arr)
                )
            else:
                result = np.zeros(len(arr), dtype=bool)
            return ~result if negated else result

        return ("fn", isnull)

    # -- structured nodes -------------------------------------------------
    def _build_casewhen(self, expr: CaseWhen) -> tuple:
        whens = [
            (self.array_fn(cond), self.array_fn(value))
            for cond, value in expr.whens
        ]
        default = self.array_fn(expr.default) if expr.default is not None else None
        ctype = expr.type
        dtype = ctype.numpy_dtype

        def casewhen(page: Page, memo) -> np.ndarray:
            n = page.num_rows
            if ctype is ColumnType.STRING:
                result = np.empty(n, dtype=object)
                result[:] = None
            else:
                result = np.zeros(n, dtype=dtype)
            decided = np.zeros(n, dtype=bool)
            for cond, value in whens:
                mask = cond(page, memo).astype(bool, copy=False) & ~decided
                if mask.any():
                    result[mask] = value(page, memo)[mask]
                decided |= mask
            if default is not None:
                rest = ~decided
                if rest.any():
                    result[rest] = default(page, memo)[rest]
            return result

        return ("fn", casewhen)

    def _build_extractdatepart(self, expr: ExtractDatePart) -> tuple:
        inner = self.array_fn(expr.source)
        unit = expr.unit

        def extract(page: Page, memo) -> np.ndarray:
            days = inner(page, memo).astype("datetime64[D]")
            if unit == "year":
                return days.astype("datetime64[Y]").astype(np.int64) + 1970
            if unit == "month":
                months = days.astype("datetime64[M]").astype(np.int64)
                return months % 12 + 1
            if unit == "day":
                months = days.astype("datetime64[M]")
                return (days - months).astype(np.int64) + 1
            raise ExecutionError(f"unsupported EXTRACT unit {unit}")

        return ("fn", extract)

    def _build_cast(self, expr: Cast) -> tuple:
        inner = self.array_fn(expr.value)
        ctype = expr.type
        if ctype is ColumnType.STRING:

            def cast_str(page: Page, memo) -> np.ndarray:
                arr = inner(page, memo)
                out = np.empty(len(arr), dtype=object)
                out[:] = [str(v) for v in arr.tolist()]
                return out

            return ("fn", cast_str)
        dtype = ctype.numpy_dtype
        return ("fn", lambda page, memo: inner(page, memo).astype(dtype))


#: Global compile caches; expression trees are frozen/hashable, so they
#: key their own compiled closures.  Bounded: the working set is the
#: handful of expressions in the active query mix.
_EXPR_CACHE: dict[BoundExpr, Callable[[Page], np.ndarray]] = {}
_LIST_CACHE: dict[tuple, Callable[[Page], list]] = {}
_CACHE_LIMIT = 1024


def clear_compile_cache() -> None:
    _EXPR_CACHE.clear()
    _LIST_CACHE.clear()


def compile_expression(expr: BoundExpr) -> Callable[[Page], np.ndarray]:
    """Compile one expression into ``f(page) -> np.ndarray``."""
    cached = _EXPR_CACHE.get(expr)
    if cached is not None:
        return cached
    compiler = _Compiler((expr,))
    root = compiler.array_fn(expr)
    slots = compiler.slots
    if slots == 0:
        evaluator = lambda page, _f=root: _f(page, None)  # noqa: E731
    else:
        def evaluator(page: Page, _f=root, _slots=slots) -> np.ndarray:
            return _f(page, [None] * _slots)

    if len(_EXPR_CACHE) >= _CACHE_LIMIT:
        _EXPR_CACHE.clear()
    _EXPR_CACHE[expr] = evaluator
    return evaluator


def compile_expressions(exprs: Sequence[BoundExpr]) -> Callable[[Page], list]:
    """Jointly compile a list of expressions into ``f(page) -> [arrays]``.

    Joint compilation shares common subexpressions *across* the list —
    e.g. Q1's ``sum(l_extendedprice * (1 - l_discount))`` and
    ``sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))`` compute the
    shared product once per page.
    """
    key = tuple(exprs)
    cached = _LIST_CACHE.get(key)
    if cached is not None:
        return cached
    compiler = _Compiler(key)
    fns = [compiler.array_fn(e) for e in key]
    slots = compiler.slots

    def evaluator(page: Page, _fns=tuple(fns), _slots=slots) -> list:
        memo = [None] * _slots if _slots else None
        return [fn(page, memo) for fn in _fns]

    if len(_LIST_CACHE) >= _CACHE_LIMIT:
        _LIST_CACHE.clear()
    _LIST_CACHE[key] = evaluator
    return evaluator
