"""AccordionEngine: the public facade of the library.

Bundles the simulated cluster, catalog, split layout, coordinator, runtime
DOP tuning module, auto-tuner, and observability layer behind a small API:

>>> from repro import AccordionEngine
>>> engine = AccordionEngine.tpch(scale=0.01)
>>> result = engine.execute("select count(*) from lineitem")
>>> result.rows
[(60175,)]

``submit()`` returns a :class:`QueryHandle` — the single user-facing
query object: ``.result()`` materialises, ``.tuning`` tunes DOPs while
the simulation advances (``engine.run_for`` / ``engine.run_until_done``),
``.trace()`` / ``.profile()`` expose the obs layer, and
``.fault_report()`` summarises failure recovery.  One
:class:`~repro.config.EngineConfig` fully describes a deployment,
including cluster topology, split placement, and tracing.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

from .autotune import ElasticQuery
from .cluster import Cluster, Coordinator, QueryExecution, QueryOptions
from .config import EngineConfig, presto_config, prestissimo_config
from .data import Catalog, SplitLayout
from .errors import ExecutionError
from .handle import QueryHandle, QueryResult
from .obs import MetricsRegistry, NULL_TRACER, Tracer
from .sim import SimKernel

__all__ = ["AccordionEngine", "QueryHandle", "QueryResult"]


def _unwrap(query: "QueryHandle | QueryExecution") -> QueryExecution:
    """Engine methods accept either a handle or a raw execution."""
    if isinstance(query, QueryHandle):
        return query.execution
    return query


class AccordionEngine:
    """A complete Accordion deployment on a simulated cluster."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig | None = None,
        split_scheme: dict | None = None,
        node_overrides: dict[str, list[int]] | None = None,
        combined_nodes: bool | None = None,
    ):
        config = config or EngineConfig()
        # Deprecated constructor stragglers: fold into the cluster config so
        # one EngineConfig fully describes the deployment.
        if (
            split_scheme is not None
            or node_overrides is not None
            or combined_nodes is not None
        ):
            warnings.warn(
                "split_scheme/node_overrides/combined_nodes constructor "
                "arguments are deprecated; use "
                "config.with_cluster or ClusterConfig.with_placement instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = replace(
                config,
                cluster=config.cluster.with_placement(
                    split_scheme=split_scheme,
                    node_overrides=node_overrides,
                    combined=combined_nodes,
                ),
            )
        self.config = config
        self.kernel = SimKernel()
        tracing = config.tracing
        if tracing.enabled or tracing.profiling:
            self.tracer = Tracer(self.kernel, tracing)
        else:
            self.tracer = NULL_TRACER
        self.kernel.tracer = self.tracer
        self.catalog = catalog
        self.cluster = Cluster(
            self.kernel, config.cluster, combined=config.cluster.combined
        )
        self.split_layout = SplitLayout(
            catalog,
            storage_nodes=config.cluster.storage_nodes,
            scheme=config.cluster.split_scheme_dict,
            node_overrides=config.cluster.node_overrides_dict,
        )
        self.coordinator = Coordinator(
            self.kernel, self.cluster, catalog, self.split_layout, config
        )
        self.fault_injector = None
        self._elastic: dict[int, ElasticQuery] = {}
        self.metrics = MetricsRegistry()
        rpc = self.coordinator.rpc
        self.metrics.gauge(
            "rpc",
            lambda: {
                "total_requests": rpc.total_requests,
                "retried_requests": rpc.retried_requests,
                "failed_requests": rpc.failed_requests,
            },
        )
        self.metrics.gauge("recovery", self.coordinator.recovery.stats)
        self.metrics.gauge(
            "sim",
            lambda: {
                "now": self.kernel.now,
                "events_processed": self.kernel.events_processed,
            },
        )
        self.metrics.gauge(
            "trace",
            lambda: {
                "spans": len(self.tracer.spans),
                "dropped": self.tracer.dropped,
            },
        )
        coordinator = self.coordinator
        self.metrics.gauge(
            "plan_cache",
            lambda: {
                "hits": coordinator.plan_cache_hits,
                "misses": coordinator.plan_cache_misses,
            },
        )

    # -- constructors ----------------------------------------------------
    @classmethod
    def tpch(
        cls,
        scale: float = 0.01,
        config: EngineConfig | None = None,
        seed: int = 20250622,
        **kwargs,
    ) -> "AccordionEngine":
        """Engine over a generated TPC-H database at ``scale``."""
        return cls(Catalog.tpch(scale, seed), config=config, **kwargs)

    @classmethod
    def presto_baseline(cls, catalog: Catalog, **kwargs) -> "AccordionEngine":
        """Presto baseline mode: fixed buffers, no elasticity (Figure 20)."""
        return cls(catalog, config=presto_config(), **kwargs)

    @classmethod
    def prestissimo_baseline(cls, catalog: Catalog, **kwargs) -> "AccordionEngine":
        return cls(catalog, config=prestissimo_config(), **kwargs)

    # -- query execution ----------------------------------------------------
    def submit(self, sql: str, options: QueryOptions | None = None) -> QueryHandle:
        """Submit a query; advance the simulation to make it progress."""
        return QueryHandle(self, self.coordinator.submit(sql, options))

    def execute(
        self,
        sql: str,
        options: QueryOptions | None = None,
        max_virtual_seconds: float = 1e7,
    ) -> QueryResult:
        """Submit and run to completion."""
        return self.submit(sql, options).result(max_virtual_seconds)

    def result_of(self, query: "QueryHandle | QueryExecution") -> QueryResult:
        """Deprecated: use ``handle.result()`` instead."""
        warnings.warn(
            "engine.result_of(query) is deprecated; use handle.result()",
            DeprecationWarning,
            stacklevel=2,
        )
        return QueryHandle(self, _unwrap(query))._materialize()

    # -- runtime elasticity ----------------------------------------------------
    def _elastic_for(self, execution: QueryExecution) -> ElasticQuery:
        """The runtime DOP tuning interface behind ``QueryHandle.tuning``."""
        if not self.config.elasticity_enabled:
            raise ExecutionError(
                f"engine mode {self.config.engine_name!r} does not support IQRE"
            )
        if execution.id not in self._elastic:
            self._elastic[execution.id] = ElasticQuery(
                execution,
                self.cluster,
                self.coordinator.scheduler,
                collector_period=self.config.collector_period,
            )
        return self._elastic[execution.id]

    def elastic(self, query: "QueryHandle | QueryExecution") -> ElasticQuery:
        """Deprecated: use ``handle.tuning`` instead."""
        warnings.warn(
            "engine.elastic(query) is deprecated; use handle.tuning",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._elastic_for(_unwrap(query))

    # -- fault injection ----------------------------------------------------
    def inject_faults(self, plan) -> "object":
        """Arm a :class:`~repro.faults.FaultPlan` against this engine.

        Returns the :class:`~repro.faults.FaultInjector` (its ``history``
        records the fault timeline).  Must be called before the affected
        virtual times are reached.
        """
        from .faults import FaultInjector

        self.fault_injector = FaultInjector(self.kernel, self.coordinator, plan)
        self.metrics.gauge(
            "faults", lambda: {"injected": len(self.fault_injector.history)}
        )
        return self.fault_injector

    # -- simulation control ----------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    def run_until_done(
        self,
        query: "QueryHandle | QueryExecution",
        max_virtual_seconds: float = 1e7,
        max_events: int | None = None,
    ) -> None:
        """Advance the simulation until the query reaches a terminal state.

        A query that *failed* (fault injection, operator error) raises its
        structured :class:`~repro.errors.QueryFailedError`; one that makes
        no progress raises within ``max_virtual_seconds`` / ``max_events``
        instead of hanging.
        """
        execution = _unwrap(query)
        deadline = self.kernel.now + max_virtual_seconds
        self.kernel.run(
            until=deadline,
            stop_when=lambda: execution.finished,
            max_events=max_events,
        )
        if execution.failed:
            raise execution.error
        if not execution.finished:
            raise ExecutionError(
                f"query {execution.id} did not finish within {max_virtual_seconds} "
                f"virtual seconds\n{execution.describe()}"
            )

    def run_for(self, virtual_seconds: float) -> None:
        """Advance the simulation by a fixed amount of virtual time."""
        self.kernel.run(until=self.kernel.now + virtual_seconds)

    def run_until(self, virtual_time: float) -> None:
        self.kernel.run(until=virtual_time)
