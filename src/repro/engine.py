"""AccordionEngine: the public facade of the library.

Bundles the simulated cluster, catalog, split layout, coordinator, runtime
DOP tuning module, auto-tuner, and observability layer behind a small API:

>>> from repro import AccordionEngine
>>> engine = AccordionEngine.tpch(scale=0.01)
>>> result = engine.execute("select count(*) from lineitem")
>>> result.rows
[(60175,)]

``submit()`` returns a :class:`QueryHandle` — the single user-facing
query object: ``.result()`` materialises, ``.tuning`` tunes DOPs while
the simulation advances (``engine.run_for`` / ``engine.run_until_done``),
``.trace()`` / ``.profile()`` expose the obs layer, and
``.fault_report()`` summarises failure recovery.  One
:class:`~repro.config.EngineConfig` fully describes a deployment,
including cluster topology, split placement, and tracing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .autotune import ElasticQuery
from .cluster import Cluster, Coordinator, QueryExecution, QueryOptions
from .config import EngineConfig, presto_config, prestissimo_config
from .data import Catalog, SplitLayout
from .errors import ExecutionError
from .handle import QueryHandle, QueryResult
from .obs import MetricsRegistry, NULL_TRACER, Tracer
from .sim import SimKernel

if TYPE_CHECKING:  # pragma: no cover
    from .workload import Session, WorkloadManager

__all__ = ["AccordionEngine", "QueryHandle", "QueryResult"]


def _unwrap(query: "QueryHandle | QueryExecution") -> QueryExecution:
    """Engine methods accept either a handle or a raw execution."""
    if isinstance(query, QueryHandle):
        return query.execution
    return query


class AccordionEngine:
    """A complete Accordion deployment on a simulated cluster."""

    def __init__(self, catalog: Catalog, config: EngineConfig | None = None):
        config = config or EngineConfig()
        self.config = config
        self.kernel = SimKernel()
        tracing = config.tracing
        if tracing.enabled or tracing.profiling:
            self.tracer = Tracer(self.kernel, tracing)
        else:
            self.tracer = NULL_TRACER
        self.kernel.tracer = self.tracer
        self.catalog = catalog
        self.cluster = Cluster(
            self.kernel, config.cluster, combined=config.cluster.combined
        )
        self.split_layout = SplitLayout(
            catalog,
            storage_nodes=config.cluster.storage_nodes,
            scheme=config.cluster.split_scheme_dict,
            node_overrides=config.cluster.node_overrides_dict,
        )
        self.metrics = MetricsRegistry()
        #: Worker-pool offload client (repro.parallel); None keeps every
        #: kernel inline.  Pools are process-wide singletons, so building
        #: many engines with the same worker count reuses one pool.
        self.offload = None
        if config.parallel.workers > 0:
            from .parallel import OffloadClient

            self.offload = OffloadClient(config.parallel)
            self.kernel.offload = self.offload
            self.metrics.gauge("parallel", self.offload.stats.snapshot)
        self.coordinator = Coordinator(
            self.kernel, self.cluster, catalog, self.split_layout, config,
            metrics=self.metrics,
        )
        self.fault_injector = None
        from .cluster.membership import ClusterMembership

        #: Runtime node join/leave/preemption (DESIGN.md §12).
        self.membership = ClusterMembership(self.kernel, self.coordinator)
        self._elastic: dict[int, ElasticQuery] = {}
        self._workload: "WorkloadManager | None" = None
        #: Fold detector + result cache (DESIGN.md §14); None when off.
        self.sharing = None
        if config.sharing.enabled:
            from .sharing import SharingManager

            self.sharing = SharingManager(self)
            self.metrics.gauge("sharing", self.sharing.stats)
        #: Learned demand predictor (repro.predict); None when off.
        self.predict_service = None
        if config.prediction.enabled:
            from .predict import DemandPredictor

            self.predict_service = DemandPredictor(self)
            # Predictions must exist before initial placement runs, so
            # the predictor hooks query creation inside the coordinator
            # and the scheduler consults it for every task placement.
            self.coordinator.on_created = self.predict_service.on_query_created
            self.coordinator.scheduler.predictor = self.predict_service
            self.metrics.gauge("predict", self.predict_service.stats)
        rpc = self.coordinator.rpc
        self.metrics.gauge(
            "rpc",
            lambda: {
                "total_requests": rpc.total_requests,
                "retried_requests": rpc.retried_requests,
                "failed_requests": rpc.failed_requests,
            },
        )
        self.metrics.gauge("recovery", self.coordinator.recovery.stats)
        self.metrics.gauge("cluster", self.membership.stats)
        self.metrics.gauge(
            "sim",
            lambda: {
                "now": self.kernel.now,
                "events_processed": self.kernel.events_processed,
            },
        )
        self.metrics.gauge(
            "trace",
            lambda: {
                "spans": len(self.tracer.spans),
                "dropped": self.tracer.dropped,
            },
        )
        # plan_cache.hits / plan_cache.misses are per-engine counters owned
        # by this registry (created by the Coordinator above).

    # -- constructors ----------------------------------------------------
    @classmethod
    def tpch(
        cls,
        scale: float = 0.01,
        config: EngineConfig | None = None,
        seed: int = 20250622,
    ) -> "AccordionEngine":
        """Engine over a generated TPC-H database at ``scale``."""
        return cls(Catalog.tpch(scale, seed), config=config)

    @classmethod
    def presto_baseline(cls, catalog: Catalog) -> "AccordionEngine":
        """Presto baseline mode: fixed buffers, no elasticity (Figure 20)."""
        return cls(catalog, config=presto_config())

    @classmethod
    def prestissimo_baseline(cls, catalog: Catalog) -> "AccordionEngine":
        return cls(catalog, config=prestissimo_config())

    # -- query execution ----------------------------------------------------
    def _dispatch(self, sql: str, options: QueryOptions | None = None):
        """Route a submission through the sharing layer when enabled.

        Returns an execution-like object: a raw ``QueryExecution``, or a
        :class:`~repro.sharing.fold.SharedConsumer` facade when the query
        was folded onto a shared execution or served from the result
        cache.  Both bind to :class:`QueryHandle` unchanged."""
        if self.sharing is not None:
            return self.sharing.submit(sql, options)
        return self.coordinator.submit(sql, options)

    def submit(self, sql: str, options: QueryOptions | None = None) -> QueryHandle:
        """Submit a query; advance the simulation to make it progress.

        Bypasses the workload layer: the query starts immediately, outside
        any admission limits.  Multi-tenant code paths go through
        :meth:`session` instead.  With ``EngineConfig.with_sharing()``
        the submission may fold onto a concurrent compatible query or be
        answered from the result cache — ``handle.sharing`` says which.
        """
        return QueryHandle(self, self._dispatch(sql, options))

    def submit_many(
        self, sqls: list[str], options: QueryOptions | None = None
    ) -> list[QueryHandle]:
        """Submit a batch at the same virtual instant.

        With sharing enabled this maximises fold opportunities: the first
        query of each compatible class becomes the carrier and the rest
        graft onto it before any physical work starts — no fold window
        needed.  Without sharing it is just a loop over :meth:`submit`.
        """
        return [self.submit(sql, options) for sql in sqls]

    def execute(
        self,
        sql: str,
        options: QueryOptions | None = None,
        max_virtual_seconds: float = 1e7,
    ) -> QueryResult:
        """Submit and run to completion."""
        return self.submit(sql, options).result(max_virtual_seconds)

    def predict(self, sql: str, options: QueryOptions | None = None):
        """Predicted demand + runtime for ``sql`` from accumulated
        history (requires ``EngineConfig.with_prediction()``).

        Returns a frozen :class:`repro.Prediction` — per-stage demand
        series, runtime point estimate, variance, and the sample count
        backing it — or ``None`` when the query's template has no
        recorded history yet.  Side-effect free: predicting does not
        execute or admit anything.
        """
        if self.predict_service is None:
            raise ExecutionError(
                "prediction is not enabled; construct the engine with "
                "EngineConfig().with_prediction()"
            )
        return self.predict_service.predict_sql(sql, options)

    # -- multi-tenant workload ---------------------------------------------
    @property
    def workload(self) -> "WorkloadManager":
        """The workload layer: admission controller + resource arbiter.

        Created lazily on first use (``engine.session`` / this property),
        configured by ``EngineConfig.workload``.
        """
        if self._workload is None:
            from .workload import WorkloadManager

            self._workload = WorkloadManager(self)
        return self._workload

    def session(
        self, tenant: str, priority: float = 0.0, deadline: float | None = None
    ) -> "Session":
        """Open a tenant session whose submissions go through admission.

        ``priority`` orders the admission queue under the ``"priority"``
        policy and picks revocation victims under ``"strict_priority"``
        arbitration; ``deadline`` (virtual seconds from each submission)
        marks queries the ``"deadline"`` arbiter may grab cores for.
        """
        return self.workload.session(tenant, priority=priority, deadline=deadline)

    # -- runtime elasticity ----------------------------------------------------
    def _elastic_for(self, execution: QueryExecution) -> ElasticQuery:
        """The runtime DOP tuning interface behind ``QueryHandle.tuning``."""
        if not self.config.elasticity_enabled:
            raise ExecutionError(
                f"engine mode {self.config.engine_name!r} does not support IQRE"
            )
        if self.sharing is not None:
            from .sharing import SharedConsumer

            if isinstance(execution, SharedConsumer):
                # Tuning a folded/carrier consumer tunes the shared
                # physical execution; there is nothing to tune for a
                # cached answer or a carrier still in its fold window.
                if execution.carrier is None:
                    raise ExecutionError(
                        f"query {execution.id} has no live execution to "
                        f"tune ({execution.role}: "
                        + ("served from the result cache"
                           if execution.role == "cached"
                           else "carrier not yet dispatched")
                        + ")"
                    )
                execution = execution.carrier
        if execution.id not in self._elastic:
            # Once a workload manager exists, every tuner bids through the
            # cluster-wide arbiter — including queries submitted outside a
            # session (they count as the anonymous tenant).
            arbiter = self._workload.arbiter if self._workload is not None else None
            self._elastic[execution.id] = ElasticQuery(
                execution,
                self.cluster,
                self.coordinator.scheduler,
                collector_period=self.config.collector_period,
                arbiter=arbiter,
            )
        return self._elastic[execution.id]

    # -- fault injection ----------------------------------------------------
    def inject_faults(self, plan) -> "object":
        """Arm a :class:`~repro.faults.FaultPlan` against this engine.

        Returns the :class:`~repro.faults.FaultInjector` (its ``history``
        records the fault timeline).  Must be called before the affected
        virtual times are reached.
        """
        from .faults import FaultInjector

        self.fault_injector = FaultInjector(self.kernel, self.coordinator, plan)
        self.metrics.gauge(
            "faults", lambda: {"injected": len(self.fault_injector.history)}
        )
        return self.fault_injector

    # -- simulation control ----------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    def run_until_done(
        self,
        query: "QueryHandle | QueryExecution",
        max_virtual_seconds: float = 1e7,
        max_events: int | None = None,
    ) -> None:
        """Advance the simulation until *this* query reaches a terminal
        state (finished, failed, cancelled, or — for session submissions —
        rejected by admission).

        Multi-query contract: the simulation is global, so every other
        in-flight query also makes progress while this one runs; the loop
        stops at the first event after which the *target* query is
        terminal, leaving the rest mid-flight.  Calling ``result()`` on
        several handles in any order is therefore safe and returns the
        same answers in any order.

        A query that failed or was cancelled raises its structured
        :class:`~repro.errors.QueryFailedError` /
        :class:`~repro.errors.QueryCancelledError`; a rejected submission
        raises :class:`~repro.errors.QueryRejectedError`; one that makes
        no progress raises within ``max_virtual_seconds`` / ``max_events``
        instead of hanging.
        """
        if isinstance(query, QueryHandle):
            handle = query
        else:
            handle = QueryHandle(self, query)
        deadline = self.kernel.now + max_virtual_seconds
        self.kernel.run(
            until=deadline,
            stop_when=lambda: handle.finished,
            max_events=max_events,
        )
        if handle.failed:
            raise handle.error
        if not handle.finished:
            label = (
                f"query {handle.id}" if handle.id is not None
                else f"queued submission ({handle.state})"
            )
            detail = (
                handle.execution.describe() if handle.execution is not None else ""
            )
            raise ExecutionError(
                f"{label} did not finish within {max_virtual_seconds} "
                f"virtual seconds\n{detail}"
            )

    def run_for(self, virtual_seconds: float) -> None:
        """Advance the simulation by a fixed amount of virtual time."""
        self.kernel.run(until=self.kernel.now + virtual_seconds)

    def run_until(self, virtual_time: float) -> None:
        self.kernel.run(until=virtual_time)
