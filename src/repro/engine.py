"""AccordionEngine: the public facade of the library.

Bundles the simulated cluster, catalog, split layout, coordinator, runtime
DOP tuning module, and auto-tuner behind a small API:

>>> from repro import AccordionEngine
>>> engine = AccordionEngine.tpch(scale=0.01)
>>> result = engine.execute("select count(*) from lineitem")
>>> result.rows
[(60175,)]

``submit()`` returns a live query handle whose DOP can be tuned while the
simulation advances (``engine.run_for`` / ``engine.run_until_done``) —
the intra-query runtime elasticity that is the paper's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from .autotune import ElasticQuery
from .cluster import Cluster, Coordinator, QueryExecution, QueryOptions
from .config import EngineConfig, presto_config, prestissimo_config
from .data import Catalog, SplitLayout
from .errors import ExecutionError
from .pages import Page
from .sim import SimKernel


@dataclass
class QueryResult:
    """Materialised result of a finished query."""

    rows: list[tuple]
    columns: list[str]
    elapsed_seconds: float
    initialization_seconds: float
    query: QueryExecution

    @property
    def num_rows(self) -> int:
        return len(self.rows)


class AccordionEngine:
    """A complete Accordion deployment on a simulated cluster."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig | None = None,
        split_scheme: dict | None = None,
        node_overrides: dict[str, list[int]] | None = None,
        combined_nodes: bool = False,
    ):
        self.config = config or EngineConfig()
        self.kernel = SimKernel()
        self.catalog = catalog
        self.cluster = Cluster(self.kernel, self.config.cluster, combined=combined_nodes)
        self.split_layout = SplitLayout(
            catalog,
            storage_nodes=self.config.cluster.storage_nodes,
            scheme=split_scheme,
            node_overrides=node_overrides,
        )
        self.coordinator = Coordinator(
            self.kernel, self.cluster, catalog, self.split_layout, self.config
        )
        self._elastic: dict[int, ElasticQuery] = {}

    # -- constructors ----------------------------------------------------
    @classmethod
    def tpch(
        cls,
        scale: float = 0.01,
        config: EngineConfig | None = None,
        seed: int = 20250622,
        **kwargs,
    ) -> "AccordionEngine":
        """Engine over a generated TPC-H database at ``scale``."""
        return cls(Catalog.tpch(scale, seed), config=config, **kwargs)

    @classmethod
    def presto_baseline(cls, catalog: Catalog, **kwargs) -> "AccordionEngine":
        """Presto baseline mode: fixed buffers, no elasticity (Figure 20)."""
        return cls(catalog, config=presto_config(), **kwargs)

    @classmethod
    def prestissimo_baseline(cls, catalog: Catalog, **kwargs) -> "AccordionEngine":
        return cls(catalog, config=prestissimo_config(), **kwargs)

    # -- query execution ----------------------------------------------------
    def submit(self, sql: str, options: QueryOptions | None = None) -> QueryExecution:
        """Submit a query; advance the simulation to make it progress."""
        return self.coordinator.submit(sql, options)

    def execute(
        self,
        sql: str,
        options: QueryOptions | None = None,
        max_virtual_seconds: float = 1e7,
    ) -> QueryResult:
        """Submit and run to completion."""
        query = self.submit(sql, options)
        self.run_until_done(query, max_virtual_seconds)
        return self.result_of(query)

    def result_of(self, query: QueryExecution) -> QueryResult:
        if query.failed:
            raise query.error
        if not query.finished:
            raise ExecutionError(f"query {query.id} has not finished")
        page: Page = query.result()
        return QueryResult(
            rows=page.rows(),
            columns=page.schema.names(),
            elapsed_seconds=query.elapsed,
            initialization_seconds=query.initialization_seconds,
            query=query,
        )

    # -- runtime elasticity ----------------------------------------------------
    def elastic(self, query: QueryExecution) -> ElasticQuery:
        """The runtime DOP tuning handle for a submitted query.

        Only available when the engine runs in Accordion mode; baseline
        modes (Presto/Prestissimo) have elasticity disabled.
        """
        if not self.config.elasticity_enabled:
            raise ExecutionError(
                f"engine mode {self.config.engine_name!r} does not support IQRE"
            )
        if query.id not in self._elastic:
            self._elastic[query.id] = ElasticQuery(
                query,
                self.cluster,
                self.coordinator.scheduler,
                collector_period=self.config.collector_period,
            )
        return self._elastic[query.id]

    # -- fault injection ----------------------------------------------------
    def inject_faults(self, plan) -> "object":
        """Arm a :class:`~repro.faults.FaultPlan` against this engine.

        Returns the :class:`~repro.faults.FaultInjector` (its ``history``
        records the fault timeline).  Must be called before the affected
        virtual times are reached.
        """
        from .faults import FaultInjector

        self.fault_injector = FaultInjector(self.kernel, self.coordinator, plan)
        return self.fault_injector

    # -- simulation control ----------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    def run_until_done(
        self,
        query: QueryExecution,
        max_virtual_seconds: float = 1e7,
        max_events: int | None = None,
    ) -> None:
        """Advance the simulation until the query reaches a terminal state.

        A query that *failed* (fault injection, operator error) raises its
        structured :class:`~repro.errors.QueryFailedError`; one that makes
        no progress raises within ``max_virtual_seconds`` / ``max_events``
        instead of hanging.
        """
        deadline = self.kernel.now + max_virtual_seconds
        self.kernel.run(
            until=deadline,
            stop_when=lambda: query.finished,
            max_events=max_events,
        )
        if query.failed:
            raise query.error
        if not query.finished:
            raise ExecutionError(
                f"query {query.id} did not finish within {max_virtual_seconds} "
                f"virtual seconds\n{query.describe()}"
            )

    def run_for(self, virtual_seconds: float) -> None:
        """Advance the simulation by a fixed amount of virtual time."""
        self.kernel.run(until=self.kernel.now + virtual_seconds)

    def run_until(self, virtual_time: float) -> None:
        self.kernel.run(until=virtual_time)
