"""Figure 30: automatic DOP tuning on Q2 and Q3.

The DOP planning module picks initial DOPs and per-scan time constraints
for a query deadline; the DOP monitor then tracks scan progress and
adjusts stage DOPs incrementally — scaling *down* (RP actions) when ahead
of schedule to shed resources, and up when behind.  For Q3, a new, tighter
constraint is injected mid-flight (the paper adds "finish S1 within 30 s"
at ~150 s) and the auto-tuner re-plans.
"""

import pytest

from repro import (
    AccordionEngine,
    CostModel,
    DopPlanner,
    EngineConfig,
    QueryOptions,
    TPCH_QUERIES as QUERIES,
)

from conftest import emit, once


def make_engine(catalog):
    config = EngineConfig(cost=CostModel().scaled(1000.0), page_row_limit=256)
    return AccordionEngine(catalog, config=config)


def run_autotuned(catalog, sql, deadline, midflight=None):
    engine = make_engine(catalog)
    plan = engine.coordinator.plan_sql(sql, QueryOptions())
    dop_plan = DopPlanner(catalog, engine.config).plan(plan, deadline)
    query = engine.submit(
        sql,
        QueryOptions(
            initial_stage_dop=max(2, dop_plan.initial_stage_dop),
            initial_task_dop=dop_plan.initial_task_dop,
        ),
    )
    elastic = query.tuning
    for scan_stage, scan_deadline in dop_plan.scan_deadlines.items():
        elastic.set_constraint(scan_stage, scan_deadline)
    elastic.start_monitor(period=2.0)
    if midflight is not None:
        at, stage, seconds = midflight
        engine.kernel.run(until=at, stop_when=lambda: query.finished)
        if not query.finished:
            elastic.set_constraint(stage, seconds)
    engine.run_until_done(query, 1e6)
    return query, elastic, dop_plan


def summarize(tag, query, elastic, deadline):
    ups = [r for r in elastic.tuner.applied if "AP" in r.request.describe() or r.request.target > 1]
    lines = [
        f"deadline {deadline:.0f}s -> finished at {query.elapsed:.1f}s",
        "actions: "
        + (", ".join(
            f"{r.request.describe()}@{r.issued_at:.0f}s" for r in elastic.tuner.applied
        ) or "(none)"),
        f"constraint markers: {len(query.tracker.markers_of('constraint'))}",
    ]
    emit(tag, "\n".join(lines))


def test_fig30a_q2_auto_tuning(benchmark, small_catalog):
    untuned = make_engine(small_catalog).execute(QUERIES["Q2"], max_virtual_seconds=1e6)
    deadline = untuned.elapsed_seconds * 3  # a comfortably loose target

    query, elastic, dop_plan = once(
        benchmark, lambda: run_autotuned(small_catalog, QUERIES["Q2"], deadline)
    )
    summarize("Figure 30a: Q2 automatic DOP tuning", query, elastic, deadline)
    benchmark.extra_info.update(
        deadline_s=round(deadline, 1), finished_s=round(query.elapsed, 1)
    )

    # The deadline was met.
    assert query.elapsed <= deadline
    # The planner produced per-scan constraints in dependency order.
    assert len(dop_plan.scan_deadlines) >= 1
    # With a loose deadline the monitor sheds resources (RP actions).
    reductions = [
        r
        for r in elastic.tuner.applied
        if r.request.target < max(2, dop_plan.initial_stage_dop)
    ]
    assert reductions, "expected RP actions while ahead of schedule"


def test_fig30b_q3_auto_tuning_with_midflight_constraint(benchmark, small_catalog):
    untuned = make_engine(small_catalog).execute(QUERIES["Q3"], max_virtual_seconds=1e6)
    deadline = untuned.elapsed_seconds * 2.5

    def experiment():
        return run_autotuned(
            small_catalog,
            QUERIES["Q3"],
            deadline,
            # A much tighter finish-S1-soon constraint arrives mid-flight.
            midflight=(deadline * 0.25, 1, untuned.elapsed_seconds * 0.05),
        )

    query, elastic, dop_plan = once(benchmark, experiment)
    summarize(
        "Figure 30b: Q3 automatic DOP tuning (mid-flight constraint)",
        query,
        elastic,
        deadline,
    )
    benchmark.extra_info.update(
        deadline_s=round(deadline, 1), finished_s=round(query.elapsed, 1)
    )

    assert query.elapsed <= deadline
    # The mid-flight constraint was registered (two markers: initial + new).
    assert len(query.tracker.markers_of("constraint")) >= 2
    # The tighter constraint forced the tuner to scale S1 back up (AP).
    constraint_time = query.tracker.markers_of("constraint")[-1].time
    increases = [
        r
        for r in elastic.tuner.applied
        if r.issued_at >= constraint_time and r.request.target > 1
    ]
    assert increases, "expected AP actions after the tighter constraint"
