"""Figure 21: the distributed physical plan of TPC-H Q3.

Paper layout: S0 output/final-agg, S1 join (+ partial agg) fed by the S2
lineitem scan, S3 join fed by the S4 orders scan with the S5 customer scan
on its build side — with both dependency kinds visible (data dependency
S1<-S2, execution dependency S1<-S3 via the hash build).
"""

from repro import AccordionEngine, QueryOptions, TPCH_QUERIES as QUERIES

from conftest import emit, once


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)


def test_fig21_q3_distributed_plan(benchmark, eval_catalog):
    engine = AccordionEngine(eval_catalog)

    plan = once(
        benchmark, lambda: engine.coordinator.plan_sql(QUERIES["Q3"], QueryOptions())
    )
    emit("Figure 21: distributed physical plan of Q3", plan.describe())

    assert len(plan.fragments) == 6
    assert plan.fragment(0).dop_fixed                      # output stage
    assert plan.fragment(2).source_table == "lineitem"     # S2
    assert plan.fragment(4).source_table == "orders"       # S4
    assert plan.fragment(5).source_table == "customer"     # S5

    s1, s3 = plan.fragment(1), plan.fragment(3)
    # Data dependency: S1 streams probe data from S2.
    assert s1.probe_child == 2
    # Execution dependency: S1's build side comes from the S3 join stage.
    assert s1.build_children == [3]
    assert s3.probe_child == 4 and s3.build_children == [5]

    joins = [
        n
        for f in plan.fragments.values()
        for n in _walk(f.root)
        if n.__class__.__name__ == "PJoinNode"
    ]
    assert len(joins) == 2
    benchmark.extra_info["stages"] = len(plan.fragments)
