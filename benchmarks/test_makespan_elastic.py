"""Makespan/cost harness: static vs elastic vs spot fleets.

The faabric-style experiment for the membership layer: a burst of
identical jobs followed by a sparse tail, swept over (cluster size x job
count), run three ways —

* **static**   — M compute nodes provisioned for the whole run,
* **elastic**  — 1 base node, autoscaled up to M under queue pressure
  and drained back down when idle,
* **spot**     — elastic, but the burst capacity is preemptible (billed
  at the spot discount) and a seeded churn plan kills it repeatedly
  mid-burst; lineage replay re-runs the lost work.

The reproduction target is the elasticity claim transplanted to fleet
level: the elastic fleet matches the static fleet's makespan (the tail
dominates; burst capacity arrives when needed) at a fraction of the
dollars, and the spot fleet is cheaper still while preemptions cost it
nothing in correctness — every run returns bit-identical rows.
"""

from __future__ import annotations

from repro import (
    AccordionEngine,
    ClusterConfig,
    CostModel,
    EngineConfig,
    MembershipPlan,
    SpotPreemption,
    TraceArrivals,
    Workload,
)

from conftest import emit_table, norm_rows, once

QUERY = (
    "select l_returnflag, count(*), sum(l_quantity) "
    "from lineitem group by l_returnflag"
)
#: Burst at t=0, then a sparse tail that dominates the makespan: the
#: window where a static fleet bills idle nodes and an elastic one does
#: not.
TAIL_TIMES = (150.0, 170.0)
SEED = 13
#: Seeded mid-burst preemption schedule for the spot runs.
PREEMPTION_PLAN = MembershipPlan(
    seed=1,
    events=tuple(
        SpotPreemption(at=t, notice=0.3) for t in (5.0, 9.0, 13.0, 17.0, 21.0)
    ),
)


def build_engine(catalog, *, nodes, elastic, max_nodes=None, spot=False):
    cluster = ClusterConfig(compute_nodes=nodes, storage_nodes=2)
    if elastic:
        cluster = cluster.with_autoscaling(
            autoscale_max_nodes=max_nodes,
            autoscale_spot=spot,
            autoscale_cooldown=0.5,
        )
    config = EngineConfig(
        cost=CostModel().scaled(200.0), page_row_limit=256, cluster=cluster
    )
    return AccordionEngine(
        catalog, config=config.with_workload(max_queries_per_node=2.0)
    )


def run_workload(engine, jobs, plan=None):
    if plan is not None:
        engine.membership.apply_plan(plan)
    workload = Workload(engine, seed=SEED)
    workload.add_tenant(
        "mix", [QUERY], TraceArrivals(times=(0.0,) * jobs + TAIL_TIMES)
    )
    report = workload.run()
    rows = [norm_rows(h.result().rows) for h in workload.handles]
    return report, rows


def test_makespan_and_cost_static_vs_elastic_vs_spot(benchmark, small_catalog):
    points = [(2, 12), (3, 12)]

    def sweep():
        results = []
        for fleet, jobs in points:
            static, static_rows = run_workload(
                build_engine(small_catalog, nodes=fleet, elastic=False), jobs
            )
            elastic, elastic_rows = run_workload(
                build_engine(
                    small_catalog, nodes=1, elastic=True, max_nodes=fleet
                ),
                jobs,
            )
            spot, spot_rows = run_workload(
                build_engine(
                    small_catalog,
                    nodes=1,
                    elastic=True,
                    max_nodes=fleet,
                    spot=True,
                ),
                jobs,
                plan=PREEMPTION_PLAN,
            )
            results.append(
                {
                    "fleet": fleet,
                    "jobs": jobs,
                    "static": static,
                    "elastic": elastic,
                    "spot": spot,
                    "rows": (static_rows, elastic_rows, spot_rows),
                }
            )
        return results

    results = once(benchmark, sweep)

    table = []
    for point in results:
        for mode in ("static", "elastic", "spot"):
            report = point[mode]
            cluster = report.cluster
            table.append(
                [
                    f"{point['fleet']}x{point['jobs']}",
                    mode,
                    f"{report.horizon:.2f}",
                    f"${cluster['cost_dollars']:.2f}",
                    cluster["joins"],
                    cluster["preemptions"],
                    report.tenants["mix"].completed,
                ]
            )
    emit_table(
        "Fleet elasticity: makespan and dollars (burst + sparse tail)",
        ["fleet x jobs", "mode", "makespan_s", "cost", "joins", "preempt", "done"],
        table,
    )

    total = len(TAIL_TIMES)
    for point in results:
        static, elastic, spot = point["static"], point["elastic"], point["spot"]
        total_jobs = point["jobs"] + total
        # Everything completes, everywhere — preemptions included.
        for report in (static, elastic, spot):
            assert report.tenants["mix"].completed == total_jobs
        # Bit-identical answers across all three fleets.
        static_rows, elastic_rows, spot_rows = point["rows"]
        assert static_rows == elastic_rows == spot_rows
        assert len({tuple(map(tuple, r)) for r in static_rows}) == 1
        # The elasticity claim: same makespan, fewer dollars.
        assert elastic.horizon <= static.horizon
        assert (
            elastic.cluster["cost_dollars"] < static.cluster["cost_dollars"]
        )
        # Spot burst capacity is cheaper still, despite >= 3 preemptions.
        assert spot.cluster["preemptions"] >= 3
        assert spot.cluster["cost_dollars"] < elastic.cluster["cost_dollars"]
        # The elastic fleet actually scaled and fully scaled back.
        assert elastic.cluster["joins"] >= 1
        assert elastic.cluster["nodes_final"] == 1

    benchmark.extra_info["points"] = [
        {
            "fleet": p["fleet"],
            "jobs": p["jobs"],
            "static_cost": p["static"].cluster["cost_dollars"],
            "elastic_cost": p["elastic"].cluster["cost_dollars"],
            "spot_cost": p["spot"].cluster["cost_dollars"],
            "makespan": p["static"].horizon,
            "spot_preemptions": p["spot"].cluster["preemptions"],
        }
        for p in results
    ]


def test_spot_churn_reports_are_byte_identical(benchmark, small_catalog):
    """Two same-seed spot runs — autoscaler decisions, preemption kills,
    lineage replays and all — render byte-identical workload reports."""

    def run_twice():
        first, _ = run_workload(
            build_engine(small_catalog, nodes=1, elastic=True, max_nodes=2, spot=True),
            8,
            plan=PREEMPTION_PLAN,
        )
        second, _ = run_workload(
            build_engine(small_catalog, nodes=1, elastic=True, max_nodes=2, spot=True),
            8,
            plan=PREEMPTION_PLAN,
        )
        return first, second

    first, second = once(benchmark, run_twice)
    assert first.render() == second.render()
    assert first.to_dict() == second.to_dict()
    assert first.cluster["preemptions"] >= 1
